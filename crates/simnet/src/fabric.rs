//! The fabric: rank-to-rank FIFO channels plus fail-stop fault injection.
//!
//! One unbounded MPMC channel per destination rank carries [`Envelope`]s.
//! Per (src, dst) pair, delivery order equals send order (crossbeam channels
//! are FIFO per producer), which is exactly the non-overtaking guarantee MPI
//! point-to-point semantics require from the transport.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};

use crate::cluster::ClusterSpec;
use crate::envelope::Envelope;
use crate::error::{SimError, SimResult};
use crate::rank::RankCtx;

/// How long a blocking receive waits between checks of the shutdown and
/// failure flags. Real time, not virtual time; only affects how quickly a
/// deadlocked/failed run unwinds.
const POLL_INTERVAL: Duration = Duration::from_micros(200);

struct Shared {
    nranks: usize,
    failed: Vec<AtomicBool>,
    shutdown: AtomicBool,
    /// When true, blocked receivers report peer failures as errors
    /// (fault-tolerant mode); when false they keep waiting, like a
    /// non-fault-tolerant MPI would.
    failure_detection: AtomicBool,
}

/// Handle to the whole fabric: constructs endpoints, injects failures,
/// forces shutdown.
#[derive(Clone)]
pub struct Fabric {
    shared: Arc<Shared>,
    senders: Arc<Vec<Sender<Envelope>>>,
}

impl Fabric {
    /// Build a fabric for `spec` and hand out one endpoint per rank.
    pub fn new(spec: &ClusterSpec) -> (Fabric, Vec<Endpoint>) {
        let nranks = spec.nranks();
        let mut senders = Vec::with_capacity(nranks);
        let mut receivers = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            nranks,
            failed: (0..nranks).map(|_| AtomicBool::new(false)).collect(),
            shutdown: AtomicBool::new(false),
            failure_detection: AtomicBool::new(false),
        });
        let fabric = Fabric { shared: shared.clone(), senders: Arc::new(senders) };
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| Endpoint {
                rank,
                rx,
                fabric: fabric.clone(),
                next_seq: std::cell::Cell::new(0),
            })
            .collect();
        (fabric, endpoints)
    }

    /// Number of ranks on the fabric.
    pub fn nranks(&self) -> usize {
        self.shared.nranks
    }

    /// Mark a rank as failed (fail-stop). Subsequent sends to it error with
    /// [`SimError::PeerFailed`]; receivers learn of it if failure detection
    /// is enabled.
    pub fn fail_rank(&self, rank: usize) {
        if rank < self.shared.nranks {
            self.shared.failed[rank].store(true, Ordering::SeqCst);
        }
    }

    /// Whether a rank has been marked failed.
    pub fn is_failed(&self, rank: usize) -> bool {
        rank < self.shared.nranks && self.shared.failed[rank].load(Ordering::SeqCst)
    }

    /// Ranks currently marked failed.
    pub fn failed_ranks(&self) -> Vec<usize> {
        (0..self.shared.nranks).filter(|&r| self.is_failed(r)).collect()
    }

    /// Enable fault-tolerant semantics: blocked receives return
    /// [`SimError::PeerFailed`] when any rank has failed, instead of
    /// waiting forever like a non-fault-tolerant MPI.
    pub fn enable_failure_detection(&self) {
        self.shared.failure_detection.store(true, Ordering::SeqCst);
    }

    /// Tear the fabric down: every blocked receive returns
    /// [`SimError::Disconnected`]. Used when a rank errors or panics so the
    /// remaining ranks unwind instead of deadlocking.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether the fabric has been shut down.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// A rank's attachment point to the fabric.
pub struct Endpoint {
    rank: usize,
    rx: Receiver<Envelope>,
    fabric: Fabric,
    next_seq: std::cell::Cell<u64>,
}

impl Endpoint {
    /// This endpoint's rank id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The fabric this endpoint belongs to.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Send a raw envelope. The sender's clock first advances by the
    /// message's **serialization time** (LogGP's per-byte gap: a NIC or
    /// shared-memory copy engine pushes bytes out one at a time, so
    /// back-to-back sends serialize on the sender — this is what makes a
    /// 48-peer posted all-to-all pay for its volume). The message then
    /// departs at the sender's clock and the *receiver* accounts the wire
    /// latency on arrival (see [`RankCtx::arrival_time`]). The caller (a
    /// vendor MPI library) is responsible for charging its own
    /// per-message CPU overhead before calling this.
    pub fn send_raw(
        &self,
        dst: usize,
        ctx_id: u64,
        tag: i32,
        payload: Bytes,
        ctx: &RankCtx,
    ) -> SimResult<()> {
        let shared = &self.fabric.shared;
        if dst >= shared.nranks {
            return Err(SimError::NoSuchRank { rank: dst, nranks: shared.nranks });
        }
        if shared.failed[self.rank].load(Ordering::SeqCst) {
            return Err(SimError::SelfFailed);
        }
        if shared.failed[dst].load(Ordering::SeqCst) {
            return Err(SimError::PeerFailed { rank: dst });
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return Err(SimError::Disconnected);
        }
        let seq = self.next_seq.get();
        self.next_seq.set(seq + 1);
        let wire_bytes = payload.len() + ctx.spec().header_bytes;
        let link = ctx.spec().link_between(self.rank, dst);
        ctx.advance(link.serialize_time(wire_bytes));
        let env = Envelope {
            src: self.rank,
            dst,
            ctx_id,
            tag,
            payload,
            depart: ctx.now(),
            wire_bytes,
            seq,
        };
        ctx.count_send(env.len());
        self.fabric.senders[dst].send(env).map_err(|_| SimError::Disconnected)
    }

    /// Non-blocking poll for the next raw envelope, in arrival order.
    /// No virtual-time accounting happens here; the caller's matching engine
    /// decides when and how to charge time (see [`RankCtx::arrival_time`]).
    pub fn poll_raw(&self) -> SimResult<Option<Envelope>> {
        match self.rx.try_recv() {
            Ok(env) => Ok(Some(env)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(SimError::Disconnected),
        }
    }

    /// Blocking pull of the next raw envelope (no time accounting).
    ///
    /// Unblocks with an error if the fabric shuts down, or — when failure
    /// detection is enabled — if any rank has been marked failed.
    pub fn recv_raw(&self) -> SimResult<Envelope> {
        loop {
            match self.rx.recv_timeout(POLL_INTERVAL) {
                Ok(env) => return Ok(env),
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    return Err(SimError::Disconnected)
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    let shared = &self.fabric.shared;
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return Err(SimError::Disconnected);
                    }
                    if shared.failed[self.rank].load(Ordering::SeqCst) {
                        return Err(SimError::SelfFailed);
                    }
                    if shared.failure_detection.load(Ordering::SeqCst) {
                        if let Some(r) =
                            (0..shared.nranks).find(|&r| shared.failed[r].load(Ordering::SeqCst))
                        {
                            return Err(SimError::PeerFailed { rank: r });
                        }
                    }
                }
            }
        }
    }

    /// Blocking receive **with** arrival-time accounting: advances the
    /// rank's clock to `max(now, arrival)`. Convenience for substrate tests
    /// and simple protocols; vendor libraries use [`Endpoint::recv_raw`]
    /// plus their own matching.
    pub fn recv_raw_blocking(&self, ctx: &RankCtx) -> SimResult<Envelope> {
        let env = self.recv_raw()?;
        let arrival = ctx.arrival_time(&env);
        ctx.advance_to(arrival);
        ctx.count_recv(env.len());
        Ok(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::noise::NoiseModel;
    use crate::rank::RankCtx;
    use std::sync::Arc as StdArc;

    fn two_rank_setup() -> (Fabric, Vec<Endpoint>, StdArc<ClusterSpec>) {
        let spec = StdArc::new(ClusterSpec::builder().nodes(1).ranks_per_node(2).build());
        let (fabric, eps) = Fabric::new(&spec);
        (fabric, eps, spec)
    }

    fn ctx_for(rank: usize, spec: &StdArc<ClusterSpec>, ep: Endpoint) -> RankCtx {
        RankCtx::new(rank, spec.clone(), ep, NoiseModel::disabled().stream_for_rank(rank))
    }

    #[test]
    fn send_and_receive_round_trip() {
        let (_fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let ctx1 = ctx_for(1, &spec, ep1);
        ctx0.endpoint()
            .send_raw(1, 42, 7, Bytes::from_static(b"hello"), &ctx0)
            .unwrap();
        let env = ctx1.endpoint().recv_raw_blocking(&ctx1).unwrap();
        assert_eq!(env.src, 0);
        assert_eq!(env.ctx_id, 42);
        assert_eq!(env.tag, 7);
        assert_eq!(&env.payload[..], b"hello");
        // Receiver clock advanced by at least the link alpha.
        assert!(ctx1.now() >= spec.link_between(0, 1).alpha);
    }

    #[test]
    fn fifo_per_pair() {
        let (_fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let ctx1 = ctx_for(1, &spec, ep1);
        for i in 0..16u8 {
            ctx0.endpoint().send_raw(1, 0, 0, Bytes::from(vec![i]), &ctx0).unwrap();
        }
        for i in 0..16u8 {
            let env = ctx1.endpoint().recv_raw_blocking(&ctx1).unwrap();
            assert_eq!(env.payload[0], i);
            assert_eq!(env.seq, i as u64);
        }
    }

    #[test]
    fn send_to_out_of_range_rank_errors() {
        let (_fabric, mut eps, spec) = two_rank_setup();
        let _ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let err = ctx0
            .endpoint()
            .send_raw(9, 0, 0, Bytes::new(), &ctx0)
            .unwrap_err();
        assert_eq!(err, SimError::NoSuchRank { rank: 9, nranks: 2 });
    }

    #[test]
    fn send_to_failed_rank_errors() {
        let (fabric, mut eps, spec) = two_rank_setup();
        let _ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        fabric.fail_rank(1);
        assert!(fabric.is_failed(1));
        assert_eq!(fabric.failed_ranks(), vec![1]);
        let err = ctx0.endpoint().send_raw(1, 0, 0, Bytes::new(), &ctx0).unwrap_err();
        assert_eq!(err, SimError::PeerFailed { rank: 1 });
    }

    #[test]
    fn blocked_recv_unblocks_on_shutdown() {
        let (fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let _ep0 = eps.pop().unwrap();
        let ctx1 = ctx_for(1, &spec, ep1);
        let handle = std::thread::spawn({
            let fabric = fabric.clone();
            move || {
                std::thread::sleep(Duration::from_millis(5));
                fabric.shutdown();
            }
        });
        let err = ctx1.endpoint().recv_raw().unwrap_err();
        assert_eq!(err, SimError::Disconnected);
        handle.join().unwrap();
    }

    #[test]
    fn blocked_recv_sees_peer_failure_when_detection_enabled() {
        let (fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let _ep0 = eps.pop().unwrap();
        let ctx1 = ctx_for(1, &spec, ep1);
        fabric.enable_failure_detection();
        let handle = std::thread::spawn({
            let fabric = fabric.clone();
            move || {
                std::thread::sleep(Duration::from_millis(5));
                fabric.fail_rank(0);
            }
        });
        let err = ctx1.endpoint().recv_raw().unwrap_err();
        assert_eq!(err, SimError::PeerFailed { rank: 0 });
        handle.join().unwrap();
    }

    #[test]
    fn poll_raw_is_nonblocking() {
        let (_fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let ctx1 = ctx_for(1, &spec, ep1);
        assert!(ctx1.endpoint().poll_raw().unwrap().is_none());
        ctx0.endpoint().send_raw(1, 0, 0, Bytes::from_static(b"x"), &ctx0).unwrap();
        // Channel push is synchronous, so the message is immediately visible.
        assert!(ctx1.endpoint().poll_raw().unwrap().is_some());
    }
}
