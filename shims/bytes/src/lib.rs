//! Offline stand-in for the `bytes` crate, API-compatible with the subset
//! this workspace uses.
//!
//! Beyond plain API compatibility, this implementation is the transport's
//! **small-message fast path**: payloads of at most [`Bytes::INLINE_CAP`]
//! (64) bytes are stored *inline in the handle itself* — no heap
//! allocation on construction and no atomic refcount traffic on clone.
//! Larger buffers are a shared `Arc<[u8]>`, so fan-out sends of one big
//! buffer still cost one allocation total and clones are pointer-equal
//! views of it (which `Envelope` fan-out tests rely on).

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Maximum payload length stored inline (no heap allocation).
const INLINE_CAP: usize = 64;

#[derive(Clone)]
enum Repr {
    /// Borrowed static data (e.g. string literals): zero-copy forever.
    Static(&'static [u8]),
    /// Small buffer stored in the handle itself.
    Inline { len: u8, buf: [u8; INLINE_CAP] },
    /// Shared heap buffer; clones bump a refcount and alias one allocation.
    Shared(Arc<[u8]>),
}

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

impl Bytes {
    /// Payloads up to this many bytes are stored inline in the handle:
    /// constructing or cloning them performs no heap allocation and no
    /// atomic operations.
    pub const INLINE_CAP: usize = INLINE_CAP;

    /// An empty buffer. Never allocates.
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(data),
        }
    }

    /// Copy a slice into a new buffer. Slices of at most
    /// [`Bytes::INLINE_CAP`] bytes are stored inline (no allocation).
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        if data.len() <= INLINE_CAP {
            let mut buf = [0u8; INLINE_CAP];
            buf[..data.len()].copy_from_slice(data);
            Bytes {
                repr: Repr::Inline {
                    len: data.len() as u8,
                    buf,
                },
            }
        } else {
            Bytes {
                repr: Repr::Shared(Arc::from(data)),
            }
        }
    }

    /// Whether this buffer is stored inline (diagnostic for the
    /// small-message fast path).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// View as a slice.
    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Shared(arc) => arc,
        }
    }

    /// Copy out to an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        if v.len() <= INLINE_CAP {
            Bytes::copy_from_slice(&v)
        } else {
            Bytes {
                repr: Repr::Shared(Arc::from(v.into_boxed_slice())),
            }
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for e in std::ascii::escape_default(b) {
                write!(f, "{}", e as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_payloads_are_inline() {
        assert!(Bytes::copy_from_slice(&[1u8; 64]).is_inline());
        assert!(Bytes::from(vec![2u8; 17]).is_inline());
        assert!(!Bytes::copy_from_slice(&[1u8; 65]).is_inline());
        assert!(!Bytes::from(vec![2u8; 65]).is_inline());
    }

    #[test]
    fn large_clones_share_storage() {
        let a = Bytes::from(vec![7u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn roundtrip_and_compare() {
        let a = Bytes::copy_from_slice(b"hello");
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert_eq!(a.to_vec(), b"hello".to_vec());
        assert_eq!(a, Bytes::from_static(b"hello"));
        assert_eq!(a[0], b'h');
    }

    #[test]
    fn empty_never_allocates() {
        let e = Bytes::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(Bytes::default(), e);
    }
}
