//! Fig. 6: launch the modified OSU alltoall under Open MPI (+Mukautuva
//! +MANA), checkpoint during its 10-second post-warmup sleep window,
//! restart under MPICH, and compare the measured latencies against the two
//! uninterrupted launches.
//!
//! Usage: `fig6_restart [--quick] [--deltas]`.
//!
//! With `--deltas` the checkpoint is persisted through the asynchronous
//! delta-checkpoint store and the restart reconstructs the world from the
//! on-disk epoch chain instead of an in-memory image.

use mpi_apps::{OsuKernel, OsuLatency};
use stool_bench::{
    fig6_data, fig6_data_via_store, paper_cluster, print_restart_figure, quick_cluster,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let deltas = std::env::args().any(|a| a == "--deltas");
    let bench = if quick {
        OsuLatency {
            kernel: OsuKernel::Alltoall,
            min_size: 1,
            max_size: 4 * 1024,
            warmup: 2,
            iters: 10,
            ckpt_window: None, // fig6_data sets the 10 s window itself
        }
    } else {
        OsuLatency::paper_config(OsuKernel::Alltoall)
    };
    let cluster = move |r: u64| {
        if quick {
            quick_cluster(r, 0.0)
        } else {
            paper_cluster(r, 0.0)
        }
    };
    let fig = if deltas {
        let dir = std::env::temp_dir().join(format!("fig6-delta-chain-{}", std::process::id()));
        let fig = fig6_data_via_store(cluster, &bench, &dir).expect("fig6 run via store");
        std::fs::remove_dir_all(&dir).ok();
        fig
    } else {
        fig6_data(cluster, &bench).expect("fig6 run")
    };
    print_restart_figure(&fig);
}
