//! Fig. 2: OSU `MPI_Alltoall` median latency across four configurations.
//!
//! Usage: `fig2_alltoall [--quick]` — `--quick` runs a reduced sweep on a
//! small cluster for smoke testing; the default reproduces the paper's
//! setup (48 ranks on 4 nodes, 1 B – 256 KiB, 5 repeats with jitter).

use mpi_apps::{OsuKernel, OsuLatency};
use stool_bench::{osu_figure, paper_cluster, print_osu_figure, quick_cluster};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bench = if quick {
        OsuLatency {
            kernel: OsuKernel::Alltoall,
            min_size: 1,
            max_size: 4 * 1024,
            warmup: 2,
            iters: 10,
            ckpt_window: None,
        }
    } else {
        OsuLatency::paper_config(OsuKernel::Alltoall)
    };
    let repeats = if quick { 2 } else { 5 };
    let sigma = 0.06;
    let fig = if quick {
        osu_figure(
            OsuKernel::Alltoall,
            |r| quick_cluster(r, sigma),
            &bench,
            repeats,
        )
    } else {
        osu_figure(
            OsuKernel::Alltoall,
            |r| paper_cluster(r, sigma),
            &bench,
            repeats,
        )
    }
    .expect("fig2 run");
    print_osu_figure(&fig);
}
