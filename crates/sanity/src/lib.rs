//! The invariant gate: correctness tooling for the workspace.
//!
//! Three enforcement layers, one crate (dependency-free on purpose —
//! the gate must build even when the rest of the workspace is broken):
//!
//! * [`lint`] — the `stoolint` engine: a lightweight Rust tokenizer and
//!   data-driven rule visitors that turn the ROADMAP's prose
//!   architecture invariants (no ad-hoc stderr tracing, no sleeping on
//!   hot paths, no allocation on emit paths, no guard live across a
//!   rank barrier, no registry dependencies) into CI-gated findings
//!   with `benchgate`-style exit-2 semantics. Run it with
//!   `cargo run -p sanity --bin stoolint`.
//! * [`lockcheck`] — runtime lock-order detection:
//!   [`lockcheck::TrackedMutex`] / [`lockcheck::TrackedCondvar`]
//!   wrappers (zero-cost unless the `lockcheck` feature is on) that
//!   build a global acquisition-order graph, flag cycles and guards
//!   held across rendezvous points, and report through the flight
//!   recorder as `LockCycle` incidents.
//! * The `loom` shim (`shims/loom`) complements both with bounded
//!   exhaustive-interleaving model checking of the lock-free protocols
//!   a lint cannot reason about; see `docs/static-analysis.md`.

pub mod lint;
pub mod lockcheck;
