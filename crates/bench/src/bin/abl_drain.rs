//! Ablation: checkpoint drain cost as a function of in-flight messages.
//!
//! The drain protocol pulls every in-flight message into upper-half memory
//! before the image is written. This ablation launches a program that
//! leaves a controlled number of messages in flight at the checkpoint and
//! reports the image size and the virtual time spent checkpointing.
//!
//! Usage: `abl_drain`.

use mpi_abi::{Datatype, Handle};
use simnet::ClusterSpec;
use stool::{AppCtx, Checkpointer, CkptMode, MpiProgram, Session, StoolResult, Vendor};

/// Sends `in_flight` messages from rank 0 to rank 1 that rank 1 never
/// receives before the checkpoint, then stops at the checkpoint.
struct InFlight {
    in_flight: usize,
    msg_bytes: usize,
}

impl MpiProgram for InFlight {
    fn name(&self) -> &'static str {
        "drain-ablation"
    }

    fn run(&self, app: &mut AppCtx<'_>) -> StoolResult<()> {
        if app.resume_step() == 0 {
            if app.rank() == 0 {
                let payload = vec![0xABu8; self.msg_bytes];
                for i in 0..self.in_flight {
                    app.mpi().send(
                        &payload,
                        Datatype::Byte.handle(),
                        1,
                        i as i32,
                        Handle::COMM_WORLD,
                    )?;
                }
            }
            if app.checkpoint_point(1)?.is_stop() {
                return Ok(());
            }
        }
        // Post-restart: receive everything.
        if app.rank() == 1 {
            let mut buf = vec![0u8; self.msg_bytes];
            for i in 0..self.in_flight {
                app.mpi().recv(
                    &mut buf,
                    Datatype::Byte.handle(),
                    0,
                    i as i32,
                    Handle::COMM_WORLD,
                )?;
            }
        }
        Ok(())
    }
}

fn main() {
    let cluster = ClusterSpec::builder().nodes(2).ranks_per_node(1).build();
    println!("# Ablation: drain cost vs in-flight messages (2 ranks, 4 KiB messages)");
    println!(
        "{:>12} {:>16} {:>18}",
        "in-flight", "image bytes", "ckpt time (ms)"
    );
    for in_flight in [0usize, 1, 8, 64, 256] {
        let program = InFlight {
            in_flight,
            msg_bytes: 4096,
        };
        let session = Session::builder()
            .cluster(cluster.clone())
            .vendor(Vendor::Mpich)
            .checkpointer(Checkpointer::mana())
            .checkpoint_at_step(1, CkptMode::Stop)
            .build()
            .expect("session");
        let t_run = session.launch(&program).expect("launch");
        let ckpt_ms = t_run.makespan().as_secs_f64() * 1e3;
        let image = t_run.into_image().expect("image");
        println!(
            "{:>12} {:>16} {:>18.3}",
            in_flight,
            image.total_bytes(),
            ckpt_ms
        );

        // And prove the drained messages arrive after restart.
        let restart = Session::builder()
            .cluster(cluster.clone())
            .vendor(Vendor::OpenMpi)
            .checkpointer(Checkpointer::mana())
            .build()
            .expect("session");
        restart
            .restore(&image, &program)
            .expect("restore completes");
    }
    println!("# image grows by ~msg_bytes per in-flight message; restore re-delivers all");
}
