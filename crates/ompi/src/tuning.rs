//! Open MPI-flavour tuning: a leaner per-message software path than the
//! MPICH flavour, different protocol switchover points, and the `coll/tuned`
//! algorithm family (binary-tree + pipelined broadcast, ring allreduce,
//! linear + pairwise alltoall).

use simnet::VirtualTime;

/// Tuning parameters for the Open MPI-flavoured library.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tuning {
    /// CPU time charged on the sender per message. Lower than the MPICH
    /// flavour's: this library's small-message path is leaner, which is
    /// what makes it faster on the paper's `wave_mpi` workload.
    pub o_send: VirtualTime,
    /// CPU time charged on the receiver per matched message.
    pub o_recv: VirtualTime,
    /// Messages above this use the rendezvous protocol.
    pub eager_threshold: usize,
    /// Bcast: binary tree up to this payload, pipelined chain above.
    pub bcast_bintree_max: usize,
    /// Segment size for pipelined bcast/reduce chains.
    pub pipeline_segment: usize,
    /// Allreduce: recursive doubling up to this payload, ring above.
    pub allreduce_recdbl_max: usize,
    /// Alltoall: posted/linear up to this block size, pairwise above.
    /// High on this testbed: pairwise pays the full 10 GbE latency per
    /// round, so the posted algorithm stays ahead until serialization
    /// dominates.
    pub alltoall_linear_max: usize,
    /// Allgather: neighbour-exchange up to this payload, ring above.
    pub allgather_neighbor_max: usize,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            o_send: VirtualTime::from_nanos(700),
            o_recv: VirtualTime::from_nanos(700),
            eager_threshold: 8 * 1024,
            bcast_bintree_max: 2 * 1024,
            pipeline_segment: 8 * 1024,
            allreduce_recdbl_max: 1024,
            alltoall_linear_max: 64 * 1024,
            allgather_neighbor_max: 2 * 1024,
        }
    }
}

impl Tuning {
    /// Library identification string advertised through the ABI.
    pub const VERSION: &'static str = "ompi-sim 3.1.2 (native ABI: pointer handles)";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaner_than_mpich_flavour() {
        let t = Tuning::default();
        // The vendor performance difference in the paper's Fig. 5 rests on
        // this inequality; pin it.
        assert!(t.o_send < VirtualTime::from_nanos(1_800));
        assert!(t.pipeline_segment > 0);
    }
}
