//! Loom models of the workspace's two hand-rolled concurrency
//! protocols: the telemetry seqlock (`simnet::telemetry::Telemetry::emit`
//! vs. the reader's double-checked collect) and the shared store's
//! mux-lane round-robin cursor (`dmtcp::store::SharedStoreWriter`).
//!
//! The models *mirror* the production protocols rather than
//! instantiating them (the production types bundle I/O and rings the
//! model checker has no business exploring); each model names the code
//! it shadows, and `docs/static-analysis.md` records the pairing so
//! protocol changes update both sides. Exploration is exhaustive at the
//! default bounds — see `shims/loom` for exactly what that claims.

use std::sync::Arc;

use loom::sync::atomic::{AtomicU64, Ordering::SeqCst};
use loom::sync::Mutex;
use loom::thread;

/// Mirror of one telemetry ring slot mid-emit (telemetry.rs `emit`):
/// the writer stores `seq = 2·ticket+1`, the payload fields, then
/// publishes `seq = 2·ticket+2`. A reader (`Lane::collect`) reads the
/// seq, the payload, then the seq again, and surfaces the payload only
/// if both reads saw the same published value. The property: no
/// interleaving lets a reader surface a torn (half-written) slot.
#[test]
fn seqlock_reader_never_surfaces_a_torn_slot() {
    loom::model(|| {
        let seq = Arc::new(AtomicU64::new(0));
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));

        let writer = {
            let (seq, a, b) = (seq.clone(), a.clone(), b.clone());
            thread::spawn(move || {
                // Ticket 0: 2·0+1 mid-write, 2·0+2 published.
                seq.store(1, SeqCst);
                a.store(7, SeqCst);
                b.store(9, SeqCst);
                seq.store(2, SeqCst);
            })
        };

        // Concurrent reader, double-check protocol of `Lane::collect`.
        let s1 = seq.load(SeqCst);
        if s1 == 2 {
            let ra = a.load(SeqCst);
            let rb = b.load(SeqCst);
            let s2 = seq.load(SeqCst);
            if s2 == s1 {
                // Both checks passed: the payload must be complete.
                assert_eq!((ra, rb), (7, 9), "published slot read torn");
            }
        }
        // Odd (mid-write) or zero (empty) seq: the reader skips the
        // slot — there is no payload assertion to get wrong.

        writer.join().unwrap();
        // Once the writer retires, the slot is published and intact.
        assert_eq!(seq.load(SeqCst), 2);
        assert_eq!((a.load(SeqCst), b.load(SeqCst)), (7, 9));
    });
}

/// Mirror of two concurrent emitters on one lane: each takes a unique
/// ticket from the lane head (`head.fetch_add`) and publishes its own
/// slot. The property: tickets never collide, so no write is lost —
/// both slots end up published with their writer's payload.
#[test]
fn concurrent_emitters_never_lose_a_write() {
    loom::model(|| {
        let head = Arc::new(AtomicU64::new(0));
        let seqs: Vec<Arc<AtomicU64>> = (0..2).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let vals: Vec<Arc<AtomicU64>> = (0..2).map(|_| Arc::new(AtomicU64::new(0))).collect();

        let handles: Vec<_> = (0..2u64)
            .map(|w| {
                let head = head.clone();
                let seqs = seqs.clone();
                let vals = vals.clone();
                thread::spawn(move || {
                    let ticket = head.fetch_add(1, SeqCst);
                    let slot = ticket as usize;
                    seqs[slot].store(2 * ticket + 1, SeqCst);
                    vals[slot].store(100 + w, SeqCst);
                    seqs[slot].store(2 * ticket + 2, SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        assert_eq!(head.load(SeqCst), 2, "each emitter took one ticket");
        let published: Vec<u64> = (0..2)
            .map(|s| {
                assert_eq!(seqs[s].load(SeqCst), 2 * s as u64 + 2, "slot {s} published");
                vals[s].load(SeqCst)
            })
            .collect();
        let mut sorted = published.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![100, 101], "no write lost, none duplicated");
    });
}

/// Mirror of the shared store committer's lane state
/// (store.rs `MuxState`): per-lane backlogs, the fair round-robin
/// cursor, and the test hook that holds one lane closed.
struct MuxState {
    lanes: Vec<u32>,
    rr: usize,
    held: Option<usize>,
}

/// Mirror of the committer's pop: scan from the cursor, skip a held
/// lane, and park the cursor one past the lane served (store.rs:
/// `st.rr = (idx + 1) % n` — the PR 8 fairness fix).
fn pop_next(st: &mut MuxState) -> Option<usize> {
    let n = st.lanes.len();
    for k in 0..n {
        let idx = (st.rr + k) % n;
        if st.held == Some(idx) || st.lanes[idx] == 0 {
            continue;
        }
        st.lanes[idx] -= 1;
        st.rr = (idx + 1) % n;
        return Some(idx);
    }
    None
}

/// A held lane is skipped but never starves the rest, and once
/// released (concurrently, from another thread) its backlog drains
/// too: every lane is served exactly its backlog, in every
/// interleaving of the release.
#[test]
fn mux_round_robin_drains_every_lane_around_a_held_lane() {
    loom::model(|| {
        let st = Arc::new(Mutex::new(MuxState {
            lanes: vec![1, 1, 1],
            rr: 0,
            held: Some(0),
        }));
        let releaser = {
            let st = st.clone();
            thread::spawn(move || {
                st.lock().unwrap().held = None;
            })
        };

        let mut popped = Vec::new();
        for _ in 0..2 {
            let mut g = st.lock().unwrap();
            if let Some(idx) = pop_next(&mut g) {
                assert_ne!(g.held, Some(idx), "served a lane while it was held");
                popped.push(idx);
            }
        }
        releaser.join().unwrap();
        while let Some(idx) = pop_next(&mut st.lock().unwrap()) {
            popped.push(idx);
        }

        popped.sort_unstable();
        assert_eq!(popped, vec![0, 1, 2], "every lane drained exactly once");
    });
}

/// With two backlogged lanes, the cursor alternates strictly — a
/// tenant refilling lane 0 mid-drain (any interleaving) cannot starve
/// lane 1. This is the committer property the PR 8 cursor fix bought.
#[test]
fn mux_cursor_alternates_under_a_backlogged_lane() {
    loom::model(|| {
        let st = Arc::new(Mutex::new(MuxState {
            lanes: vec![2, 2],
            rr: 0,
            held: None,
        }));
        let pusher = {
            let st = st.clone();
            thread::spawn(move || {
                // Lane 0's tenant keeps feeding it mid-drain.
                st.lock().unwrap().lanes[0] += 1;
            })
        };

        let mut popped = Vec::new();
        for _ in 0..4 {
            if let Some(idx) = pop_next(&mut st.lock().unwrap()) {
                popped.push(idx);
            }
        }
        pusher.join().unwrap();

        assert_eq!(
            popped,
            vec![0, 1, 0, 1],
            "strict alternation regardless of when the push lands"
        );
    });
}
