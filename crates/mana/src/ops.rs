//! Named registry for user-defined reduction functions.
//!
//! Real MANA restores function pointers for free because it restores the
//! whole address space; a safe-Rust reproduction cannot conjure a function
//! pointer from bytes. Instead, applications register their reduction
//! functions by name **once** (the analogue of the function living at a
//! known symbol in the restored binary); the MANA wrapper records the
//! *name* in its replay log and the restart path resolves it again.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

use mpi_abi::UserOpFn;

static REGISTRY: Mutex<Option<HashMap<String, UserOpFn>>> = Mutex::new(None);

/// Lock the registry, shrugging off poison: the only write that can panic
/// is the deliberate symbol-clash panic, which leaves the map intact.
fn registry() -> MutexGuard<'static, Option<HashMap<String, UserOpFn>>> {
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Register a user-defined reduction function under a stable name.
/// Re-registering the same name with the same function is a no-op;
/// re-registering with a different function panics (symbol clash).
pub fn register(name: &str, func: UserOpFn) {
    let mut guard = registry();
    let map = guard.get_or_insert_with(HashMap::new);
    match map.get(name) {
        Some(&existing) if std::ptr::fn_addr_eq(existing, func) => {}
        Some(_) => panic!("user op {name:?} already registered with a different function"),
        None => {
            map.insert(name.to_string(), func);
        }
    }
}

/// Look up a function by name (restart path).
pub fn lookup(name: &str) -> Option<UserOpFn> {
    registry().as_ref()?.get(name).copied()
}

/// Reverse lookup: find the registered name of a function pointer
/// (checkpoint path, when the application calls `op_create`).
pub fn name_of(func: UserOpFn) -> Option<String> {
    let guard = registry();
    let map = guard.as_ref()?;
    map.iter()
        .find(|(_, &f)| std::ptr::fn_addr_eq(f, func))
        .map(|(n, _)| n.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op_a(inv: &[u8], io: &mut [u8], _e: usize) {
        for (a, b) in inv.iter().zip(io.iter_mut()) {
            *b = b.wrapping_add(*a);
        }
    }

    fn op_b(inv: &[u8], io: &mut [u8], _e: usize) {
        for (a, b) in inv.iter().zip(io.iter_mut()) {
            *b ^= *a;
        }
    }

    #[test]
    fn register_lookup_round_trip() {
        register("test.sum8", op_a);
        register("test.xor8", op_b);
        assert!(
            matches!(lookup("test.sum8"), Some(f) if std::ptr::fn_addr_eq(f, op_a as UserOpFn))
        );
        assert!(
            matches!(lookup("test.xor8"), Some(f) if std::ptr::fn_addr_eq(f, op_b as UserOpFn))
        );
        assert!(lookup("test.nope").is_none());
        assert_eq!(name_of(op_a).as_deref(), Some("test.sum8"));
        // Idempotent re-registration.
        register("test.sum8", op_a);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn clashing_registration_panics() {
        // Local functions: the registry is process-global and the reverse
        // lookup in `register_lookup_round_trip` must stay unambiguous.
        fn op_c(inv: &[u8], io: &mut [u8], _e: usize) {
            for (a, b) in inv.iter().zip(io.iter_mut()) {
                *b = (*b).max(*a);
            }
        }
        fn op_d(inv: &[u8], io: &mut [u8], _e: usize) {
            for (a, b) in inv.iter().zip(io.iter_mut()) {
                *b = (*b).min(*a);
            }
        }
        register("test.clash", op_c);
        register("test.clash", op_d);
    }
}
