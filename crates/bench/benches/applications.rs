//! Criterion: the real-world applications (Fig. 5's workloads) end to end
//! on the simulator, native vs full stack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpi_apps::{CoMdMini, WaveMpi};
use simnet::ClusterSpec;
use stool::{Checkpointer, MpiProgram, Session, Vendor};

fn run_app(program: &dyn MpiProgram, vendor: Vendor, full: bool) -> f64 {
    let cluster = ClusterSpec::builder().nodes(2).ranks_per_node(2).build();
    let mut b = Session::builder().cluster(cluster).vendor(vendor);
    if full {
        b = b.checkpointer(Checkpointer::mana());
    } else {
        b = b.native_abi();
    }
    let session = b.build().unwrap();
    session.launch(program).unwrap().makespan().as_secs_f64()
}

fn applications(c: &mut Criterion) {
    let mut group = c.benchmark_group("applications");
    group.sample_size(10);
    let comd = CoMdMini {
        nx: 6,
        nsteps: 8,
        print_rate: 4,
        ..CoMdMini::default()
    };
    let wave = WaveMpi {
        npoints: 1_000,
        nsteps: 150,
        gather_final: false,
        ..WaveMpi::default()
    };

    for (name, program) in [("comd", &comd as &dyn MpiProgram), ("wave", &wave)] {
        for vendor in [Vendor::Mpich, Vendor::OpenMpi] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_native"), vendor.name()),
                &vendor,
                |b, &v| b.iter(|| run_app(program, v, false)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_full_stack"), vendor.name()),
                &vendor,
                |b, &v| b.iter(|| run_app(program, v, true)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, applications);
criterion_main!(benches);
