//! Checkpoint images: one per rank, grouped per world, savable to files.
//!
//! A [`RankImage`] is a set of named sections, each an opaque byte blob
//! produced by a layer of the stack (the platform writes `memory` and
//! `meta`; the MANA layer adds `mana.vids`, `mana.pool`, `mana.counters`).
//! This sectioning mirrors how DMTCP plugins contribute areas to a real
//! `.dmtcp` image.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write as IoWrite};
use std::path::{Path, PathBuf};

use crate::codec::{CodecError, Reader, Writer};

const RANK_MAGIC: u64 = 0x4D50_4953_544F_4F4C; // "MPISTOOL"
const IMAGE_VERSION: u64 = 1;

/// What went wrong saving or loading a checkpoint image, with enough
/// context (rank, epoch, path) to name the exact artifact at fault — a
/// torn restart must say *which* file of *which* rank broke, not just
/// "parse error".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// A filesystem operation failed. `rank` is `None` for world-level
    /// files (`world.meta`).
    Io {
        /// The operation that failed ("create", "open", "read", ...).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The rank whose image was being handled, if any.
        rank: Option<usize>,
        /// The OS error, stringified (keeps the error cloneable).
        msg: String,
    },
    /// A rank image failed to decode (truncated, corrupted, bad magic).
    Decode {
        /// The rank whose image failed.
        rank: usize,
        /// The path read.
        path: PathBuf,
        /// The codec-level cause.
        source: CodecError,
    },
    /// The world metadata file failed to decode.
    Meta {
        /// The path read.
        path: PathBuf,
        /// The codec-level cause.
        source: CodecError,
    },
    /// A rank image's header does not belong where it was found.
    RankMismatch {
        /// The rank expected from the file name / slot.
        expected: usize,
        /// The rank the image header claims.
        found: usize,
        /// The path read.
        path: PathBuf,
    },
    /// The delta-checkpoint store failed while persisting or rebuilding an
    /// epoch (see [`crate::store`]); carried here so checkpoint-protocol
    /// callers see one error type.
    Store {
        /// The epoch involved (0 when unknown).
        epoch: u64,
        /// The store-level cause, stringified.
        msg: String,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Io {
                op,
                path,
                rank,
                msg,
            } => match rank {
                Some(r) => write!(f, "{op} {} (rank {r} image): {msg}", path.display()),
                None => write!(f, "{op} {}: {msg}", path.display()),
            },
            ImageError::Decode { rank, path, source } => {
                write!(f, "rank {rank} image {}: {source}", path.display())
            }
            ImageError::Meta { path, source } => {
                write!(f, "world metadata {}: {source}", path.display())
            }
            ImageError::RankMismatch {
                expected,
                found,
                path,
            } => write!(
                f,
                "rank image {} claims rank {found}, expected rank {expected}",
                path.display()
            ),
            ImageError::Store { epoch, msg } => {
                write!(f, "checkpoint store (epoch {epoch}): {msg}")
            }
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageError::Decode { source, .. } | ImageError::Meta { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl ImageError {
    fn io(op: &'static str, path: &Path, rank: Option<usize>, e: std::io::Error) -> ImageError {
        ImageError::Io {
            op,
            path: path.to_path_buf(),
            rank,
            msg: e.to_string(),
        }
    }
}

/// Write `data` to `path` crash-safely: write to a sibling temp file, then
/// atomically rename over the destination. An interrupted writer can leave
/// a stray `*.tmp`, never a torn destination file.
pub(crate) fn write_atomic(
    path: &Path,
    data: &[u8],
    rank: Option<usize>,
) -> Result<(), ImageError> {
    let tmp = path.with_extension("tmp");
    let mut f = std::fs::File::create(&tmp).map_err(|e| ImageError::io("create", &tmp, rank, e))?;
    f.write_all(data)
        .map_err(|e| ImageError::io("write", &tmp, rank, e))?;
    f.sync_all()
        .map_err(|e| ImageError::io("sync", &tmp, rank, e))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| ImageError::io("rename", path, rank, e))
}

/// A single rank's checkpoint image.
#[derive(Debug, Clone, Default)]
pub struct RankImage {
    /// Rank id within the world at checkpoint time.
    pub rank: usize,
    /// World size at checkpoint time.
    pub nranks: usize,
    /// Checkpoint epoch (coordinator-assigned, monotonic).
    pub epoch: u64,
    /// Named sections.
    sections: BTreeMap<String, Vec<u8>>,
    /// Transient clean-segment hints: per section, the producer's
    /// generation stamp (see [`crate::memory::Memory::generation`]). The
    /// delta store skips chunking and hashing a section whose hint has
    /// not moved since the previous committed epoch. Hints are run-local
    /// advice — never serialized, never part of image equality — so a
    /// reloaded image simply carries none and is fully re-hashed.
    hints: BTreeMap<String, u64>,
}

/// Equality is over the durable payload (header + sections); the
/// transient dirty-tracking hints never participate, so an image
/// reconstructed from disk compares equal to the one checkpointed.
impl PartialEq for RankImage {
    fn eq(&self, other: &RankImage) -> bool {
        self.rank == other.rank
            && self.nranks == other.nranks
            && self.epoch == other.epoch
            && self.sections == other.sections
    }
}

impl Eq for RankImage {}

impl RankImage {
    /// New empty image for a rank.
    pub fn new(rank: usize, nranks: usize, epoch: u64) -> RankImage {
        RankImage {
            rank,
            nranks,
            epoch,
            sections: BTreeMap::new(),
            hints: BTreeMap::new(),
        }
    }

    /// Add or replace a section.
    pub fn put_section(&mut self, name: &str, data: Vec<u8>) {
        self.hints.remove(name);
        self.sections.insert(name.to_string(), data);
    }

    /// Add or replace a section together with its producer generation
    /// stamp (the clean-segment hint the delta store uses to skip
    /// hashing unchanged sections). The stamp must move whenever the
    /// data may have changed; a conservative producer that cannot tell
    /// should use [`RankImage::put_section`] instead.
    pub fn put_section_hinted(&mut self, name: &str, data: Vec<u8>, generation: u64) {
        self.sections.insert(name.to_string(), data);
        self.hints.insert(name.to_string(), generation);
    }

    /// The clean-segment hint of a section, if its producer supplied one.
    pub fn section_hint(&self, name: &str) -> Option<u64> {
        self.hints.get(name).copied()
    }

    /// Fetch a section.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections.get(name).map(Vec::as_slice)
    }

    /// Section names in deterministic order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.keys().map(String::as_str)
    }

    /// All sections as `(name, data)` pairs in deterministic order (the
    /// delta store chunks each section independently).
    pub fn sections(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.sections
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Total payload size (what would hit the parallel filesystem).
    pub fn total_bytes(&self) -> usize {
        self.sections.values().map(Vec::len).sum()
    }

    /// Serialize with magic, version and checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(RANK_MAGIC);
        w.u64(IMAGE_VERSION);
        w.u64(self.rank as u64);
        w.u64(self.nranks as u64);
        w.u64(self.epoch);
        w.u64(self.sections.len() as u64);
        for (name, data) in &self.sections {
            w.string(name);
            w.bytes(data);
        }
        w.finish()
    }

    /// Deserialize, verifying checksum and magic.
    pub fn decode(buf: &[u8]) -> Result<RankImage, CodecError> {
        let mut r = Reader::checked(buf)?;
        r.expect_magic(RANK_MAGIC)?;
        r.expect_magic(IMAGE_VERSION)?;
        let rank = r.u64()? as usize;
        let nranks = r.u64()? as usize;
        let epoch = r.u64()?;
        let nsections = r.u64()?;
        if nsections > 4096 {
            return Err(CodecError::LengthOutOfBounds(nsections));
        }
        let mut sections = BTreeMap::new();
        for _ in 0..nsections {
            let name = r.string()?;
            let data = r.bytes()?.to_vec();
            sections.insert(name, data);
        }
        Ok(RankImage {
            rank,
            nranks,
            epoch,
            sections,
            hints: BTreeMap::new(),
        })
    }
}

/// The set of images of one checkpointed world, plus world-level metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldImage {
    /// Which MPI library the world ran under when checkpointed (hint only:
    /// the whole point of the paper is that restart may pick another).
    pub vendor_hint: String,
    /// Per-rank images, indexed by rank.
    pub ranks: Vec<RankImage>,
}

impl WorldImage {
    /// Assemble from per-rank images (must be dense in rank order).
    pub fn new(vendor_hint: String, ranks: Vec<RankImage>) -> WorldImage {
        WorldImage { vendor_hint, ranks }
    }

    /// World size.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// Total bytes across all rank images.
    pub fn total_bytes(&self) -> usize {
        self.ranks.iter().map(RankImage::total_bytes).sum()
    }

    /// File path of one rank's image under `dir`.
    pub fn rank_path(dir: &Path, rank: usize) -> PathBuf {
        dir.join(format!("ckpt_rank_{rank:05}.img"))
    }

    /// Save all rank images under a directory (like `ckpt_*.dmtcp` files).
    ///
    /// Crash-safe: every file is written to a temp path and atomically
    /// renamed into place, so an interrupted save can leave stray `*.tmp`
    /// files but never a torn image that [`WorldImage::load_dir`]
    /// half-parses.
    pub fn save_dir(&self, dir: &Path) -> Result<(), ImageError> {
        std::fs::create_dir_all(dir).map_err(|e| ImageError::io("create dir", dir, None, e))?;
        let mut meta = Writer::new();
        meta.u64(RANK_MAGIC);
        meta.string(&self.vendor_hint);
        meta.u64(self.ranks.len() as u64);
        write_atomic(&dir.join("world.meta"), &meta.finish(), None)?;
        for img in &self.ranks {
            let path = Self::rank_path(dir, img.rank);
            write_atomic(&path, &img.encode(), Some(img.rank))?;
        }
        Ok(())
    }

    /// Load a world image from a directory.
    pub fn load_dir(dir: &Path) -> Result<WorldImage, ImageError> {
        let meta_path = dir.join("world.meta");
        let read_file = |path: &Path, rank: Option<usize>| -> Result<Vec<u8>, ImageError> {
            let mut buf = Vec::new();
            std::fs::File::open(path)
                .map_err(|e| ImageError::io("open", path, rank, e))?
                .read_to_end(&mut buf)
                .map_err(|e| ImageError::io("read", path, rank, e))?;
            Ok(buf)
        };
        let meta_buf = read_file(&meta_path, None)?;
        let meta_err = |source: CodecError| ImageError::Meta {
            path: meta_path.clone(),
            source,
        };
        let mut r = Reader::checked(&meta_buf).map_err(meta_err)?;
        r.expect_magic(RANK_MAGIC).map_err(meta_err)?;
        let vendor_hint = r.string().map_err(meta_err)?;
        let nranks = r.u64().map_err(meta_err)? as usize;
        let mut ranks = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            let path = Self::rank_path(dir, rank);
            let buf = read_file(&path, Some(rank))?;
            let img = RankImage::decode(&buf).map_err(|source| ImageError::Decode {
                rank,
                path: path.clone(),
                source,
            })?;
            if img.rank != rank {
                return Err(ImageError::RankMismatch {
                    expected: rank,
                    found: img.rank,
                    path,
                });
            }
            ranks.push(img);
        }
        Ok(WorldImage { vendor_hint, ranks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image(rank: usize) -> RankImage {
        let mut img = RankImage::new(rank, 4, 3);
        img.put_section("memory", vec![1, 2, 3, rank as u8]);
        img.put_section("mana.vids", vec![9; 16]);
        img
    }

    #[test]
    fn rank_image_round_trip() {
        let img = sample_image(2);
        let buf = img.encode();
        let back = RankImage::decode(&buf).unwrap();
        assert_eq!(img, back);
        assert_eq!(back.section("memory").unwrap(), &[1, 2, 3, 2]);
        assert_eq!(back.total_bytes(), 20);
        assert_eq!(
            back.section_names().collect::<Vec<_>>(),
            vec!["mana.vids", "memory"]
        );
    }

    #[test]
    fn corrupted_rank_image_rejected() {
        let img = sample_image(0);
        let mut buf = img.encode();
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        assert!(RankImage::decode(&buf).is_err());
    }

    #[test]
    fn world_image_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("stool_img_test_{}", std::process::id()));
        let world = WorldImage::new("Open MPI".to_string(), (0..4).map(sample_image).collect());
        world.save_dir(&dir).unwrap();
        let back = WorldImage::load_dir(&dir).unwrap();
        assert_eq!(world, back);
        assert_eq!(back.vendor_hint, "Open MPI");
        assert_eq!(back.nranks(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_image_file_detected() {
        let dir = std::env::temp_dir().join(format!("stool_img_trunc_{}", std::process::id()));
        let world = WorldImage::new("MPICH".to_string(), (0..2).map(sample_image).collect());
        world.save_dir(&dir).unwrap();
        // Truncate one rank's file.
        let path = WorldImage::rank_path(&dir, 1);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = WorldImage::load_dir(&dir).unwrap_err();
        assert!(matches!(err, ImageError::Decode { rank: 1, .. }), "{err}");
        assert!(err.to_string().contains("rank 1"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_temp_file_does_not_confuse_load() {
        // A crashed save may leave `*.tmp` files; the committed image must
        // still load, and the stray must not shadow a real rank file.
        let dir = std::env::temp_dir().join(format!("stool_img_tmp_{}", std::process::id()));
        let world = WorldImage::new("MPICH".to_string(), (0..2).map(sample_image).collect());
        world.save_dir(&dir).unwrap();
        std::fs::write(
            WorldImage::rank_path(&dir, 0).with_extension("tmp"),
            b"torn",
        )
        .unwrap();
        let back = WorldImage::load_dir(&dir).unwrap();
        assert_eq!(world, back);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_rank_file_names_the_rank() {
        let dir = std::env::temp_dir().join(format!("stool_img_miss_{}", std::process::id()));
        let world = WorldImage::new("MPICH".to_string(), (0..2).map(sample_image).collect());
        world.save_dir(&dir).unwrap();
        std::fs::remove_file(WorldImage::rank_path(&dir, 1)).unwrap();
        let err = WorldImage::load_dir(&dir).unwrap_err();
        assert!(matches!(err, ImageError::Io { rank: Some(1), .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
