//! Launching a world: one thread per rank, panic containment, result
//! collection.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Arc;

use crate::cluster::ClusterSpec;
use crate::error::{SimError, SimResult};
use crate::fabric::Fabric;
use crate::rank::{RankCounters, RankCtx};
use crate::time::VirtualTime;

/// Result of running a world to completion.
#[derive(Debug)]
pub struct WorldOutcome<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank final virtual clocks.
    pub clocks: Vec<VirtualTime>,
    /// Per-rank communication counters.
    pub counters: Vec<RankCounters>,
}

impl<R> WorldOutcome<R> {
    /// The makespan: the maximum final clock over all ranks — what a user
    /// would observe as the job's completion time.
    pub fn makespan(&self) -> VirtualTime {
        self.clocks
            .iter()
            .copied()
            .fold(VirtualTime::ZERO, VirtualTime::max)
    }
}

/// Launches rank threads over a fresh fabric.
pub struct World;

impl World {
    /// Run `f` once per rank on its own OS thread and collect the results.
    ///
    /// The closure receives an `Rc<RankCtx>` so that deep software stacks
    /// (vendor library → ABI shim → checkpoint wrappers → application) can
    /// each hold a shared handle to the rank context without lifetime
    /// plumbing; the `Rc` never leaves its thread.
    ///
    /// * If any rank returns an error, the fabric is shut down (so blocked
    ///   peers unwind) and the first error by rank order is returned.
    /// * If any rank panics, the panic is contained, the fabric is shut
    ///   down, and [`SimError::RankPanicked`] is returned.
    pub fn run<R, F>(spec: &ClusterSpec, f: F) -> SimResult<WorldOutcome<R>>
    where
        R: Send,
        F: Fn(Rc<RankCtx>) -> SimResult<R> + Sync,
    {
        spec.validate().map_err(SimError::InvalidConfig)?;
        let spec = Arc::new(spec.clone());
        let (fabric, endpoints) = Fabric::new(&spec);
        Self::run_on(spec, fabric, endpoints, f)
    }

    /// Like [`World::run`], but over a caller-provided fabric — used by the
    /// checkpointing layers, which need to keep out-of-band coordinator
    /// channels alongside the fabric.
    pub fn run_on<R, F>(
        spec: Arc<ClusterSpec>,
        fabric: Fabric,
        endpoints: Vec<crate::fabric::Endpoint>,
        f: F,
    ) -> SimResult<WorldOutcome<R>>
    where
        R: Send,
        F: Fn(Rc<RankCtx>) -> SimResult<R> + Sync,
    {
        let nranks = spec.nranks();
        assert_eq!(endpoints.len(), nranks, "one endpoint per rank required");
        let f = &f;

        let mut slots: Vec<Option<(SimResult<R>, VirtualTime, RankCounters)>> =
            (0..nranks).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nranks);
            for (rank, ep) in endpoints.into_iter().enumerate() {
                let spec = spec.clone();
                let fabric = fabric.clone();
                handles.push(scope.spawn(move || {
                    let ctx = Rc::new(RankCtx::new(
                        rank,
                        spec.clone(),
                        ep,
                        spec.noise.stream_for_rank(rank),
                    ));
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(ctx.clone())));
                    let (res, clock, counters) = match outcome {
                        Ok(res) => {
                            if res.is_err() {
                                fabric.shutdown();
                            }
                            (res, ctx.now(), ctx.counters())
                        }
                        Err(payload) => {
                            fabric.shutdown();
                            let message = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "<non-string panic payload>".into());
                            (
                                Err(SimError::RankPanicked { rank, message }),
                                ctx.now(),
                                ctx.counters(),
                            )
                        }
                    };
                    (rank, res, clock, counters)
                }));
            }
            for handle in handles {
                // The closure itself contains panics, so join only fails if
                // the containment machinery is broken; propagate in that case.
                let (rank, res, clock, counters) = handle.join().expect("rank thread join failed");
                slots[rank] = Some((res, clock, counters));
            }
        });

        let mut results = Vec::with_capacity(nranks);
        let mut clocks = Vec::with_capacity(nranks);
        let mut counters = Vec::with_capacity(nranks);
        let mut first_err = None;
        for slot in slots {
            let (res, clock, ctrs) = slot.expect("all ranks recorded");
            clocks.push(clock);
            counters.push(ctrs);
            match res {
                Ok(r) => results.push(r),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(WorldOutcome {
                results,
                clocks,
                counters,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn all_ranks_run_and_report() {
        let spec = ClusterSpec::builder().nodes(2).ranks_per_node(3).build();
        let outcome = World::run(&spec, |ctx| Ok(ctx.rank() * 10)).unwrap();
        assert_eq!(outcome.results, vec![0, 10, 20, 30, 40, 50]);
        assert_eq!(outcome.clocks.len(), 6);
    }

    #[test]
    fn makespan_is_max_clock() {
        let spec = ClusterSpec::builder().nodes(1).ranks_per_node(3).build();
        let outcome = World::run(&spec, |ctx| {
            ctx.advance(VirtualTime::from_micros(ctx.rank() as u64 * 7));
            Ok(())
        })
        .unwrap();
        assert_eq!(outcome.makespan(), VirtualTime::from_micros(14));
    }

    #[test]
    fn ring_exchange_works_across_nodes() {
        let spec = ClusterSpec::builder().nodes(2).ranks_per_node(2).build();
        let outcome = World::run(&spec, |ctx| {
            let n = ctx.nranks();
            let next = (ctx.rank() + 1) % n;
            ctx.endpoint()
                .send_raw(next, 0, 1, Bytes::from(vec![ctx.rank() as u8]), &ctx)?;
            let env = ctx.endpoint().recv_raw_blocking(&ctx)?;
            Ok(env.payload[0] as usize)
        })
        .unwrap();
        assert_eq!(outcome.results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn panic_in_one_rank_is_contained() {
        let spec = ClusterSpec::builder().nodes(1).ranks_per_node(3).build();
        let err = World::run(&spec, |ctx| {
            if ctx.rank() == 1 {
                panic!("deliberate test panic");
            }
            // Other ranks block awaiting a message that never comes; they
            // must be unblocked by the shutdown triggered by the panic.
            let _ = ctx.endpoint().recv_raw();
            Ok(())
        })
        .unwrap_err();
        match err {
            SimError::RankPanicked { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("deliberate"));
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn error_in_one_rank_shuts_down_world() {
        let spec = ClusterSpec::builder().nodes(1).ranks_per_node(2).build();
        let err = World::run(&spec, |ctx| {
            if ctx.rank() == 0 {
                Err(SimError::InvalidConfig("rank 0 aborts".into()))
            } else {
                let _ = ctx.endpoint().recv_raw();
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err, SimError::InvalidConfig("rank 0 aborts".into()));
    }

    #[test]
    fn invalid_spec_rejected_up_front() {
        let mut spec = ClusterSpec::discovery();
        spec.nodes = 0;
        assert!(matches!(
            World::run(&spec, |_| Ok(())),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn deterministic_across_runs_without_noise() {
        let spec = ClusterSpec::builder().nodes(2).ranks_per_node(2).build();
        let run = || {
            World::run(&spec, |ctx| {
                let n = ctx.nranks();
                let next = (ctx.rank() + 1) % n;
                for _ in 0..8 {
                    ctx.endpoint()
                        .send_raw(next, 0, 0, Bytes::from(vec![0u8; 256]), &ctx)?;
                    ctx.endpoint().recv_raw_blocking(&ctx)?;
                }
                Ok(ctx.now())
            })
            .unwrap()
            .results
        };
        assert_eq!(run(), run());
    }
}
