//! Fault tolerance (the paper's motivating context): periodic
//! checkpoints + injected node failure + Reinit-style global restart,
//! through `Session::run_resilient`.

use mpi_stool::simnet::ClusterSpec;
use mpi_stool::stool::programs::RingPings;
use mpi_stool::stool::{Checkpointer, Session, Vendor};

fn cluster() -> ClusterSpec {
    ClusterSpec::builder().nodes(2).ranks_per_node(2).build()
}

fn clean_total(program: &RingPings, vendor: Vendor) -> f64 {
    let out = Session::builder()
        .cluster(cluster())
        .vendor(vendor)
        .checkpointer(Checkpointer::mana())
        .build()
        .unwrap()
        .launch(program)
        .unwrap();
    out.memories().unwrap()[0].get_f64("ring.total").unwrap()
}

#[test]
fn failure_recovers_from_periodic_checkpoint() {
    let program = RingPings {
        rounds: 12,
        payload: 8,
    };
    let expect = clean_total(&program, Vendor::Mpich);

    let session = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .checkpoint_every(4)
        .inject_node_failure(9, 1)
        .build()
        .unwrap();
    let report = session.run_resilient(&program, 3).unwrap();
    assert_eq!(report.recoveries.len(), 1, "one failure, one recovery");
    assert_eq!(report.recoveries[0].failed_at, 9);
    assert!(
        report.recoveries[0].from_image,
        "a checkpoint (step 4 or 8) must predate the step-9 failure"
    );
    let got = report.outcome.memories().unwrap()[0]
        .get_f64("ring.total")
        .unwrap();
    assert_eq!(
        got, expect,
        "recovered run must finish the same computation"
    );
}

#[test]
fn failure_before_first_checkpoint_restarts_from_scratch() {
    let program = RingPings {
        rounds: 8,
        payload: 8,
    };
    let expect = clean_total(&program, Vendor::OpenMpi);

    let session = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::OpenMpi)
        .checkpointer(Checkpointer::mana())
        .checkpoint_every(6)
        .inject_node_failure(3, 0) // dies before the step-6 checkpoint
        .build()
        .unwrap();
    let report = session.run_resilient(&program, 3).unwrap();
    assert_eq!(report.recoveries.len(), 1);
    assert!(
        !report.recoveries[0].from_image,
        "no checkpoint had completed; recovery is a from-scratch restart"
    );
    let got = report.outcome.memories().unwrap()[0]
        .get_f64("ring.total")
        .unwrap();
    assert_eq!(got, expect);
}

#[test]
fn restart_budget_exhaustion_is_an_error() {
    let program = RingPings {
        rounds: 8,
        payload: 8,
    };
    let session = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .inject_node_failure(2, 0)
        .build()
        .unwrap();
    let err = session.run_resilient(&program, 0).unwrap_err();
    assert!(err.to_string().contains("after 0 restarts"), "{err}");
}

#[test]
fn resilience_requires_a_checkpointer() {
    let program = RingPings {
        rounds: 4,
        payload: 8,
    };
    let session = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::Mpich)
        .build()
        .unwrap();
    let err = session.run_resilient(&program, 1).unwrap_err();
    assert!(err.to_string().contains("MANA"), "{err}");
}

#[test]
fn failed_runs_salvage_image_for_manual_cross_vendor_recovery() {
    // The paper's combined story: a job dies on cluster A (MPICH); the
    // operator restarts the salvaged image on cluster B under Open MPI.
    let program = RingPings {
        rounds: 10,
        payload: 8,
    };
    let expect = clean_total(&program, Vendor::Mpich);

    let outcome = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .checkpoint_every(3)
        .inject_node_failure(8, 1)
        .build()
        .unwrap()
        .launch(&program)
        .unwrap();
    assert!(outcome.is_failed());
    let image = outcome.into_image().expect("periodic image salvaged");
    assert_eq!(image.vendor_hint, "MPICH");

    let recovered = Session::builder()
        .cluster(ClusterSpec::builder().nodes(4).ranks_per_node(1).build())
        .vendor(Vendor::OpenMpi)
        .checkpointer(Checkpointer::mana())
        .build()
        .unwrap()
        .restore(&image, &program)
        .unwrap();
    let got = recovered.memories().unwrap()[0]
        .get_f64("ring.total")
        .unwrap();
    assert_eq!(got, expect, "cross-vendor, cross-cluster recovery");
}

#[test]
fn fault_on_checkpoint_step_loses_that_checkpoint() {
    // Adversarial ordering: the failure fires on entry to the step where
    // a periodic checkpoint was due — the job must recover from the
    // *previous* image, not the never-taken one.
    let program = RingPings {
        rounds: 12,
        payload: 8,
    };
    let expect = clean_total(&program, Vendor::Mpich);
    let session = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .checkpoint_every(4)
        .inject_node_failure(8, 0)
        .build()
        .unwrap();
    let report = session.run_resilient(&program, 2).unwrap();
    assert_eq!(report.recoveries.len(), 1);
    assert!(report.recoveries[0].from_image);
    let got = report.outcome.memories().unwrap()[0]
        .get_f64("ring.total")
        .unwrap();
    assert_eq!(got, expect);
}
