//! Criterion: checkpoint mechanics — image encode/decode throughput and a
//! full checkpoint/restart cycle including the cross-vendor rebind.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpi_apps::WaveMpi;
use simnet::ClusterSpec;
use stool::{Checkpointer, CkptMode, Session, Vendor, WorldImage};

fn image_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("image_codec");
    group.sample_size(20);
    for npoints in [1_000usize, 50_000] {
        // Produce a real image from a wave run of this size.
        let cluster = ClusterSpec::builder().nodes(1).ranks_per_node(2).build();
        let program = WaveMpi {
            npoints,
            nsteps: 4,
            gather_final: false,
            ..WaveMpi::default()
        };
        let session = Session::builder()
            .cluster(cluster)
            .vendor(Vendor::Mpich)
            .checkpointer(Checkpointer::mana())
            .checkpoint_at_step(2, CkptMode::Stop)
            .build()
            .unwrap();
        let image = session.launch(&program).unwrap().into_image().unwrap();
        let encoded: Vec<Vec<u8>> = image.ranks.iter().map(|r| r.encode()).collect();
        let bytes: usize = encoded.iter().map(Vec::len).sum();

        group.bench_with_input(BenchmarkId::new("encode", npoints), &image, |b, img| {
            b.iter(|| img.ranks.iter().map(|r| r.encode().len()).sum::<usize>());
        });
        group.bench_with_input(
            BenchmarkId::new(format!("decode_{bytes}B"), npoints),
            &encoded,
            |b, enc| {
                b.iter(|| {
                    enc.iter()
                        .map(|e| dmtcp_sim::RankImage::decode(e).unwrap().total_bytes())
                        .sum::<usize>()
                });
            },
        );
    }
    group.finish();
}

fn ckpt_restart_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("ckpt_restart");
    group.sample_size(10);
    let cluster = ClusterSpec::builder().nodes(2).ranks_per_node(2).build();
    let program = WaveMpi {
        npoints: 2_000,
        nsteps: 30,
        gather_final: false,
        ..WaveMpi::default()
    };

    group.bench_function("checkpoint_stop", |b| {
        b.iter(|| {
            let session = Session::builder()
                .cluster(cluster.clone())
                .vendor(Vendor::OpenMpi)
                .checkpointer(Checkpointer::mana())
                .checkpoint_at_step(15, CkptMode::Stop)
                .build()
                .unwrap();
            session
                .launch(&program)
                .unwrap()
                .into_image()
                .unwrap()
                .total_bytes()
        });
    });

    // Pre-build one image for the restore benchmark.
    let session = Session::builder()
        .cluster(cluster.clone())
        .vendor(Vendor::OpenMpi)
        .checkpointer(Checkpointer::mana())
        .checkpoint_at_step(15, CkptMode::Stop)
        .build()
        .unwrap();
    let image: WorldImage = session.launch(&program).unwrap().into_image().unwrap();

    group.bench_function("restore_cross_vendor", |b| {
        b.iter(|| {
            let restore = Session::builder()
                .cluster(cluster.clone())
                .vendor(Vendor::Mpich)
                .checkpointer(Checkpointer::mana())
                .build()
                .unwrap();
            restore.restore(&image, &program).unwrap().is_completed()
        });
    });
    group.finish();
}

criterion_group!(benches, image_codec, ckpt_restart_cycle);
criterion_main!(benches);
