//! Seeded stochastic jitter for message costs.
//!
//! The paper repeats every experiment 5 times and reports medians with
//! error bars; Fig. 4 explicitly attributes cases where MANA+Mukautuva
//! *outperformed* native MPI to run-to-run variance. To reproduce those
//! error bars and occasional inversions we jitter each message's wire cost
//! by a deterministic, seeded multiplicative factor.
//!
//! The generator is a small self-contained xorshift* PRNG: per-(seed, rank)
//! streams are independent, and the whole simulation stays bit-reproducible
//! for a fixed seed — a property the test suite relies on.

/// Multiplicative jitter model for message costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Relative standard deviation of the multiplicative jitter
    /// (0.0 disables jitter entirely).
    pub rel_sigma: f64,
    /// Base seed; combined with the rank id to derive per-rank streams.
    pub seed: u64,
}

impl NoiseModel {
    /// No jitter: fully deterministic timing (the default for tests).
    pub fn disabled() -> NoiseModel {
        NoiseModel {
            rel_sigma: 0.0,
            seed: 0,
        }
    }

    /// Jitter with the given relative sigma and seed.
    ///
    /// `rel_sigma` around 0.05–0.15 reproduces error bars of the magnitude
    /// seen in the paper's Figs. 4 and 5.
    pub fn with_sigma(rel_sigma: f64, seed: u64) -> NoiseModel {
        assert!(
            (0.0..1.0).contains(&rel_sigma),
            "rel_sigma must be in [0, 1)"
        );
        NoiseModel { rel_sigma, seed }
    }

    /// Whether jitter is active.
    pub fn enabled(&self) -> bool {
        self.rel_sigma > 0.0
    }

    /// Create the per-rank jitter stream.
    pub fn stream_for_rank(&self, rank: usize) -> NoiseStream {
        NoiseStream::new(
            self.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            self.rel_sigma,
        )
    }
}

/// A per-rank deterministic stream of jitter factors.
#[derive(Debug, Clone)]
pub struct NoiseStream {
    state: u64,
    rel_sigma: f64,
}

impl NoiseStream {
    fn new(seed: u64, rel_sigma: f64) -> NoiseStream {
        // xorshift* must not start at zero.
        NoiseStream {
            state: seed | 1,
            rel_sigma,
        }
    }

    /// Next raw 64-bit value (xorshift64*).
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Next multiplicative jitter factor, ≥ 0.05.
    ///
    /// Uses a sum of three uniforms (Irwin–Hall) for an approximately normal
    /// bump centred on 1.0 with standard deviation `rel_sigma` — cheap, has
    /// bounded tails, and needs no external RNG crate in the hot path.
    pub fn factor(&mut self) -> f64 {
        if self.rel_sigma == 0.0 {
            return 1.0;
        }
        // Irwin–Hall(3): mean 1.5, variance 3/12 = 0.25, sd 0.5.
        let ih = self.next_f64() + self.next_f64() + self.next_f64();
        let standard = (ih - 1.5) / 0.5; // ~N(0, 1), support [-3, 3]
        (1.0 + standard * self.rel_sigma).max(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_noise_is_identity() {
        let mut s = NoiseModel::disabled().stream_for_rank(3);
        for _ in 0..100 {
            assert_eq!(s.factor(), 1.0);
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed_and_rank() {
        let model = NoiseModel::with_sigma(0.1, 42);
        let a: Vec<f64> = (0..32)
            .map({
                let mut s = model.stream_for_rank(5);
                move |_| s.factor()
            })
            .collect();
        let b: Vec<f64> = (0..32)
            .map({
                let mut s = model.stream_for_rank(5);
                move |_| s.factor()
            })
            .collect();
        assert_eq!(a, b);
        let c: Vec<f64> = (0..32)
            .map({
                let mut s = model.stream_for_rank(6);
                move |_| s.factor()
            })
            .collect();
        assert_ne!(a, c, "different ranks must get different streams");
    }

    #[test]
    fn factors_center_on_one() {
        let mut s = NoiseModel::with_sigma(0.1, 7).stream_for_rank(0);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| s.factor()).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean jitter factor was {mean}");
    }

    #[test]
    fn factors_never_negative_or_zero() {
        let mut s = NoiseModel::with_sigma(0.5, 9).stream_for_rank(1);
        for _ in 0..10_000 {
            assert!(s.factor() >= 0.05);
        }
    }

    #[test]
    #[should_panic(expected = "rel_sigma")]
    fn sigma_out_of_range_rejected() {
        let _ = NoiseModel::with_sigma(1.5, 0);
    }
}
