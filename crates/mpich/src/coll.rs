//! MPICH-family collective algorithms.
//!
//! Algorithm selection mirrors the MPICH lineage the paper benchmarks:
//!
//! | collective  | small messages            | large messages                     |
//! |-------------|---------------------------|------------------------------------|
//! | `bcast`     | binomial tree             | van de Geijn (scatter + allgather) |
//! | `allreduce` | recursive doubling        | Rabenseifner (RS + allgather)      |
//! | `alltoall`  | Bruck                     | pairwise exchange (posted nonblocking in between) |
//! | `allgather` | Bruck                     | ring                               |
//! | `reduce`    | binomial tree             | binomial tree                      |
//! | `gather`    | binomial tree             | binomial tree                      |
//! | `scatter`   | binomial tree             | binomial tree                      |
//! | `scan`      | recursive doubling        | recursive doubling                 |
//! | `barrier`   | dissemination             | dissemination                      |
//!
//! All algorithms are built on the library's own point-to-point primitives
//! (`xsend`/`xrecv`), so their virtual-time cost — number of rounds × link
//! costs — emerges from the algorithm structure, which is what shapes the
//! per-vendor curves in the paper's Figs. 2–4.

use bytes::Bytes;

use crate::engine::{SrcSel, TagSel};
use crate::mpih::{self, MpiComm, MpiDatatype, MpiOp, MpichResult};
use crate::objects::CommInfo;
use crate::proc::MpichProcess;

// Collective protocol tags (collective context, so they can never collide
// with application point-to-point traffic).
const TAG_BARRIER: i32 = 0x0101;
const TAG_BCAST: i32 = 0x0102;
const TAG_REDUCE: i32 = 0x0103;
const TAG_ALLREDUCE: i32 = 0x0104;
const TAG_GATHER: i32 = 0x0105;
const TAG_SCATTER: i32 = 0x0106;
const TAG_ALLGATHER: i32 = 0x0107;
const TAG_ALLTOALL: i32 = 0x0108;
const TAG_SCAN: i32 = 0x0109;

/// Lowest set bit (subtree span in the binomial trees); `None` for zero.
fn lsb(v: usize) -> Option<usize> {
    if v == 0 {
        None
    } else {
        Some(1 << v.trailing_zeros())
    }
}

fn ceil_log2(n: usize) -> u32 {
    usize::BITS - n.saturating_sub(1).leading_zeros()
}

/// Split `total` elements into `parts` chunk lengths (in elements),
/// front-loading the remainder like MPICH does.
fn chunk_lengths(total_elems: usize, parts: usize) -> Vec<usize> {
    let base = total_elems / parts;
    let rem = total_elems % parts;
    (0..parts).map(|i| base + usize::from(i < rem)).collect()
}

impl MpichProcess {
    fn validate_coll(
        &self,
        comm: MpiComm,
        dt: MpiDatatype,
        buf_len: usize,
    ) -> MpichResult<(CommInfo, usize)> {
        if self.is_finalized() {
            return Err(mpih::MPI_ERR_FINALIZED);
        }
        let info = self.info(comm)?;
        let elem = self.check_typed_buf(dt, buf_len)?;
        Ok((info, elem))
    }

    fn validate_root(info: &CommInfo, root: i32) -> MpichResult<usize> {
        if root < 0 || root as usize >= info.size() {
            Err(mpih::MPI_ERR_ROOT)
        } else {
            Ok(root as usize)
        }
    }

    fn validate_op(&self, op: MpiOp) -> MpichResult<()> {
        if crate::objects::Tables::is_builtin_op(op) {
            Ok(())
        } else {
            self.tables.user_op(op).map(|_| ())
        }
    }

    /// Ordered combine: `acc = lower op higher` where `other_first` says the
    /// incoming data precedes `acc` in rank order. Charges reduction CPU.
    fn combine_ordered(
        &mut self,
        op: MpiOp,
        dt: MpiDatatype,
        acc: &mut [u8],
        other: &[u8],
        other_first: bool,
    ) -> MpichResult<()> {
        self.charge_reduce_cost(acc.len());
        if other_first {
            self.combine_with(op, dt, acc, other)
        } else {
            // acc op other: run the user/builtin fn with roles swapped.
            let mut tmp = other.to_vec();
            self.combine_with(op, dt, &mut tmp, acc)?;
            acc.copy_from_slice(&tmp);
            Ok(())
        }
    }

    // ------------------------------------------------------------------
    // Barrier: dissemination
    // ------------------------------------------------------------------

    /// `MPI_Barrier` — dissemination algorithm, ⌈log₂ n⌉ rounds.
    pub fn barrier(&mut self, comm: MpiComm) -> MpichResult<()> {
        let (info, _) = self.validate_coll(comm, mpih::MPI_BYTE, 0)?;
        let n = info.size();
        if n == 1 {
            return Ok(());
        }
        let me = info.my_rank as usize;
        let mut k = 1usize;
        while k < n {
            let dst = ((me + k) % n) as i32;
            let src = info.world_of(((me + n - k) % n) as i32)?;
            self.xsend(&info, true, dst, TAG_BARRIER, Bytes::new())?;
            self.xrecv(&info, true, SrcSel::World(src), TagSel::Is(TAG_BARRIER))?;
            k <<= 1;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Bcast: binomial (small) / van de Geijn (large)
    // ------------------------------------------------------------------

    /// `MPI_Bcast`.
    pub fn bcast(
        &mut self,
        buf: &mut [u8],
        dt: MpiDatatype,
        root: i32,
        comm: MpiComm,
    ) -> MpichResult<()> {
        let (info, elem) = self.validate_coll(comm, dt, buf.len())?;
        let root = Self::validate_root(&info, root)?;
        if info.size() == 1 || buf.is_empty() {
            return Ok(());
        }
        if buf.len() <= self.tuning().bcast_binomial_max {
            self.bcast_binomial(&info, buf, root)
        } else {
            self.bcast_vandegeijn(&info, buf, elem, root)
        }
    }

    fn bcast_binomial(&mut self, info: &CommInfo, buf: &mut [u8], root: usize) -> MpichResult<()> {
        let n = info.size();
        let me = info.my_rank as usize;
        let rel = (me + n - root) % n;
        let mut mask = 1usize;
        while mask < n {
            if rel & mask != 0 {
                let parent = ((rel - mask) + root) % n;
                let got = self.xrecv(
                    info,
                    true,
                    SrcSel::World(info.world_of(parent as i32)?),
                    TagSel::Is(TAG_BCAST),
                )?;
                if got.env.len() != buf.len() {
                    return Err(mpih::MPI_ERR_TRUNCATE);
                }
                buf.copy_from_slice(&got.env.payload);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        let payload = Bytes::copy_from_slice(buf);
        while mask > 0 {
            if rel + mask < n {
                let child = ((rel + mask) + root) % n;
                self.xsend(info, true, child as i32, TAG_BCAST, payload.clone())?;
            }
            mask >>= 1;
        }
        Ok(())
    }

    /// van de Geijn: binomial scatter of chunks, then ring allgather.
    fn bcast_vandegeijn(
        &mut self,
        info: &CommInfo,
        buf: &mut [u8],
        elem: usize,
        root: usize,
    ) -> MpichResult<()> {
        let n = info.size();
        let me = info.my_rank as usize;
        let rel = (me + n - root) % n;
        let lens: Vec<usize> = chunk_lengths(buf.len() / elem, n)
            .into_iter()
            .map(|l| l * elem)
            .collect();
        let offs: Vec<usize> = lens
            .iter()
            .scan(0usize, |acc, &l| {
                let o = *acc;
                *acc += l;
                Some(o)
            })
            .collect();

        // Phase 1: binomial scatter of chunks in *relative* index space:
        // relative chunk i lives at rank (root + i) % n.
        let myspan = if rel == 0 {
            n
        } else {
            lsb(rel).unwrap().min(n - rel)
        };
        if rel != 0 {
            let parent = ((rel - lsb(rel).unwrap()) + root) % n;
            let got = self.xrecv(
                info,
                true,
                SrcSel::World(info.world_of(parent as i32)?),
                TagSel::Is(TAG_BCAST),
            )?;
            // Chunk span [rel, rel+myspan) arrives packed.
            let mut off = 0usize;
            for i in rel..rel + myspan {
                let b = offs[i];
                let l = lens[i];
                if off + l > got.env.len() {
                    return Err(mpih::MPI_ERR_TRUNCATE);
                }
                buf[b..b + l].copy_from_slice(&got.env.payload[off..off + l]);
                off += l;
            }
        }
        let mut mask = if rel == 0 {
            1usize << (ceil_log2(n).saturating_sub(1))
        } else {
            lsb(rel).unwrap() >> 1
        };
        while mask > 0 {
            if rel + mask < n {
                let child_rel = rel + mask;
                let child_span = mask.min(n - child_rel);
                let mut packed = Vec::new();
                for i in child_rel..child_rel + child_span {
                    packed.extend_from_slice(&buf[offs[i]..offs[i] + lens[i]]);
                }
                let child = (child_rel + root) % n;
                self.xsend(info, true, child as i32, TAG_BCAST, Bytes::from(packed))?;
            }
            mask >>= 1;
        }

        // Phase 2: ring allgather of the chunks (relative index space).
        // At step s, relative rank rel sends chunk (rel − s) and receives
        // chunk (rel − s − 1), both mod n.
        let right = ((rel + 1) % n + root) % n;
        let left_world = info.world_of((((rel + n - 1) % n + root) % n) as i32)?;
        for s in 0..n - 1 {
            let send_i = (rel + n - s) % n;
            let recv_i = (rel + n - s - 1) % n;
            let payload = Bytes::copy_from_slice(&buf[offs[send_i]..offs[send_i] + lens[send_i]]);
            self.xsend(info, true, right as i32, TAG_BCAST + 0x10, payload)?;
            let got = self.xrecv(
                info,
                true,
                SrcSel::World(left_world),
                TagSel::Is(TAG_BCAST + 0x10),
            )?;
            if got.env.len() != lens[recv_i] {
                return Err(mpih::MPI_ERR_TRUNCATE);
            }
            buf[offs[recv_i]..offs[recv_i] + lens[recv_i]].copy_from_slice(&got.env.payload);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reduce: binomial tree
    // ------------------------------------------------------------------

    /// `MPI_Reduce`. `recvbuf` must equal `sendbuf` in length at the root
    /// (it may be empty elsewhere).
    pub fn reduce(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        dt: MpiDatatype,
        op: MpiOp,
        root: i32,
        comm: MpiComm,
    ) -> MpichResult<()> {
        let (info, _) = self.validate_coll(comm, dt, sendbuf.len())?;
        let root = Self::validate_root(&info, root)?;
        self.validate_op(op)?;
        let me = info.my_rank as usize;
        if me == root && recvbuf.len() != sendbuf.len() {
            return Err(mpih::MPI_ERR_COUNT);
        }
        let n = info.size();
        let mut acc = sendbuf.to_vec();
        let rel = (me + n - root) % n;
        let mut mask = 1usize;
        while mask < n {
            if rel & mask != 0 {
                // Interior/leaf node: pass the subtree result to the parent.
                let parent = ((rel - mask) + root) % n;
                self.xsend(&info, true, parent as i32, TAG_REDUCE, Bytes::from(acc))?;
                return Ok(());
            }
            let child_rel = rel | mask;
            if child_rel < n {
                let child = (child_rel + root) % n;
                let got = self.xrecv(
                    &info,
                    true,
                    SrcSel::World(info.world_of(child as i32)?),
                    TagSel::Is(TAG_REDUCE),
                )?;
                if got.env.len() != acc.len() {
                    return Err(mpih::MPI_ERR_TRUNCATE);
                }
                // Child subtree holds higher relative ranks: acc ∘ child.
                self.combine_ordered(op, dt, &mut acc, &got.env.payload, false)?;
            }
            mask <<= 1;
        }
        recvbuf.copy_from_slice(&acc);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Allreduce: recursive doubling / Rabenseifner
    // ------------------------------------------------------------------

    /// `MPI_Allreduce`.
    pub fn allreduce(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        dt: MpiDatatype,
        op: MpiOp,
        comm: MpiComm,
    ) -> MpichResult<()> {
        let (info, elem) = self.validate_coll(comm, dt, sendbuf.len())?;
        self.validate_op(op)?;
        if recvbuf.len() != sendbuf.len() {
            return Err(mpih::MPI_ERR_COUNT);
        }
        recvbuf.copy_from_slice(sendbuf);
        if info.size() == 1 || sendbuf.is_empty() {
            return Ok(());
        }
        if sendbuf.len() <= self.tuning().allreduce_recdbl_max || sendbuf.len() / elem < info.size()
        {
            self.allreduce_recdbl(&info, recvbuf, dt, op)
        } else {
            self.allreduce_rabenseifner(&info, recvbuf, elem, dt, op)
        }
    }

    /// Fold non-power-of-two ranks: returns `Some(newrank)` for ranks that
    /// participate in the power-of-two phase, `None` for parked ranks.
    /// On entry `acc` holds this rank's contribution; parked ranks' data is
    /// absorbed by their partners.
    fn fold_extras_pre(
        &mut self,
        info: &CommInfo,
        acc: &mut [u8],
        dt: MpiDatatype,
        op: MpiOp,
        tag: i32,
    ) -> MpichResult<Option<usize>> {
        let n = info.size();
        let me = info.my_rank as usize;
        let pof2 = 1usize << (ceil_log2(n + 1) - 1).min(63);
        let pof2 = if pof2 > n { pof2 >> 1 } else { pof2 };
        let rem = n - pof2;
        if me < 2 * rem {
            if me.is_multiple_of(2) {
                // Parked: give my data to the odd neighbour.
                self.xsend(
                    info,
                    true,
                    (me + 1) as i32,
                    tag,
                    Bytes::copy_from_slice(acc),
                )?;
                Ok(None)
            } else {
                let src = info.world_of((me - 1) as i32)?;
                let got = self.xrecv(info, true, SrcSel::World(src), TagSel::Is(tag))?;
                if got.env.len() != acc.len() {
                    return Err(mpih::MPI_ERR_TRUNCATE);
                }
                // Neighbour (me−1) precedes me in rank order.
                self.combine_ordered(op, dt, acc, &got.env.payload, true)?;
                Ok(Some(me / 2))
            }
        } else {
            Ok(Some(me - rem))
        }
    }

    /// Map a folded "newrank" back to the real communicator rank.
    fn unfold(newrank: usize, rem: usize) -> usize {
        if newrank < rem {
            newrank * 2 + 1
        } else {
            newrank + rem
        }
    }

    /// Deliver results back to parked ranks after the power-of-two phase.
    fn fold_extras_post(
        &mut self,
        info: &CommInfo,
        acc: &mut [u8],
        participating: Option<usize>,
        tag: i32,
    ) -> MpichResult<()> {
        let n = info.size();
        let me = info.my_rank as usize;
        let pof2 = {
            let p = 1usize << (ceil_log2(n + 1) - 1).min(63);
            if p > n {
                p >> 1
            } else {
                p
            }
        };
        let rem = n - pof2;
        if me < 2 * rem {
            if participating.is_some() {
                self.xsend(
                    info,
                    true,
                    (me - 1) as i32,
                    tag,
                    Bytes::copy_from_slice(acc),
                )?;
            } else {
                let src = info.world_of((me + 1) as i32)?;
                let got = self.xrecv(info, true, SrcSel::World(src), TagSel::Is(tag))?;
                if got.env.len() != acc.len() {
                    return Err(mpih::MPI_ERR_TRUNCATE);
                }
                acc.copy_from_slice(&got.env.payload);
            }
        }
        Ok(())
    }

    fn allreduce_recdbl(
        &mut self,
        info: &CommInfo,
        acc: &mut [u8],
        dt: MpiDatatype,
        op: MpiOp,
    ) -> MpichResult<()> {
        let n = info.size();
        let pof2 = {
            let p = 1usize << (ceil_log2(n + 1) - 1).min(63);
            if p > n {
                p >> 1
            } else {
                p
            }
        };
        let rem = n - pof2;
        let newrank = self.fold_extras_pre(info, acc, dt, op, TAG_ALLREDUCE)?;
        if let Some(nr) = newrank {
            let mut mask = 1usize;
            while mask < pof2 {
                let partner_new = nr ^ mask;
                let partner = Self::unfold(partner_new, rem);
                let me_real = info.my_rank as usize;
                self.xsend(
                    info,
                    true,
                    partner as i32,
                    TAG_ALLREDUCE + 1,
                    Bytes::copy_from_slice(acc),
                )?;
                let got = self.xrecv(
                    info,
                    true,
                    SrcSel::World(info.world_of(partner as i32)?),
                    TagSel::Is(TAG_ALLREDUCE + 1),
                )?;
                if got.env.len() != acc.len() {
                    return Err(mpih::MPI_ERR_TRUNCATE);
                }
                self.combine_ordered(op, dt, acc, &got.env.payload, partner < me_real)?;
                mask <<= 1;
            }
        }
        self.fold_extras_post(info, acc, newrank, TAG_ALLREDUCE + 2)
    }

    /// Rabenseifner: reduce-scatter by recursive halving, then allgather by
    /// replaying the halving exchanges in reverse.
    fn allreduce_rabenseifner(
        &mut self,
        info: &CommInfo,
        acc: &mut [u8],
        elem: usize,
        dt: MpiDatatype,
        op: MpiOp,
    ) -> MpichResult<()> {
        let n = info.size();
        let pof2 = {
            let p = 1usize << (ceil_log2(n + 1) - 1).min(63);
            if p > n {
                p >> 1
            } else {
                p
            }
        };
        let rem = n - pof2;
        let newrank = self.fold_extras_pre(info, acc, dt, op, TAG_ALLREDUCE)?;
        if let Some(nr) = newrank {
            let total_elems = acc.len() / elem;
            let lens: Vec<usize> = chunk_lengths(total_elems, pof2)
                .into_iter()
                .map(|l| l * elem)
                .collect();
            let offs: Vec<usize> = lens
                .iter()
                .scan(0usize, |a, &l| {
                    let o = *a;
                    *a += l;
                    Some(o)
                })
                .collect();
            let span = |lo: usize, hi: usize| (offs[lo], offs[hi - 1] + lens[hi - 1]);

            // Reduce-scatter by recursive halving over chunk ranges.
            // Each step records the PARENT range and partner so the
            // allgather phase can replay the exchanges in reverse.
            let mut steps: Vec<(usize, usize, usize)> = Vec::new(); // (parent_lo, parent_hi, partner)
            let (mut lo, mut hi) = (0usize, pof2);
            while hi - lo > 1 {
                let (parent_lo, parent_hi) = (lo, hi);
                let half = (hi - lo) / 2;
                let mid = lo + half;
                let partner_new = if nr < mid { nr + half } else { nr - half };
                let partner = Self::unfold(partner_new, rem);
                let me_real = info.my_rank as usize;
                // Send the half I am NOT keeping; combine the half I keep.
                let (keep_lo, keep_hi, send_lo, send_hi) = if nr < mid {
                    (lo, mid, mid, hi)
                } else {
                    (mid, hi, lo, mid)
                };
                let (sb, se) = span(send_lo, send_hi);
                self.xsend(
                    info,
                    true,
                    partner as i32,
                    TAG_ALLREDUCE + 3,
                    Bytes::copy_from_slice(&acc[sb..se]),
                )?;
                let got = self.xrecv(
                    info,
                    true,
                    SrcSel::World(info.world_of(partner as i32)?),
                    TagSel::Is(TAG_ALLREDUCE + 3),
                )?;
                let (kb, ke) = span(keep_lo, keep_hi);
                if got.env.len() != ke - kb {
                    return Err(mpih::MPI_ERR_TRUNCATE);
                }
                self.combine_ordered(
                    op,
                    dt,
                    &mut acc[kb..ke],
                    &got.env.payload,
                    partner < me_real,
                )?;
                steps.push((parent_lo, parent_hi, partner));
                lo = keep_lo;
                hi = keep_hi;
            }

            // Allgather: replay the exchanges in reverse; at each step I own
            // [lo, hi) and my partner owns the sibling half.
            for &(slo, shi, partner) in steps.iter().rev() {
                // After the halving step, I owned [lo, hi) ⊆ [slo, shi).
                // Now I own [lo, hi) = current; partner owns the sibling of
                // my range within (slo, shi).
                let (ob, oe) = span(lo, hi);
                self.xsend(
                    info,
                    true,
                    partner as i32,
                    TAG_ALLREDUCE + 4,
                    Bytes::copy_from_slice(&acc[ob..oe]),
                )?;
                let got = self.xrecv(
                    info,
                    true,
                    SrcSel::World(info.world_of(partner as i32)?),
                    TagSel::Is(TAG_ALLREDUCE + 4),
                )?;
                // The partner's range is [slo..lo) or [hi..shi).
                let (pb, pe) = if lo == slo {
                    span(hi, shi)
                } else {
                    span(slo, lo)
                };
                if got.env.len() != pe - pb {
                    return Err(mpih::MPI_ERR_TRUNCATE);
                }
                acc[pb..pe].copy_from_slice(&got.env.payload);
                lo = slo;
                hi = shi;
            }
        }
        self.fold_extras_post(info, acc, newrank, TAG_ALLREDUCE + 5)
    }

    // ------------------------------------------------------------------
    // Gather / Scatter: binomial trees
    // ------------------------------------------------------------------

    /// `MPI_Gather` (equal contributions; `recvbuf` significant at root).
    pub fn gather(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        dt: MpiDatatype,
        root: i32,
        comm: MpiComm,
    ) -> MpichResult<()> {
        let (info, _) = self.validate_coll(comm, dt, sendbuf.len())?;
        let root = Self::validate_root(&info, root)?;
        let n = info.size();
        let me = info.my_rank as usize;
        let block = sendbuf.len();
        if me == root && recvbuf.len() != block * n {
            return Err(mpih::MPI_ERR_COUNT);
        }
        if n == 1 {
            recvbuf.copy_from_slice(sendbuf);
            return Ok(());
        }
        let rel = (me + n - root) % n;
        let myspan = if rel == 0 {
            n
        } else {
            lsb(rel).unwrap().min(n - rel)
        };
        // tmp holds relative blocks [rel, rel+myspan).
        let mut tmp = vec![0u8; block * myspan];
        tmp[..block].copy_from_slice(sendbuf);
        let limit = if rel == 0 { n } else { lsb(rel).unwrap() };
        let mut mask = 1usize;
        while mask < limit {
            let child_rel = rel + mask;
            if child_rel < n {
                let child_span = mask.min(n - child_rel);
                let child = (child_rel + root) % n;
                let got = self.xrecv(
                    &info,
                    true,
                    SrcSel::World(info.world_of(child as i32)?),
                    TagSel::Is(TAG_GATHER),
                )?;
                if got.env.len() != block * child_span {
                    return Err(mpih::MPI_ERR_TRUNCATE);
                }
                tmp[block * mask..block * (mask + child_span)].copy_from_slice(&got.env.payload);
            }
            mask <<= 1;
        }
        if rel != 0 {
            let parent = ((rel - lsb(rel).unwrap()) + root) % n;
            self.xsend(&info, true, parent as i32, TAG_GATHER, Bytes::from(tmp))?;
        } else {
            // Root: rotate relative order back to absolute ranks.
            for i in 0..n {
                let abs = (i + root) % n;
                recvbuf[abs * block..(abs + 1) * block]
                    .copy_from_slice(&tmp[i * block..(i + 1) * block]);
            }
        }
        Ok(())
    }

    /// `MPI_Scatter` (equal blocks; `sendbuf` significant at root).
    pub fn scatter(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        dt: MpiDatatype,
        root: i32,
        comm: MpiComm,
    ) -> MpichResult<()> {
        let (info, _) = self.validate_coll(comm, dt, recvbuf.len())?;
        let root = Self::validate_root(&info, root)?;
        let n = info.size();
        let me = info.my_rank as usize;
        let block = recvbuf.len();
        if me == root && sendbuf.len() != block * n {
            return Err(mpih::MPI_ERR_COUNT);
        }
        if n == 1 {
            recvbuf.copy_from_slice(sendbuf);
            return Ok(());
        }
        let rel = (me + n - root) % n;
        let myspan = if rel == 0 {
            n
        } else {
            lsb(rel).unwrap().min(n - rel)
        };
        let mut tmp = vec![0u8; block * myspan];
        if rel == 0 {
            // Pack into relative order.
            for i in 0..n {
                let abs = (i + root) % n;
                tmp[i * block..(i + 1) * block]
                    .copy_from_slice(&sendbuf[abs * block..(abs + 1) * block]);
            }
        } else {
            let parent = ((rel - lsb(rel).unwrap()) + root) % n;
            let got = self.xrecv(
                &info,
                true,
                SrcSel::World(info.world_of(parent as i32)?),
                TagSel::Is(TAG_SCATTER),
            )?;
            if got.env.len() != tmp.len() {
                return Err(mpih::MPI_ERR_TRUNCATE);
            }
            tmp.copy_from_slice(&got.env.payload);
        }
        // Send sub-spans to children, largest child first.
        let mut mask = if rel == 0 {
            1usize << (ceil_log2(n).saturating_sub(1))
        } else {
            lsb(rel).unwrap() >> 1
        };
        while mask > 0 {
            let child_rel = rel + mask;
            if child_rel < n {
                let child_span = mask.min(n - child_rel);
                let child = (child_rel + root) % n;
                let payload =
                    Bytes::copy_from_slice(&tmp[block * mask..block * (mask + child_span)]);
                self.xsend(&info, true, child as i32, TAG_SCATTER, payload)?;
            }
            mask >>= 1;
        }
        recvbuf.copy_from_slice(&tmp[..block]);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Allgather: Bruck (small) / ring (large)
    // ------------------------------------------------------------------

    /// `MPI_Allgather` (equal contributions).
    pub fn allgather(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        dt: MpiDatatype,
        comm: MpiComm,
    ) -> MpichResult<()> {
        let (info, _) = self.validate_coll(comm, dt, sendbuf.len())?;
        let n = info.size();
        let block = sendbuf.len();
        if recvbuf.len() != block * n {
            return Err(mpih::MPI_ERR_COUNT);
        }
        if n == 1 {
            recvbuf.copy_from_slice(sendbuf);
            return Ok(());
        }
        if block * n <= self.tuning().allgather_bruck_max {
            self.allgather_bruck(&info, sendbuf, recvbuf, block)
        } else {
            self.allgather_ring(&info, sendbuf, recvbuf, block)
        }
    }

    fn allgather_bruck(
        &mut self,
        info: &CommInfo,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        block: usize,
    ) -> MpichResult<()> {
        let n = info.size();
        let me = info.my_rank as usize;
        // tmp[i] = block of rank (me + i) % n once filled.
        let mut tmp = vec![0u8; block * n];
        tmp[..block].copy_from_slice(sendbuf);
        let mut have = 1usize;
        let mut pof2 = 1usize;
        while pof2 < n {
            let cnt = pof2.min(n - have);
            let dst = ((me + n - pof2) % n) as i32;
            let src = info.world_of(((me + pof2) % n) as i32)?;
            let payload = Bytes::copy_from_slice(&tmp[..block * cnt]);
            self.xsend(info, true, dst, TAG_ALLGATHER, payload)?;
            let got = self.xrecv(info, true, SrcSel::World(src), TagSel::Is(TAG_ALLGATHER))?;
            if got.env.len() != block * cnt {
                return Err(mpih::MPI_ERR_TRUNCATE);
            }
            tmp[block * have..block * (have + cnt)].copy_from_slice(&got.env.payload);
            have += cnt;
            pof2 <<= 1;
        }
        for i in 0..n {
            let abs = (me + i) % n;
            recvbuf[abs * block..(abs + 1) * block]
                .copy_from_slice(&tmp[i * block..(i + 1) * block]);
        }
        Ok(())
    }

    fn allgather_ring(
        &mut self,
        info: &CommInfo,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        block: usize,
    ) -> MpichResult<()> {
        let n = info.size();
        let me = info.my_rank as usize;
        recvbuf[me * block..(me + 1) * block].copy_from_slice(sendbuf);
        let right = ((me + 1) % n) as i32;
        let left_world = info.world_of(((me + n - 1) % n) as i32)?;
        for s in 0..n - 1 {
            let send_i = (me + n - s) % n;
            let recv_i = (me + n - s - 1) % n;
            let payload = Bytes::copy_from_slice(&recvbuf[send_i * block..(send_i + 1) * block]);
            self.xsend(info, true, right, TAG_ALLGATHER + 1, payload)?;
            let got = self.xrecv(
                info,
                true,
                SrcSel::World(left_world),
                TagSel::Is(TAG_ALLGATHER + 1),
            )?;
            if got.env.len() != block {
                return Err(mpih::MPI_ERR_TRUNCATE);
            }
            recvbuf[recv_i * block..(recv_i + 1) * block].copy_from_slice(&got.env.payload);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Alltoall: Bruck / posted nonblocking / pairwise
    // ------------------------------------------------------------------

    /// `MPI_Alltoall` (equal blocks).
    pub fn alltoall(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        dt: MpiDatatype,
        comm: MpiComm,
    ) -> MpichResult<()> {
        let (info, _) = self.validate_coll(comm, dt, sendbuf.len())?;
        let n = info.size();
        if sendbuf.len() != recvbuf.len() || !sendbuf.len().is_multiple_of(n) {
            return Err(mpih::MPI_ERR_COUNT);
        }
        let block = sendbuf.len() / n;
        if n == 1 {
            recvbuf.copy_from_slice(sendbuf);
            return Ok(());
        }
        if block <= self.tuning().alltoall_bruck_max {
            self.alltoall_bruck(&info, sendbuf, recvbuf, block)
        } else if block >= self.tuning().alltoall_pairwise_min {
            self.alltoall_pairwise(&info, sendbuf, recvbuf, block)
        } else {
            self.alltoall_posted(&info, sendbuf, recvbuf, block)
        }
    }

    fn alltoall_bruck(
        &mut self,
        info: &CommInfo,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        block: usize,
    ) -> MpichResult<()> {
        let n = info.size();
        let me = info.my_rank as usize;
        // Phase 1: rotation — tmp[i] = block destined to rank (me + i) % n.
        let mut tmp = vec![0u8; block * n];
        for i in 0..n {
            let src_block = (me + i) % n;
            tmp[i * block..(i + 1) * block]
                .copy_from_slice(&sendbuf[src_block * block..(src_block + 1) * block]);
        }
        // Phase 2: log₂(n) rounds of combined-block exchanges.
        let mut pof2 = 1usize;
        while pof2 < n {
            let indices: Vec<usize> = (0..n).filter(|i| i & pof2 != 0).collect();
            let mut packed = Vec::with_capacity(indices.len() * block);
            for &i in &indices {
                packed.extend_from_slice(&tmp[i * block..(i + 1) * block]);
            }
            let dst = ((me + pof2) % n) as i32;
            let src = info.world_of(((me + n - pof2) % n) as i32)?;
            self.xsend(info, true, dst, TAG_ALLTOALL, Bytes::from(packed))?;
            let got = self.xrecv(info, true, SrcSel::World(src), TagSel::Is(TAG_ALLTOALL))?;
            if got.env.len() != indices.len() * block {
                return Err(mpih::MPI_ERR_TRUNCATE);
            }
            for (k, &i) in indices.iter().enumerate() {
                tmp[i * block..(i + 1) * block]
                    .copy_from_slice(&got.env.payload[k * block..(k + 1) * block]);
            }
            pof2 <<= 1;
        }
        // Phase 3: inverse rotation — the block now at tmp[i] came from
        // rank (me − i + n) % n.
        for i in 0..n {
            let from = (me + n - i) % n;
            recvbuf[from * block..(from + 1) * block]
                .copy_from_slice(&tmp[i * block..(i + 1) * block]);
        }
        Ok(())
    }

    fn alltoall_posted(
        &mut self,
        info: &CommInfo,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        block: usize,
    ) -> MpichResult<()> {
        let n = info.size();
        let me = info.my_rank as usize;
        recvbuf[me * block..(me + 1) * block]
            .copy_from_slice(&sendbuf[me * block..(me + 1) * block]);
        // Post all sends (eager), then drain all receives.
        for off in 1..n {
            let dst = (me + off) % n;
            let payload = Bytes::copy_from_slice(&sendbuf[dst * block..(dst + 1) * block]);
            self.xsend(info, true, dst as i32, TAG_ALLTOALL + 1, payload)?;
        }
        for off in 1..n {
            let src = (me + n - off) % n;
            let got = self.xrecv(
                info,
                true,
                SrcSel::World(info.world_of(src as i32)?),
                TagSel::Is(TAG_ALLTOALL + 1),
            )?;
            if got.env.len() != block {
                return Err(mpih::MPI_ERR_TRUNCATE);
            }
            recvbuf[src * block..(src + 1) * block].copy_from_slice(&got.env.payload);
        }
        Ok(())
    }

    fn alltoall_pairwise(
        &mut self,
        info: &CommInfo,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        block: usize,
    ) -> MpichResult<()> {
        let n = info.size();
        let me = info.my_rank as usize;
        recvbuf[me * block..(me + 1) * block]
            .copy_from_slice(&sendbuf[me * block..(me + 1) * block]);
        for step in 1..n {
            let dst = (me + step) % n;
            let src = (me + n - step) % n;
            let payload = Bytes::copy_from_slice(&sendbuf[dst * block..(dst + 1) * block]);
            self.xsend(info, true, dst as i32, TAG_ALLTOALL + 2, payload)?;
            let got = self.xrecv(
                info,
                true,
                SrcSel::World(info.world_of(src as i32)?),
                TagSel::Is(TAG_ALLTOALL + 2),
            )?;
            if got.env.len() != block {
                return Err(mpih::MPI_ERR_TRUNCATE);
            }
            recvbuf[src * block..(src + 1) * block].copy_from_slice(&got.env.payload);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Scan: recursive doubling (Hillis–Steele)
    // ------------------------------------------------------------------

    /// `MPI_Scan` (inclusive prefix reduction).
    pub fn scan(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        dt: MpiDatatype,
        op: MpiOp,
        comm: MpiComm,
    ) -> MpichResult<()> {
        let (info, _) = self.validate_coll(comm, dt, sendbuf.len())?;
        self.validate_op(op)?;
        if recvbuf.len() != sendbuf.len() {
            return Err(mpih::MPI_ERR_COUNT);
        }
        let n = info.size();
        let me = info.my_rank as usize;
        recvbuf.copy_from_slice(sendbuf);
        if n == 1 || sendbuf.is_empty() {
            return Ok(());
        }
        // `partial` is the running combination of a contiguous block of
        // ranks ending at me; `recvbuf` accumulates the full prefix.
        let mut partial = sendbuf.to_vec();
        let mut d = 1usize;
        while d < n {
            if me + d < n {
                self.xsend(
                    &info,
                    true,
                    (me + d) as i32,
                    TAG_SCAN,
                    Bytes::copy_from_slice(&partial),
                )?;
            }
            if me >= d {
                let src = info.world_of((me - d) as i32)?;
                let got = self.xrecv(&info, true, SrcSel::World(src), TagSel::Is(TAG_SCAN))?;
                if got.env.len() != partial.len() {
                    return Err(mpih::MPI_ERR_TRUNCATE);
                }
                // Incoming covers ranks strictly below my block.
                self.combine_ordered(op, dt, &mut partial, &got.env.payload, true)?;
                self.combine_ordered(op, dt, recvbuf, &got.env.payload, true)?;
            }
            d <<= 1;
        }
        Ok(())
    }

    /// Access tuning (read-only, for the algorithm selectors above).
    pub(crate) fn tuning(&self) -> &crate::tuning::Tuning {
        &self.tuning
    }
}
