//! The coordinator failover battery (ISSUE 6 acceptance): with a
//! 3-replica group attached, killing the leader replica at any scripted
//! barrier phase — arrive, pre-seal, post-seal, release — never poisons
//! surviving ranks. A new leader takes over within the election timeout,
//! the checkpoint either commits on quorum or aborts atomically, and a
//! restart from the delta store after a failover is bit-identical under
//! both vendors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mpi_stool::apps::WaveMpi;
use mpi_stool::dmtcp::replica::Clock;
use mpi_stool::dmtcp::{
    BarrierPhase, CkptError, CkptMode, Coordinator, FsTier, ObjectTier, Poll, RankImage,
    ReplicaConfig, ReplicaError, ReplicaFault, ReplicaGroup, ReplicaRecord, TestClock, TierConfig,
};
use mpi_stool::stool::{Checkpointer, ReplicaPolicy, Session, Vendor};

const PHASES: [BarrierPhase; 4] = [
    BarrierPhase::Arrive,
    BarrierPhase::PreSeal,
    BarrierPhase::PostSeal,
    BarrierPhase::Release,
];

/// Drive `n` long-lived rank agents through `steps` safe points with rank
/// 0 pressing the checkpoint button at each step in `presses`. Returns
/// every `finish()` result, round by round per rank.
fn drive_rounds(
    coord: &Coordinator,
    n: usize,
    steps: u64,
    presses: &[u64],
) -> Vec<Result<CkptMode, CkptError>> {
    let results = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for rank in 0..n {
            let coord = coord.clone();
            let results = &results;
            s.spawn(move || {
                let mut agent = coord.agent(rank);
                let zeros = vec![0u64; n];
                let mut step = 0u64;
                while step < steps {
                    if rank == 0 && presses.contains(&step) {
                        coord.request_checkpoint(CkptMode::Continue);
                    }
                    match agent.poll(step).expect("poll") {
                        Poll::None | Poll::KeepRunning => step += 1,
                        Poll::Enter(session) => {
                            session.exchange_counters(&zeros, &zeros).expect("exchange");
                            session.submit_image(RankImage::new(rank, n, session.epoch()));
                            // Finish *before* taking the results lock: the
                            // final barrier parks this thread until every
                            // rank arrives.
                            let outcome = session.finish();
                            results.lock().unwrap().push(outcome);
                            step += 1;
                        }
                    }
                    std::thread::yield_now();
                }
            });
        }
    });
    results.into_inner().unwrap()
}

fn group3(clock: Arc<dyn Clock>) -> ReplicaGroup {
    ReplicaGroup::in_memory(
        ReplicaConfig {
            log: TierConfig {
                backoff: Duration::from_millis(1),
                ..TierConfig::default()
            },
            ..ReplicaConfig::default()
        },
        clock,
    )
}

/// Tentpole acceptance, coordinator level: one scenario per barrier
/// phase. A priming round elects the leader, the scripted fault kills it
/// at the named phase of the next round, and a trailing round proves the
/// group recovered. Every rank's every `finish()` succeeds — nothing is
/// poisoned — and each scenario records exactly one takeover.
#[test]
fn leader_killed_at_every_phase_never_poisons_survivors() {
    for phase in PHASES {
        let n = 3;
        let coord = Coordinator::new(n);
        let clock = Arc::new(TestClock::new());
        let group = Arc::new(group3(clock.clone()));
        group.script_faults([ReplicaFault::KillLeaderAt(phase)]);
        coord.attach_replicas(group.clone());

        let results = drive_rounds(&coord, n, 40, &[5, 15, 25]);
        assert_eq!(results.len(), 3 * n, "{phase:?}: three full rounds");
        for r in &results {
            assert!(r.is_ok(), "{phase:?}: a finish() was poisoned: {r:?}");
        }
        assert_eq!(coord.completed_rounds(), 3, "{phase:?}");

        let stats = group.stats();
        assert_eq!(stats.commits, 3, "{phase:?}: every round reached quorum");
        assert_eq!(
            stats.recoveries, 1,
            "{phase:?}: exactly one leader takeover"
        );
        // Takeover happened *within* the election timeout: the injected
        // clock only advances while waiting out the liveness timer.
        assert!(
            clock.now() >= group.timer().timeout(),
            "{phase:?}: takeover waited out the election timeout"
        );

        // The quorum log replays all three epochs, in order.
        let committed = group.committed().unwrap();
        assert_eq!(committed.len(), 3, "{phase:?}");
        for (i, (slot, record)) in committed.iter().enumerate() {
            assert_eq!(*slot, i as u64, "{phase:?}: dense slots");
            assert!(
                matches!(record, ReplicaRecord::EpochSeal { epoch, .. } if *epoch == i as u64 + 1),
                "{phase:?}: slot {slot} holds {record:?}"
            );
        }
    }
}

/// Losing the quorum (two of three replicas) aborts the round atomically:
/// every participant unwinds with the same `CkptError::Replica`, no epoch
/// is observable, and the staged images are discarded.
#[test]
fn quorum_loss_aborts_the_round_atomically() {
    let n = 2;
    let coord = Coordinator::new(n);
    let group = Arc::new(group3(Arc::new(TestClock::new())));
    group.kill(1);
    group.kill(2);
    coord.attach_replicas(group.clone());

    let results = drive_rounds(&coord, n, 20, &[5]);
    assert_eq!(results.len(), n);
    for r in &results {
        match r {
            Err(CkptError::Replica(ReplicaError::NoQuorum { need, .. })) => {
                assert_eq!(*need, 2)
            }
            other => panic!("expected NoQuorum on every rank, got {other:?}"),
        }
    }
    // Atomic abort: nothing became observable anywhere.
    assert_eq!(coord.completed_epoch(), 0);
    assert_eq!(coord.completed_rounds(), 0);
    assert!(
        coord.take_world_image("ANY").is_none(),
        "staged images must be discarded on abort"
    );
    assert!(group.committed().unwrap().is_empty());
}

/// After an aborted round the group is not wedged: reviving a replica
/// restores the quorum and the next round (same long-lived agents)
/// commits normally.
#[test]
fn revived_quorum_commits_after_an_abort() {
    let n = 2;
    let coord = Coordinator::new(n);
    let group = Arc::new(group3(Arc::new(TestClock::new())));
    group.kill(1);
    group.kill(2);
    coord.attach_replicas(group.clone());

    let results = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for rank in 0..n {
            let coord = coord.clone();
            let group = group.clone();
            let results = &results;
            s.spawn(move || {
                let mut agent = coord.agent(rank);
                let zeros = vec![0u64; n];
                let mut step = 0u64;
                while step < 30 {
                    if rank == 0 && step == 5 {
                        coord.request_checkpoint(CkptMode::Continue);
                    }
                    if rank == 0 && step == 15 {
                        // Round 1 aborted on quorum loss; restore it.
                        group.revive(1);
                        coord.request_checkpoint(CkptMode::Continue);
                    }
                    match agent.poll(step).expect("poll") {
                        Poll::None | Poll::KeepRunning => step += 1,
                        Poll::Enter(session) => {
                            session.exchange_counters(&zeros, &zeros).expect("exchange");
                            session.submit_image(RankImage::new(rank, n, session.epoch()));
                            let outcome = session.finish();
                            results.lock().unwrap().push(outcome);
                            step += 1;
                        }
                    }
                    std::thread::yield_now();
                }
            });
        }
    });

    let results = results.into_inner().unwrap();
    assert_eq!(
        results.len(),
        2 * n,
        "an aborted round, then a committed one"
    );
    let failed = results.iter().filter(|r| r.is_err()).count();
    let committed = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(failed, n, "round 1 aborts on every rank");
    assert_eq!(committed, n, "round 2 commits on every rank");
    assert_eq!(coord.completed_rounds(), 1);
    assert_eq!(group.committed().unwrap().len(), 1);
}

/// A rank dying mid-round lands a fail-stop membership record in the
/// quorum log (on top of poisoning the barrier for the survivors, as
/// before).
#[test]
fn rank_failstop_logs_a_membership_record() {
    let n = 3;
    let coord = Coordinator::new(n);
    let group = Arc::new(group3(Arc::new(TestClock::new())));
    coord.attach_replicas(group.clone());

    let poisoned = AtomicU64::new(0);
    std::thread::scope(|s| {
        for rank in 0..n {
            let coord = coord.clone();
            let poisoned = &poisoned;
            s.spawn(move || {
                let mut agent = coord.agent(rank);
                let zeros = vec![0u64; n];
                let mut step = 0u64;
                while step < 30 {
                    if rank == 0 && step == 5 {
                        coord.request_checkpoint(CkptMode::Continue);
                    }
                    match agent.poll(step).expect("poll") {
                        Poll::None | Poll::KeepRunning => step += 1,
                        Poll::Enter(session) => {
                            if session.exchange_counters(&zeros, &zeros).is_err() {
                                poisoned.fetch_add(1, Ordering::SeqCst);
                                return;
                            }
                            // Rank 2 fail-stops inside the round: past the
                            // exchange (so its peers are committed to the
                            // barrier), before the final barrier. Dropping
                            // the agent resigns it.
                            if rank == 2 {
                                return;
                            }
                            session.submit_image(RankImage::new(rank, n, session.epoch()));
                            if session.finish().is_err() {
                                poisoned.fetch_add(1, Ordering::SeqCst);
                                return;
                            }
                            step += 1;
                        }
                    }
                    std::thread::yield_now();
                }
            });
        }
    });

    assert_eq!(
        poisoned.load(Ordering::SeqCst),
        2,
        "the survivors observe the poisoned round"
    );
    let committed = group.committed().unwrap();
    assert!(
        committed.iter().any(|(_, r)| matches!(
            r,
            ReplicaRecord::Membership {
                rank: 2,
                alive: false
            }
        )),
        "rank 2's fail-stop must reach the quorum log: {committed:?}"
    );
}

// ---------------------------------------------------------------------------
// Session-level battery: transparent failover under a real program, then a
// bit-identical cross-vendor restart from the quorum-backed chain.
// ---------------------------------------------------------------------------

fn cluster() -> mpi_stool::simnet::ClusterSpec {
    mpi_stool::simnet::ClusterSpec::builder()
        .nodes(2)
        .ranks_per_node(2)
        .build()
}

fn solver() -> WaveMpi {
    WaveMpi {
        npoints: 400,
        nsteps: 70,
        gather_final: true,
        ..WaveMpi::default()
    }
}

fn reference_memories(vendor: Vendor) -> Vec<mpi_stool::stool::Memory> {
    Session::builder()
        .cluster(cluster())
        .vendor(vendor)
        .checkpointer(Checkpointer::mana())
        .build()
        .unwrap()
        .launch(&solver())
        .unwrap()
        .memories()
        .unwrap()
        .to_vec()
}

fn assert_memories_equal(a: &[mpi_stool::stool::Memory], b: &[mpi_stool::stool::Memory]) {
    assert_eq!(a.len(), b.len());
    for (rank, (ma, mb)) in a.iter().zip(b).enumerate() {
        let mut names_a: Vec<&str> = ma.names().collect();
        let mut names_b: Vec<&str> = mb.names().collect();
        names_a.sort_unstable();
        names_b.sort_unstable();
        assert_eq!(names_a, names_b, "rank {rank}: memory layout differs");
        for name in names_a {
            assert_eq!(ma.bytes(name), mb.bytes(name), "rank {rank} segment {name}");
        }
    }
}

/// The acceptance scenario end to end, once per barrier phase: a session
/// checkpoints periodically through the delta store with a replicated
/// coordinator; the scripted fault kills the leader replica mid-battery;
/// the job then dies to an injected node failure — and the restart from
/// the quorum-backed chain is bit-identical under both vendors.
#[test]
fn session_failover_restart_is_bit_identical_across_vendors() {
    let expect = reference_memories(Vendor::Mpich);
    for (i, phase) in PHASES.iter().enumerate() {
        let pid = std::process::id();
        let dir = std::env::temp_dir().join(format!("stool-failover-chain-{pid}-{i}"));
        let rdir = std::env::temp_dir().join(format!("stool-failover-replicas-{pid}-{i}"));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&rdir);

        let mut policy = ReplicaPolicy::new(&rdir);
        policy.election_timeout = Duration::from_millis(2);
        policy.log.backoff = Duration::from_millis(1);
        policy.faults = vec![ReplicaFault::KillLeaderAt(*phase)];

        // Epoch 1 at step 20 primes the group (elects the leader); epoch
        // 2 at step 40 consumes the scripted kill and fails over; the
        // node failure at 55 then kills the job with two quorum-committed
        // epochs on disk.
        let out = Session::builder()
            .cluster(cluster())
            .vendor(Vendor::Mpich)
            .checkpointer(Checkpointer::mana())
            .checkpoint_every(20)
            .checkpoint_store(&dir)
            .replicated_coordinator_with(policy)
            .inject_node_failure(55, 0)
            .build()
            .unwrap()
            .launch(&solver())
            .unwrap();
        assert!(
            out.is_failed(),
            "{phase:?}: the injected failure kills the world"
        );

        // The quorum log survives the job: reopening the replica logs
        // replays both sealed epochs (the failover lost nothing).
        let logs: Vec<Arc<dyn ObjectTier>> = (0..3)
            .map(|r| {
                Arc::new(FsTier::open(rdir.join(format!("replica_{r:02}"))).unwrap())
                    as Arc<dyn ObjectTier>
            })
            .collect();
        let group =
            ReplicaGroup::new(ReplicaConfig::default(), Arc::new(TestClock::new()), logs).unwrap();
        let committed = group.committed().unwrap();
        let seals: Vec<u64> = committed
            .iter()
            .filter_map(|(_, r)| match r {
                ReplicaRecord::EpochSeal { epoch, vendor, .. } => {
                    assert_eq!(vendor, "MPICH", "{phase:?}");
                    Some(*epoch)
                }
                _ => None,
            })
            .collect();
        assert_eq!(seals, vec![1, 2], "{phase:?}: both epochs quorum-committed");

        // Restart from the chain under both vendors: bit-identical.
        for vendor in [Vendor::Mpich, Vendor::OpenMpi] {
            let got = Session::builder()
                .cluster(cluster())
                .vendor(vendor)
                .checkpointer(Checkpointer::mana())
                .checkpoint_store(&dir)
                .build()
                .unwrap()
                .restore_from_store(&solver())
                .unwrap()
                .memories()
                .unwrap()
                .to_vec();
            assert_memories_equal(&expect, &got);
        }

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&rdir).ok();
    }
}

/// Flight-recorder acceptance: a forced leader kill mid-battery makes the
/// session write a merged crash-dump timeline at the end of the run, and
/// the dump contains the failed round's `BarrierPhase`, `LeaderElected`
/// and `EpochCommit` events — in that order, sorted by virtual clock.
#[test]
fn leader_kill_writes_a_merged_crash_dump_timeline() {
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("stool-dump-chain-{pid}"));
    let rdir = std::env::temp_dir().join(format!("stool-dump-replicas-{pid}"));
    let ddir = std::env::temp_dir().join(format!("stool-dump-out-{pid}"));
    for d in [&dir, &rdir, &ddir] {
        let _ = std::fs::remove_dir_all(d);
    }

    let mut policy = ReplicaPolicy::new(&rdir);
    policy.election_timeout = Duration::from_millis(2);
    policy.log.backoff = Duration::from_millis(1);
    // A fault-scripted session primes the group with its initial election
    // on attach, so epoch 1 (step 20) already has an incumbent to strike:
    // the scripted kill fires in the very first round — the "failed round"
    // — and its commit rides the failover election.
    policy.faults = vec![ReplicaFault::KillLeaderAt(BarrierPhase::PreSeal)];

    let session = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .checkpoint_every(20)
        .checkpoint_store(&dir)
        .replicated_coordinator_with(policy)
        .crash_dump_dir(&ddir)
        .build()
        .unwrap();
    let out = session.launch(&solver()).unwrap();
    assert!(out.is_completed(), "the takeover is transparent to the job");

    // The unified snapshot: recorder + store + replica stats in one place.
    let snap = session.telemetry().expect("telemetry after launch");
    assert!(snap.incidents() >= 1, "a recovery election is an incident");
    assert!(snap.replica.expect("replica stats in snapshot").recoveries >= 1);
    assert!(
        !snap.epochs.is_empty(),
        "store epoch stats unified in the snapshot"
    );

    // The end-of-run dump fired because the run recorded incidents, even
    // though the job itself completed.
    let jsonl = snap.dump.clone().expect("crash dump written");
    let text = std::fs::read_to_string(&jsonl).unwrap();
    assert!(
        jsonl.with_file_name("flight.trace.json").exists(),
        "Chrome trace written next to the JSON lines"
    );

    // The timeline is virtual-clock sorted.
    let vt = |line: &str| -> u64 {
        let at = line.find("\"vt_ns\":").expect("event has vt_ns") + 8;
        line[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    };
    let events: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"type\":\"event\""))
        .collect();
    assert!(
        events.windows(2).all(|w| vt(w[0]) <= vt(w[1])),
        "merged timeline must be ordered by virtual clock"
    );

    // The failed round's events, in virtual-clock order: its barrier
    // phases, the recovery election that rode out the kill, then the
    // round's eventual quorum commit.
    let index_of = |pred: &dyn Fn(&str) -> bool, what: &str| -> usize {
        events
            .iter()
            .position(|l| pred(l))
            .unwrap_or_else(|| panic!("{what} missing from the dump"))
    };
    let barrier = index_of(
        &|l| l.contains("\"kind\":\"BarrierPhase\"") && l.contains("\"epoch\":1"),
        "BarrierPhase of the failed round",
    );
    let elected = index_of(
        &|l| l.contains("\"kind\":\"LeaderElected\"") && l.contains("\"recovery\":1"),
        "recovery LeaderElected",
    );
    let commit = index_of(
        &|l| l.contains("\"kind\":\"EpochCommit\"") && l.contains("\"epoch\":1"),
        "EpochCommit of the failed round",
    );
    assert!(
        barrier < elected && elected < commit,
        "failed round must read arrive → takeover → commit \
         (got BarrierPhase@{barrier}, LeaderElected@{elected}, EpochCommit@{commit})"
    );

    for d in [&dir, &rdir, &ddir] {
        std::fs::remove_dir_all(d).ok();
    }
}
