//! The per-rank library instance: lifecycle, point-to-point messaging, and
//! object management. Collective algorithms live in [`crate::coll`].

use std::rc::Rc;

use bytes::Bytes;

use simnet::{RankCtx, SimError, VirtualTime};

use crate::engine::{Progress, Pulled, Want, WantTag};
use crate::kernels;
use crate::objects::{CommRec, Heap, OmpiUserFn, OpRec, ReqRec, TypeRec};
use crate::ompi_h::{self, MpiComm, MpiDatatype, MpiOp, MpiRequest, MpiStatus, OmpiResult};
use crate::tuning::Tuning;

/// Map a substrate error to a native error code.
pub(crate) fn sim_err(e: SimError) -> i32 {
    match e {
        SimError::NoSuchRank { .. } => ompi_h::MPI_ERR_RANK,
        SimError::PeerFailed { .. } | SimError::SelfFailed => ompi_h::MPI_ERR_PROC_FAILED,
        SimError::Disconnected | SimError::RankPanicked { .. } => ompi_h::MPI_ERR_SHUTDOWN,
        SimError::InvalidConfig(_) => ompi_h::MPI_ERR_OTHER,
    }
}

/// One rank's instance of the Open MPI-flavoured library.
pub struct OmpiProcess {
    pub(crate) ctx: Rc<RankCtx>,
    pub(crate) tuning: Tuning,
    pub(crate) heap: Heap,
    pub(crate) progress: Progress,
    pub(crate) next_ctx_base: u64,
    pub(crate) finalized: bool,
}

impl OmpiProcess {
    /// `MPI_Init`.
    pub fn init(ctx: Rc<RankCtx>) -> OmpiProcess {
        Self::init_with_tuning(ctx, Tuning::default())
    }

    /// `MPI_Init` with explicit tuning.
    pub fn init_with_tuning(ctx: Rc<RankCtx>, tuning: Tuning) -> OmpiProcess {
        let heap = Heap::new(ctx.nranks(), ctx.rank());
        OmpiProcess {
            ctx,
            tuning,
            heap,
            progress: Progress::new(),
            next_ctx_base: 4,
            finalized: false,
        }
    }

    /// Library identification string.
    pub fn version(&self) -> &'static str {
        Tuning::VERSION
    }

    /// `MPI_Finalize`.
    pub fn finalize(&mut self) -> OmpiResult<()> {
        if self.finalized {
            return Err(ompi_h::MPI_ERR_FINALIZED);
        }
        self.finalized = true;
        Ok(())
    }

    /// Whether finalized.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// `MPI_Wtime` (virtual seconds).
    pub fn wtime(&self) -> f64 {
        self.ctx.now().as_secs_f64()
    }

    /// The rank context.
    pub fn rank_ctx(&self) -> &Rc<RankCtx> {
        &self.ctx
    }

    fn check_live(&self) -> OmpiResult<()> {
        if self.finalized {
            Err(ompi_h::MPI_ERR_FINALIZED)
        } else {
            Ok(())
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// `MPI_Comm_size`.
    pub fn comm_size(&self, comm: MpiComm) -> OmpiResult<i32> {
        Ok(self.heap.comm(comm)?.size() as i32)
    }

    /// `MPI_Comm_rank`.
    pub fn comm_rank(&self, comm: MpiComm) -> OmpiResult<i32> {
        Ok(self.heap.comm(comm)?.my_rank)
    }

    /// Translate a communicator rank to a world rank.
    pub fn comm_translate_rank(&self, comm: MpiComm, rank: i32) -> OmpiResult<i32> {
        Ok(self.heap.comm(comm)?.world_of(rank)? as i32)
    }

    pub(crate) fn rec(&self, comm: MpiComm) -> OmpiResult<CommRec> {
        self.heap.comm(comm).cloned()
    }

    pub(crate) fn check_typed_buf(&self, dt: MpiDatatype, len: usize) -> OmpiResult<usize> {
        let size = self.heap.type_size(dt)?;
        if size == 0 || !len.is_multiple_of(size) {
            return Err(ompi_h::MPI_ERR_COUNT);
        }
        Ok(size)
    }

    // ------------------------------------------------------------------
    // Internal transport primitives
    // ------------------------------------------------------------------

    pub(crate) fn xsend(
        &mut self,
        rec: &CommRec,
        coll: bool,
        dst_cr: i32,
        tag: i32,
        payload: Bytes,
    ) -> OmpiResult<()> {
        let dst_world = rec.world_of(dst_cr)?;
        self.ctx.advance(self.tuning.o_send);
        if payload.len() > self.tuning.eager_threshold {
            let link = self.ctx.spec().link_between(self.ctx.rank(), dst_world);
            self.ctx.advance(link.alpha + link.alpha);
        }
        let ctx_id = if coll { rec.coll_ctx() } else { rec.p2p_ctx() };
        self.ctx
            .endpoint()
            .send_raw(dst_world, ctx_id, tag, payload, &self.ctx)
            .map_err(sim_err)
    }

    pub(crate) fn xrecv(
        &mut self,
        rec: &CommRec,
        coll: bool,
        src: Want,
        tag: WantTag,
    ) -> OmpiResult<Pulled> {
        let ctx_id = if coll { rec.coll_ctx() } else { rec.p2p_ctx() };
        let got = self
            .progress
            .match_wait(&self.ctx, ctx_id, src, tag)
            .map_err(sim_err)?;
        self.ctx.advance_to(got.arrival);
        self.ctx.advance(self.tuning.o_recv);
        Ok(got)
    }

    fn src_sel(&self, rec: &CommRec, src: i32) -> OmpiResult<Want> {
        if src == ompi_h::MPI_ANY_SOURCE {
            Ok(Want::AnySrc)
        } else {
            Ok(Want::Src(rec.world_of(src)?))
        }
    }

    fn tag_sel(tag: i32) -> OmpiResult<WantTag> {
        if tag == ompi_h::MPI_ANY_TAG {
            Ok(WantTag::AnyTag)
        } else if (0..=ompi_h::MPI_TAG_UB).contains(&tag) {
            Ok(WantTag::Tag(tag))
        } else {
            Err(ompi_h::MPI_ERR_TAG)
        }
    }

    fn send_tag(tag: i32) -> OmpiResult<i32> {
        if (0..=ompi_h::MPI_TAG_UB).contains(&tag) {
            Ok(tag)
        } else {
            Err(ompi_h::MPI_ERR_TAG)
        }
    }

    fn status_of(&self, rec: &CommRec, got: &Pulled) -> MpiStatus {
        let source = rec
            .comm_rank_of_world(got.env.src)
            .unwrap_or(ompi_h::MPI_ANY_SOURCE);
        MpiStatus::for_receive(source, got.env.tag, got.env.len())
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// `MPI_Send`.
    pub fn send(
        &mut self,
        buf: &[u8],
        dt: MpiDatatype,
        dest: i32,
        tag: i32,
        comm: MpiComm,
    ) -> OmpiResult<()> {
        self.check_live()?;
        self.check_typed_buf(dt, buf.len())?;
        let tag = Self::send_tag(tag)?;
        if dest == ompi_h::MPI_PROC_NULL {
            return Ok(());
        }
        let rec = self.rec(comm)?;
        self.xsend(&rec, false, dest, tag, Bytes::copy_from_slice(buf))
    }

    /// `MPI_Recv`.
    pub fn recv(
        &mut self,
        buf: &mut [u8],
        dt: MpiDatatype,
        src: i32,
        tag: i32,
        comm: MpiComm,
    ) -> OmpiResult<MpiStatus> {
        self.check_live()?;
        self.check_typed_buf(dt, buf.len())?;
        let tag_sel = Self::tag_sel(tag)?;
        if src == ompi_h::MPI_PROC_NULL {
            return Ok(MpiStatus::for_receive(
                ompi_h::MPI_PROC_NULL,
                ompi_h::MPI_ANY_TAG,
                0,
            ));
        }
        let rec = self.rec(comm)?;
        let src_sel = self.src_sel(&rec, src)?;
        let got = self.xrecv(&rec, false, src_sel, tag_sel)?;
        if got.env.len() > buf.len() {
            return Err(ompi_h::MPI_ERR_TRUNCATE);
        }
        buf[..got.env.len()].copy_from_slice(&got.env.payload);
        Ok(self.status_of(&rec, &got))
    }

    /// `MPI_Isend`.
    pub fn isend(
        &mut self,
        buf: &[u8],
        dt: MpiDatatype,
        dest: i32,
        tag: i32,
        comm: MpiComm,
    ) -> OmpiResult<MpiRequest> {
        self.check_live()?;
        self.check_typed_buf(dt, buf.len())?;
        let tag = Self::send_tag(tag)?;
        if dest != ompi_h::MPI_PROC_NULL {
            let rec = self.rec(comm)?;
            self.xsend(&rec, false, dest, tag, Bytes::copy_from_slice(buf))?;
        }
        Ok(self.heap.add_request(ReqRec::SendDone))
    }

    /// `MPI_Irecv`.
    pub fn irecv(
        &mut self,
        max_bytes: usize,
        dt: MpiDatatype,
        src: i32,
        tag: i32,
        comm: MpiComm,
    ) -> OmpiResult<MpiRequest> {
        self.check_live()?;
        self.check_typed_buf(dt, max_bytes)?;
        let tag_sel = Self::tag_sel(tag)?;
        if src == ompi_h::MPI_PROC_NULL {
            return Ok(self.heap.add_request(ReqRec::RecvDone {
                status: MpiStatus::for_receive(ompi_h::MPI_PROC_NULL, ompi_h::MPI_ANY_TAG, 0),
                payload: Bytes::new(),
            }));
        }
        let rec = self.rec(comm)?;
        let src_world = match self.src_sel(&rec, src)? {
            Want::AnySrc => None,
            Want::Src(w) => Some(w),
        };
        let tag_opt = match tag_sel {
            WantTag::AnyTag => None,
            WantTag::Tag(t) => Some(t),
        };
        Ok(self.heap.add_request(ReqRec::RecvPending {
            ctx_id: rec.p2p_ctx(),
            src_world,
            tag: tag_opt,
            max_bytes,
            ranks: rec.ranks.clone(),
        }))
    }

    /// `MPI_Wait`.
    pub fn wait(&mut self, req: MpiRequest) -> OmpiResult<(MpiStatus, Option<Bytes>)> {
        self.check_live()?;
        match self.heap.take_request(req)? {
            ReqRec::SendDone => Ok((MpiStatus::default(), None)),
            ReqRec::RecvDone { status, payload } => Ok((status, Some(payload))),
            ReqRec::RecvPending {
                ctx_id,
                src_world,
                tag,
                max_bytes,
                ranks,
            } => {
                let src = src_world.map_or(Want::AnySrc, Want::Src);
                let tag_sel = tag.map_or(WantTag::AnyTag, WantTag::Tag);
                let got = self
                    .progress
                    .match_wait(&self.ctx, ctx_id, src, tag_sel)
                    .map_err(sim_err)?;
                self.ctx.advance_to(got.arrival);
                self.ctx.advance(self.tuning.o_recv);
                if got.env.len() > max_bytes {
                    return Err(ompi_h::MPI_ERR_TRUNCATE);
                }
                let source = ranks
                    .iter()
                    .position(|&w| w == got.env.src)
                    .map(|p| p as i32)
                    .unwrap_or(ompi_h::MPI_ANY_SOURCE);
                Ok((
                    MpiStatus::for_receive(source, got.env.tag, got.env.len()),
                    Some(got.env.payload),
                ))
            }
        }
    }

    /// `MPI_Test`.
    pub fn test(&mut self, req: MpiRequest) -> OmpiResult<Option<(MpiStatus, Option<Bytes>)>> {
        self.check_live()?;
        match self.heap.take_request(req)? {
            ReqRec::SendDone => Ok(Some((MpiStatus::default(), None))),
            ReqRec::RecvDone { status, payload } => Ok(Some((status, Some(payload)))),
            pending @ ReqRec::RecvPending { .. } => {
                let (ctx_id, src, tag_sel, max_bytes, ranks) = match &pending {
                    ReqRec::RecvPending {
                        ctx_id,
                        src_world,
                        tag,
                        max_bytes,
                        ranks,
                    } => (
                        *ctx_id,
                        src_world.map_or(Want::AnySrc, Want::Src),
                        tag.map_or(WantTag::AnyTag, WantTag::Tag),
                        *max_bytes,
                        ranks.clone(),
                    ),
                    _ => unreachable!(),
                };
                match self
                    .progress
                    .try_match(&self.ctx, ctx_id, src, tag_sel)
                    .map_err(sim_err)?
                {
                    None => {
                        self.heap.put_back_request(req, pending)?;
                        Ok(None)
                    }
                    Some(got) => {
                        self.ctx.advance_to(got.arrival);
                        self.ctx.advance(self.tuning.o_recv);
                        if got.env.len() > max_bytes {
                            return Err(ompi_h::MPI_ERR_TRUNCATE);
                        }
                        let source = ranks
                            .iter()
                            .position(|&w| w == got.env.src)
                            .map(|p| p as i32)
                            .unwrap_or(ompi_h::MPI_ANY_SOURCE);
                        Ok(Some((
                            MpiStatus::for_receive(source, got.env.tag, got.env.len()),
                            Some(got.env.payload),
                        )))
                    }
                }
            }
        }
    }

    /// `MPI_Waitall`.
    pub fn waitall(&mut self, reqs: &[MpiRequest]) -> OmpiResult<Vec<(MpiStatus, Option<Bytes>)>> {
        reqs.iter().map(|&r| self.wait(r)).collect()
    }

    /// `MPI_Sendrecv`.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &mut self,
        sendbuf: &[u8],
        dest: i32,
        sendtag: i32,
        recvbuf: &mut [u8],
        src: i32,
        recvtag: i32,
        dt: MpiDatatype,
        comm: MpiComm,
    ) -> OmpiResult<MpiStatus> {
        self.send(sendbuf, dt, dest, sendtag, comm)?;
        self.recv(recvbuf, dt, src, recvtag, comm)
    }

    /// `MPI_Probe`.
    pub fn probe(&mut self, src: i32, tag: i32, comm: MpiComm) -> OmpiResult<MpiStatus> {
        self.check_live()?;
        let rec = self.rec(comm)?;
        let src_sel = self.src_sel(&rec, src)?;
        let tag_sel = Self::tag_sel(tag)?;
        let got = self
            .progress
            .peek_wait(&self.ctx, rec.p2p_ctx(), src_sel, tag_sel)
            .map_err(sim_err)?;
        Ok(self.status_of(&rec, &got))
    }

    /// `MPI_Iprobe`.
    pub fn iprobe(&mut self, src: i32, tag: i32, comm: MpiComm) -> OmpiResult<Option<MpiStatus>> {
        self.check_live()?;
        let rec = self.rec(comm)?;
        let src_sel = self.src_sel(&rec, src)?;
        let tag_sel = Self::tag_sel(tag)?;
        let got = self
            .progress
            .try_peek(&self.ctx, rec.p2p_ctx(), src_sel, tag_sel)
            .map_err(sim_err)?;
        Ok(got.map(|g| self.status_of(&rec, &g)))
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// `MPI_Comm_dup` (collective).
    pub fn comm_dup(&mut self, comm: MpiComm) -> OmpiResult<MpiComm> {
        self.check_live()?;
        let rec = self.rec(comm)?;
        let base = self.agree_ctx_base(&rec)?;
        self.next_ctx_base = base + 2;
        Ok(self.heap.add_comm(CommRec {
            ctx_base: base,
            ranks: rec.ranks.clone(),
            my_rank: rec.my_rank,
        }))
    }

    /// `MPI_Comm_split` (collective).
    pub fn comm_split(&mut self, comm: MpiComm, color: i32, key: i32) -> OmpiResult<MpiComm> {
        self.check_live()?;
        let rec = self.rec(comm)?;
        let base = self.agree_ctx_base(&rec)?;
        let n = rec.size();
        let me = rec.my_rank as usize;
        const SPLIT_TAG: i32 = 0x0300;
        let mut table: Vec<[i32; 2]> = vec![[0; 2]; n];
        if me == 0 {
            table[0] = [color, key];
            for _ in 1..n {
                let got = self.xrecv(&rec, true, Want::AnySrc, WantTag::Tag(SPLIT_TAG))?;
                let cr = rec
                    .comm_rank_of_world(got.env.src)
                    .ok_or(ompi_h::MPI_ERR_INTERN)? as usize;
                table[cr] = [
                    i32::from_le_bytes(got.env.payload[0..4].try_into().unwrap()),
                    i32::from_le_bytes(got.env.payload[4..8].try_into().unwrap()),
                ];
            }
            let mut flat = Vec::with_capacity(n * 8);
            for ck in &table {
                flat.extend_from_slice(&ck[0].to_le_bytes());
                flat.extend_from_slice(&ck[1].to_le_bytes());
            }
            let payload = Bytes::from(flat);
            for dst in 1..n {
                self.xsend(&rec, true, dst as i32, SPLIT_TAG + 1, payload.clone())?;
            }
        } else {
            let mut mine = Vec::with_capacity(8);
            mine.extend_from_slice(&color.to_le_bytes());
            mine.extend_from_slice(&key.to_le_bytes());
            self.xsend(&rec, true, 0, SPLIT_TAG, Bytes::from(mine))?;
            let got = self.xrecv(
                &rec,
                true,
                Want::Src(rec.world_of(0)?),
                WantTag::Tag(SPLIT_TAG + 1),
            )?;
            for (cr, chunk) in got.env.payload.chunks_exact(8).enumerate() {
                table[cr] = [
                    i32::from_le_bytes(chunk[0..4].try_into().unwrap()),
                    i32::from_le_bytes(chunk[4..8].try_into().unwrap()),
                ];
            }
        }

        let mut colors: Vec<i32> = table
            .iter()
            .map(|ck| ck[0])
            .filter(|&c| c != ompi_h::MPI_UNDEFINED)
            .collect();
        colors.sort_unstable();
        colors.dedup();
        self.next_ctx_base = base + 2 * colors.len().max(1) as u64;
        if color == ompi_h::MPI_UNDEFINED {
            return Ok(ompi_h::MPI_COMM_NULL);
        }
        let color_idx = colors
            .binary_search(&color)
            .map_err(|_| ompi_h::MPI_ERR_INTERN)?;
        let mut members: Vec<(i32, usize)> = table
            .iter()
            .enumerate()
            .filter(|(_, ck)| ck[0] == color)
            .map(|(cr, ck)| (ck[1], cr))
            .collect();
        members.sort_unstable();
        let world_ranks: Vec<usize> = members.iter().map(|&(_, cr)| rec.ranks[cr]).collect();
        let my_new_rank = members
            .iter()
            .position(|&(_, cr)| cr == me)
            .ok_or(ompi_h::MPI_ERR_INTERN)? as i32;
        Ok(self.heap.add_comm(CommRec {
            ctx_base: base + 2 * color_idx as u64,
            ranks: std::sync::Arc::new(world_ranks),
            my_rank: my_new_rank,
        }))
    }

    /// `MPI_Comm_free`.
    pub fn comm_free(&mut self, comm: MpiComm) -> OmpiResult<()> {
        self.check_live()?;
        self.heap.free_comm(comm)
    }

    fn agree_ctx_base(&mut self, rec: &CommRec) -> OmpiResult<u64> {
        const CTX_TAG: i32 = 0x0301;
        let n = rec.size();
        let me = rec.my_rank as usize;
        let mut agreed = self.next_ctx_base;
        if n == 1 {
            return Ok(agreed);
        }
        if me == 0 {
            for _ in 1..n {
                let got = self.xrecv(rec, true, Want::AnySrc, WantTag::Tag(CTX_TAG))?;
                agreed = agreed.max(u64::from_le_bytes(got.env.payload[..8].try_into().unwrap()));
            }
            let payload = Bytes::copy_from_slice(&agreed.to_le_bytes());
            for dst in 1..n {
                self.xsend(rec, true, dst as i32, CTX_TAG + 1, payload.clone())?;
            }
        } else {
            self.xsend(
                rec,
                true,
                0,
                CTX_TAG,
                Bytes::copy_from_slice(&self.next_ctx_base.to_le_bytes()),
            )?;
            let got = self.xrecv(
                rec,
                true,
                Want::Src(rec.world_of(0)?),
                WantTag::Tag(CTX_TAG + 1),
            )?;
            agreed = u64::from_le_bytes(got.env.payload[..8].try_into().unwrap());
        }
        Ok(agreed)
    }

    // ------------------------------------------------------------------
    // Datatypes & ops
    // ------------------------------------------------------------------

    /// `MPI_Type_size`.
    pub fn type_size(&self, dt: MpiDatatype) -> OmpiResult<usize> {
        self.heap.type_size(dt)
    }

    /// `MPI_Type_contiguous`.
    pub fn type_contiguous(&mut self, count: i32, oldtype: MpiDatatype) -> OmpiResult<MpiDatatype> {
        self.check_live()?;
        if count < 0 {
            return Err(ompi_h::MPI_ERR_COUNT);
        }
        let base_size = self.heap.type_size(oldtype)?;
        let elem = kernels::ElemKind::of_builtin(oldtype)
            .or_else(|| self.heap.derived(oldtype).ok().and_then(|t| t.elem));
        Ok(self.heap.add_type(TypeRec {
            size: base_size * count as usize,
            elem,
            committed: false,
        }))
    }

    /// `MPI_Type_commit`.
    pub fn type_commit(&mut self, dt: MpiDatatype) -> OmpiResult<()> {
        self.check_live()?;
        if ompi_h::PREDEFINED_DATATYPES.iter().any(|(h, _)| *h == dt) {
            return Ok(());
        }
        self.heap.commit_type(dt)
    }

    /// `MPI_Type_free`.
    pub fn type_free(&mut self, dt: MpiDatatype) -> OmpiResult<()> {
        self.check_live()?;
        self.heap.free_type(dt)
    }

    /// `MPI_Op_create`.
    pub fn op_create(&mut self, func: OmpiUserFn, commute: bool) -> OmpiResult<MpiOp> {
        self.check_live()?;
        Ok(self.heap.add_op(OpRec { func, commute }))
    }

    /// `MPI_Op_free`.
    pub fn op_free(&mut self, op: MpiOp) -> OmpiResult<()> {
        self.check_live()?;
        self.heap.free_op(op)
    }

    pub(crate) fn combine_with(
        &self,
        op: MpiOp,
        dt: MpiDatatype,
        acc: &mut [u8],
        other: &[u8],
    ) -> OmpiResult<()> {
        if Heap::is_builtin_op(op) {
            let kind = self.heap.elem_kind(dt)?;
            kernels::combine(op, kind, acc, other)
        } else {
            let rec = self.heap.user_op(op)?;
            if acc.len() != other.len() {
                return Err(ompi_h::MPI_ERR_COUNT);
            }
            let elem_size = self.heap.type_size(dt)?;
            (rec.func)(other, acc, elem_size);
            Ok(())
        }
    }

    pub(crate) fn charge_reduce_cost(&self, bytes: usize) {
        // Slightly faster combine loop than the MPICH flavour (different
        // compiler flags in the fiction; a real vendor-to-vendor delta).
        let ns = bytes as f64 / 1.8;
        self.ctx.compute(VirtualTime::from_nanos(ns as u64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{ClusterSpec, World};

    fn run_world<R: Send>(
        nranks: usize,
        f: impl Fn(&mut OmpiProcess) -> OmpiResult<R> + Sync,
    ) -> Vec<R> {
        let spec = ClusterSpec::builder()
            .nodes(1)
            .ranks_per_node(nranks)
            .build();
        World::run(&spec, |ctx| {
            let mut p = OmpiProcess::init(ctx);
            f(&mut p)
                .map_err(|code| simnet::SimError::InvalidConfig(format!("native error {code}")))
        })
        .unwrap()
        .results
    }

    #[test]
    fn ring_with_pointer_handles() {
        let out = run_world(4, |p| {
            let n = p.comm_size(ompi_h::MPI_COMM_WORLD)?;
            let me = p.comm_rank(ompi_h::MPI_COMM_WORLD)?;
            let next = (me + 1) % n;
            let prev = (me + n - 1) % n;
            p.send(
                &me.to_le_bytes(),
                ompi_h::MPI_INT,
                next,
                3,
                ompi_h::MPI_COMM_WORLD,
            )?;
            let mut buf = [0u8; 4];
            let st = p.recv(&mut buf, ompi_h::MPI_INT, prev, 3, ompi_h::MPI_COMM_WORLD)?;
            assert_eq!(st.mpi_source, prev);
            assert_eq!(st.count_bytes(), 4);
            Ok(i32::from_le_bytes(buf))
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn proc_null_uses_ompi_value() {
        run_world(1, |p| {
            // −2 is PROC_NULL here (it is ANY_SOURCE in the MPICH flavour!).
            p.send(
                &[0u8; 4],
                ompi_h::MPI_INT,
                ompi_h::MPI_PROC_NULL,
                0,
                ompi_h::MPI_COMM_WORLD,
            )?;
            let mut b = [0u8; 4];
            let st = p.recv(
                &mut b,
                ompi_h::MPI_INT,
                ompi_h::MPI_PROC_NULL,
                0,
                ompi_h::MPI_COMM_WORLD,
            )?;
            assert_eq!(st.mpi_source, ompi_h::MPI_PROC_NULL);
            Ok(())
        });
    }

    #[test]
    fn nonblocking_and_test() {
        let out = run_world(2, |p| {
            let me = p.comm_rank(ompi_h::MPI_COMM_WORLD)?;
            let other = 1 - me;
            let r = p.irecv(4, ompi_h::MPI_INT, other, 0, ompi_h::MPI_COMM_WORLD)?;
            p.send(
                &me.to_le_bytes(),
                ompi_h::MPI_INT,
                other,
                0,
                ompi_h::MPI_COMM_WORLD,
            )?;
            // Spin on test until completion.
            loop {
                if let Some((st, data)) = p.test(r)? {
                    assert_eq!(st.mpi_source, other);
                    return Ok(i32::from_le_bytes(data.unwrap()[..].try_into().unwrap()));
                }
            }
        });
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn comm_split_with_ompi_undefined() {
        let out = run_world(4, |p| {
            let me = p.comm_rank(ompi_h::MPI_COMM_WORLD)?;
            let color = if me == 0 {
                ompi_h::MPI_UNDEFINED
            } else {
                me % 2
            };
            let sub = p.comm_split(ompi_h::MPI_COMM_WORLD, color, -me)?;
            if sub == ompi_h::MPI_COMM_NULL {
                return Ok((-1, -1));
            }
            // Negative keys reverse the order within each color.
            Ok((p.comm_rank(sub)?, p.comm_size(sub)?))
        });
        assert_eq!(out[0], (-1, -1));
        // color 0: rank 2 only (me%2==0 for me=2). color 1: ranks 1,3 with
        // keys -1,-3 => rank 3 first.
        assert_eq!(out[2], (0, 1));
        assert_eq!(out[1], (1, 2));
        assert_eq!(out[3], (0, 2));
    }

    #[test]
    fn truncation_error_value_is_ompis() {
        let out = run_world(2, |p| {
            let me = p.comm_rank(ompi_h::MPI_COMM_WORLD)?;
            if me == 0 {
                p.send(&[0u8; 16], ompi_h::MPI_BYTE, 1, 0, ompi_h::MPI_COMM_WORLD)?;
                Ok(0)
            } else {
                let mut small = [0u8; 4];
                Ok(
                    p.recv(&mut small, ompi_h::MPI_BYTE, 0, 0, ompi_h::MPI_COMM_WORLD)
                        .unwrap_err(),
                )
            }
        });
        assert_eq!(out[1], ompi_h::MPI_ERR_TRUNCATE);
    }

    #[test]
    fn wtime_and_version() {
        run_world(1, |p| {
            assert!(p.version().contains("ompi-sim"));
            assert!(p.wtime() >= 0.0);
            Ok(())
        });
    }
}
