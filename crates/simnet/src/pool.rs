//! A shared bounded worker pool with FIFO gang admission.
//!
//! Two callers need to bound rank-thread concurrency: [`World::run_pooled`]
//! (independent rank bodies of ONE world admitted through a sliding
//! window) and the multi-tenant cluster layer (MANY communicating worlds
//! sharing one process, each needing *all* of its ranks live at once —
//! gang admission, because a communicating world deadlocks if only half
//! its ranks exist). Both express their need as permits against one
//! [`WorkerPool`].
//!
//! Admission is strictly FIFO by ticket: a large gang waiting at the head
//! of the queue cannot be starved by a stream of small requests slipping
//! past it. A gang larger than the pool's whole capacity is admitted
//! alone, once the pool is fully idle — it borrows every permit rather
//! than deadlocking on permits that can never all exist.
//!
//! [`World::run_pooled`]: crate::world::World::run_pooled

use std::sync::Arc;

use sanity::lockcheck::{self, TrackedCondvar, TrackedMutex};

/// Bounded permit pool with FIFO (ticketed) gang admission.
#[derive(Clone)]
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    capacity: usize,
    state: TrackedMutex<PoolState>,
    cv: TrackedCondvar,
}

struct PoolState {
    available: usize,
    /// Next ticket to hand out to an arriving acquirer.
    next_ticket: u64,
    /// Ticket currently at the head of the admission queue.
    serving: u64,
}

impl WorkerPool {
    /// A pool of `capacity` worker permits (clamped to at least 1).
    pub fn new(capacity: usize) -> WorkerPool {
        let capacity = capacity.max(1);
        WorkerPool {
            inner: Arc::new(PoolInner {
                capacity,
                state: TrackedMutex::named(
                    "pool.state",
                    PoolState {
                        available: capacity,
                        next_ticket: 0,
                        serving: 0,
                    },
                ),
                cv: TrackedCondvar::new(),
            }),
        }
    }

    /// Total permits this pool was built with.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Permits not currently held (snapshot; racy by nature).
    pub fn available(&self) -> usize {
        self.inner.state.lock().expect("pool lock").available
    }

    /// Block until `n` permits can be taken as one gang, FIFO-ordered
    /// against every other acquirer. A gang wider than the pool's
    /// capacity waits for the pool to be fully idle and borrows all
    /// `capacity` permits (it runs alone).
    pub fn acquire(&self, n: usize) -> PoolGuard {
        let want = n.max(1).min(self.inner.capacity);
        // Gang admission parks the caller until the whole gang fits: a
        // tracked guard carried in from outside would block every peer.
        lockcheck::rendezvous_crossing("pool.acquire");
        let mut state = self.inner.state.lock().expect("pool lock");
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        while state.serving != ticket || state.available < want {
            state = self.inner.cv.wait(state).expect("pool wait");
        }
        state.available -= want;
        state.serving += 1;
        // The next ticket may already be satisfiable with what's left.
        self.inner.cv.notify_all();
        PoolGuard {
            inner: self.inner.clone(),
            permits: want,
        }
    }
}

/// Permits held from a [`WorkerPool`]; returned on drop.
pub struct PoolGuard {
    inner: Arc<PoolInner>,
    permits: usize,
}

impl PoolGuard {
    /// How many permits this gang holds.
    pub fn permits(&self) -> usize {
        self.permits
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("pool lock");
        state.available += self.permits;
        self.inner.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    #[test]
    fn permits_bound_concurrency() {
        let pool = WorkerPool::new(3);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..12 {
                s.spawn(|| {
                    let _g = pool.acquire(1);
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(2));
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn oversized_gang_admitted_alone() {
        let pool = WorkerPool::new(4);
        let g = pool.acquire(9);
        assert_eq!(g.permits(), 4, "oversized gang borrows full capacity");
        assert_eq!(pool.available(), 0);
        drop(g);
        assert_eq!(pool.available(), 4);
    }

    #[test]
    fn fifo_gang_not_starved_by_singles() {
        // A width-4 gang queued behind one single must get in before
        // singles that arrived after it, even though singles would fit
        // sooner — FIFO tickets forbid overtaking.
        let pool = WorkerPool::new(4);
        let order = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            let first = pool.acquire(4);
            s.spawn(|| {
                let _g = pool.acquire(4);
                order.lock().unwrap().push("gang");
            });
            // Give the gang time to take its ticket.
            std::thread::sleep(Duration::from_millis(5));
            s.spawn(|| {
                let _g = pool.acquire(1);
                order.lock().unwrap().push("single");
            });
            std::thread::sleep(Duration::from_millis(5));
            drop(first);
        });
        assert_eq!(*order.lock().unwrap(), vec!["gang", "single"]);
    }
}
