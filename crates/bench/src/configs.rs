//! The experiment configurations of the paper's §5.

use muk::Vendor;
use simnet::{ClusterSpec, NoiseModel};
use stool::{Checkpointer, Session, StoolResult};

/// The four measured configurations of Figs. 2–5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigKind {
    /// Native MPICH (application recompiled against the vendor).
    MpichNative,
    /// MPICH + Mukautuva + MANA (the full stool).
    MpichFull,
    /// Native Open MPI.
    OmpiNative,
    /// Open MPI + Mukautuva + MANA.
    OmpiFull,
}

impl ConfigKind {
    /// All four, in the paper's legend order.
    pub const ALL: [ConfigKind; 4] = [
        ConfigKind::MpichNative,
        ConfigKind::MpichFull,
        ConfigKind::OmpiNative,
        ConfigKind::OmpiFull,
    ];

    /// Legend label, matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ConfigKind::MpichNative => "MPICH",
            ConfigKind::MpichFull => "MPICH + Mukautuva + MANA",
            ConfigKind::OmpiNative => "Open MPI",
            ConfigKind::OmpiFull => "Open MPI + Mukautuva + MANA",
        }
    }

    /// The underlying vendor.
    pub fn vendor(self) -> Vendor {
        match self {
            ConfigKind::MpichNative | ConfigKind::MpichFull => Vendor::Mpich,
            ConfigKind::OmpiNative | ConfigKind::OmpiFull => Vendor::OpenMpi,
        }
    }

    /// Whether the full interposition stack is on.
    pub fn is_full(self) -> bool {
        matches!(self, ConfigKind::MpichFull | ConfigKind::OmpiFull)
    }

    /// The native counterpart of a full config (for overhead computation).
    pub fn native_of(self) -> ConfigKind {
        match self {
            ConfigKind::MpichFull => ConfigKind::MpichNative,
            ConfigKind::OmpiFull => ConfigKind::OmpiNative,
            other => other,
        }
    }

    /// Build the session for this configuration on a cluster.
    pub fn session(self, cluster: ClusterSpec) -> StoolResult<Session> {
        let b = Session::builder().cluster(cluster).vendor(self.vendor());
        let b = if self.is_full() {
            b.checkpointer(Checkpointer::mana())
        } else {
            b.native_abi()
        };
        b.build()
    }
}

/// The paper's testbed: 4 nodes × 12 ranks, 10 GbE, CentOS 7 — with a
/// per-repeat noise seed (experiments are "repeated 5 times").
pub fn paper_cluster(repeat: u64, rel_sigma: f64) -> ClusterSpec {
    let mut spec = ClusterSpec::discovery();
    if rel_sigma > 0.0 {
        spec.noise = NoiseModel::with_sigma(rel_sigma, 0xC0FFEE ^ repeat.wrapping_mul(0x9E37));
    }
    spec
}

/// A smaller cluster for quick runs and CI (2 nodes × 4 ranks).
pub fn quick_cluster(repeat: u64, rel_sigma: f64) -> ClusterSpec {
    let mut spec = ClusterSpec::builder()
        .nodes(2)
        .ranks_per_node(4)
        .kernel(simnet::KernelVersion::CENTOS7)
        .build();
    if rel_sigma > 0.0 {
        spec.noise = NoiseModel::with_sigma(rel_sigma, 0xC0FFEE ^ repeat.wrapping_mul(0x9E37));
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_pairing() {
        assert_eq!(ConfigKind::MpichFull.native_of(), ConfigKind::MpichNative);
        assert_eq!(ConfigKind::OmpiFull.native_of(), ConfigKind::OmpiNative);
        assert_eq!(ConfigKind::OmpiNative.native_of(), ConfigKind::OmpiNative);
        assert!(ConfigKind::MpichFull.label().contains("Mukautuva + MANA"));
        assert!(!ConfigKind::MpichNative.is_full());
    }

    #[test]
    fn sessions_build_for_all_configs() {
        for kind in ConfigKind::ALL {
            let session = kind.session(quick_cluster(0, 0.0)).unwrap();
            if kind.is_full() {
                assert!(session.label().contains("MANA"));
            } else {
                assert!(!session.label().contains("MANA"));
            }
        }
    }

    #[test]
    fn paper_cluster_is_discovery() {
        let c = paper_cluster(0, 0.0);
        assert_eq!(c.nranks(), 48);
        assert!(!c.kernel.has_userspace_fsgsbase());
        let noisy = paper_cluster(1, 0.08);
        assert!(noisy.noise.enabled());
    }
}
