//! OSU Micro-Benchmark-style collective latency kernels.
//!
//! Reproduces the measurement protocol of OSU Micro-Benchmarks 7.5 as used
//! in the paper's §5.1: for each power-of-two message size, a warmup phase
//! followed by timed iterations of one collective; the reported number is
//! the average per-iteration latency in microseconds, averaged over ranks.
//!
//! The paper's §5.3 modification is included: with
//! [`OsuLatency::ckpt_window`] set, the benchmark sleeps for that long
//! after its warmup phase — the window in which the Fig. 6 checkpoint is
//! taken — then records its measurements after the (possibly cross-vendor)
//! restart.

use mpi_abi::{Handle, ReduceOp};
use simnet::VirtualTime;
use stool::{AppCtx, MpiProgram, StoolResult};

/// Which collective to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OsuKernel {
    /// `MPI_Alltoall` (Fig. 2): the most network-intensive pattern.
    Alltoall,
    /// `MPI_Bcast` (Fig. 3).
    Bcast,
    /// `MPI_Allreduce` (Fig. 4).
    Allreduce,
}

impl OsuKernel {
    /// The benchmark name as OSU prints it.
    pub fn title(self) -> &'static str {
        match self {
            OsuKernel::Alltoall => "OSU MPI All-to-All Personalized Exchange Latency Test",
            OsuKernel::Bcast => "OSU MPI Broadcast Latency Test",
            OsuKernel::Allreduce => "OSU MPI Allreduce Latency Test",
        }
    }
}

/// The latency benchmark program.
#[derive(Debug, Clone)]
pub struct OsuLatency {
    /// Collective under test.
    pub kernel: OsuKernel,
    /// Smallest message size in bytes (per-rank block for alltoall).
    pub min_size: usize,
    /// Largest message size in bytes.
    pub max_size: usize,
    /// Untimed warmup iterations per size.
    pub warmup: usize,
    /// Timed iterations per size.
    pub iters: usize,
    /// Optional post-warmup sleep window (the Fig. 6 modification).
    pub ckpt_window: Option<VirtualTime>,
}

impl OsuLatency {
    /// The paper's configuration: 1 B – 256 KiB, like the OSU defaults
    /// scaled to the figures' x-axes.
    pub fn paper_config(kernel: OsuKernel) -> OsuLatency {
        OsuLatency {
            kernel,
            min_size: 1,
            max_size: 256 * 1024,
            warmup: 10,
            iters: 100,
            ckpt_window: None,
        }
    }

    /// The message sizes swept (powers of two from min to max).
    pub fn sizes(&self) -> Vec<usize> {
        let mut v = Vec::new();
        let mut s = self.min_size.max(1);
        while s <= self.max_size {
            v.push(s);
            s *= 2;
        }
        v
    }

    /// Iterations for a given size — like OSU, large messages run fewer
    /// timed iterations.
    pub fn iters_for(&self, size: usize) -> usize {
        if size >= 64 * 1024 {
            (self.iters / 10).max(1)
        } else if size >= 8 * 1024 {
            (self.iters / 4).max(1)
        } else {
            self.iters
        }
    }

    fn run_one(&self, app: &mut AppCtx<'_>, size: usize) -> StoolResult<f64> {
        let n = app.nranks();
        match self.kernel {
            OsuKernel::Alltoall => {
                let send = vec![0x5Au8; size * n];
                let mut recv = vec![0u8; size * n];
                app.pmpi()
                    .alltoall_bytes(&send, &mut recv, Handle::COMM_WORLD)?;
            }
            OsuKernel::Bcast => {
                let mut buf = vec![0x5Au8; size];
                app.pmpi().bcast_bytes(&mut buf, 0, Handle::COMM_WORLD)?;
            }
            OsuKernel::Allreduce => {
                // OSU allreduce uses float data; round the byte size up to
                // whole doubles.
                let elems = size.div_ceil(8).max(1);
                let send = vec![0u8; elems * 8];
                let mut recv = vec![0u8; elems * 8];
                app.pmpi().allreduce_bytes_f64(
                    &send,
                    &mut recv,
                    ReduceOp::Sum,
                    Handle::COMM_WORLD,
                )?;
            }
        }
        Ok(0.0)
    }
}

impl MpiProgram for OsuLatency {
    fn name(&self) -> &'static str {
        match self.kernel {
            OsuKernel::Alltoall => "osu-alltoall",
            OsuKernel::Bcast => "osu-bcast",
            OsuKernel::Allreduce => "osu-allreduce",
        }
    }

    fn run(&self, app: &mut AppCtx<'_>) -> StoolResult<()> {
        let sizes = self.sizes();
        let nsizes = sizes.len() as u64;

        // Step 0: warmup (at the largest size) + optional sleep window.
        if app.resume_step() == 0 {
            if app.checkpoint_point(0)?.is_stop() {
                return Ok(());
            }
            for _ in 0..self.warmup {
                self.run_one(app, *sizes.last().expect("at least one size"))?;
            }
            if let Some(window) = self.ckpt_window {
                // The modified benchmark of §5.3: sleep so the user can
                // checkpoint "during this time window".
                app.sleep(window);
            }
            app.mem.f64s_mut("osu.lat_us", sizes.len());
            app.mem.u64s_mut("osu.sizes", sizes.len());
        }

        // Steps 1..=nsizes: one measured size per step (safe points
        // between sizes, so a checkpoint can land mid-sweep).
        for step in app.resume_step().max(1)..=nsizes {
            if app.checkpoint_point(step)?.is_stop() {
                return Ok(());
            }
            let size = sizes[(step - 1) as usize];
            let iters = self.iters_for(size);
            // OSU 7.x measurement protocol: each iteration times only the
            // collective itself, with an untimed barrier after it so the
            // next iteration starts synchronized. Without the barrier, a
            // rooted collective pipelines (the root races ahead) and the
            // measured number is per-iteration *throughput*, not latency.
            app.pmpi().barrier(Handle::COMM_WORLD)?;
            let mut local_us = 0.0;
            for _ in 0..iters {
                let t0 = app.now();
                self.run_one(app, size)?;
                let t1 = app.now();
                local_us += (t1 - t0).as_micros_f64();
                app.pmpi().barrier(Handle::COMM_WORLD)?;
            }
            let local_avg_us = local_us / iters as f64;
            // OSU reports the average across ranks.
            let sum = app
                .pmpi()
                .allreduce_f64(local_avg_us, ReduceOp::Sum, Handle::COMM_WORLD)?;
            let avg = sum / app.nranks() as f64;
            app.mem.u64s_mut("osu.sizes", sizes.len())[(step - 1) as usize] = size as u64;
            app.mem.f64s_mut("osu.lat_us", sizes.len())[(step - 1) as usize] = avg;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stool::{Checkpointer, Session, Vendor};

    fn tiny() -> OsuLatency {
        OsuLatency {
            kernel: OsuKernel::Alltoall,
            min_size: 1,
            max_size: 64,
            warmup: 2,
            iters: 5,
            ckpt_window: None,
        }
    }

    #[test]
    fn sizes_are_powers_of_two() {
        let b = tiny();
        assert_eq!(b.sizes(), vec![1, 2, 4, 8, 16, 32, 64]);
        let paper = OsuLatency::paper_config(OsuKernel::Bcast);
        assert_eq!(paper.sizes().first(), Some(&1));
        assert_eq!(paper.sizes().last(), Some(&(256 * 1024)));
    }

    #[test]
    fn latencies_are_positive_and_grow_with_size() {
        let cluster = simnet::ClusterSpec::builder()
            .nodes(2)
            .ranks_per_node(2)
            .build();
        for kernel in [OsuKernel::Alltoall, OsuKernel::Bcast, OsuKernel::Allreduce] {
            let bench = OsuLatency { kernel, ..tiny() };
            let session = Session::builder()
                .cluster(cluster.clone())
                .vendor(Vendor::Mpich)
                .build()
                .unwrap();
            let out = session.launch(&bench).unwrap();
            let mem = &out.memories().unwrap()[0];
            let lats = mem.f64s("osu.lat_us").unwrap();
            assert_eq!(lats.len(), bench.sizes().len());
            assert!(lats.iter().all(|&l| l > 0.0), "{kernel:?}: {lats:?}");
            // Largest size must cost more than smallest.
            assert!(lats.last().unwrap() >= lats.first().unwrap());
        }
    }

    #[test]
    fn all_ranks_record_identical_series() {
        let cluster = simnet::ClusterSpec::builder()
            .nodes(1)
            .ranks_per_node(3)
            .build();
        let bench = tiny();
        let session = Session::builder()
            .cluster(cluster)
            .vendor(Vendor::OpenMpi)
            .checkpointer(Checkpointer::mana())
            .build()
            .unwrap();
        let out = session.launch(&bench).unwrap();
        let memories = out.memories().unwrap();
        let first = memories[0].f64s("osu.lat_us").unwrap();
        for m in memories {
            assert_eq!(m.f64s("osu.lat_us").unwrap(), first);
        }
    }
}
