//! End-to-end `stoolint` binary checks: real process, real exit codes,
//! real JSON on stdout.

use std::process::Command;

fn fixture_tree(tag: &str, lib_rs: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stoolint-bin-{tag}-{}", std::process::id()));
    let src = dir.join("crates/fixture/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(src.join("lib.rs"), lib_rs).unwrap();
    dir
}

#[test]
fn seeded_violation_exits_2_with_json_report() {
    let dir = fixture_tree("bad", "fn f() {\n    eprintln!(\"seeded\");\n}\n");
    let out = Command::new(env!("CARGO_BIN_EXE_stoolint"))
        .args(["--root", dir.to_str().unwrap()])
        .output()
        .expect("stoolint runs");
    assert_eq!(out.status.code(), Some(2), "violations must exit 2");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"rule\":\"no-eprintln\""),
        "json: {stdout}"
    );
    assert!(stdout.contains("\"line\":2"), "json: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("VIOLATION"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_tree_exits_0() {
    let dir = fixture_tree("good", "fn f() {}\n");
    let out = Command::new(env!("CARGO_BIN_EXE_stoolint"))
        .args(["--root", dir.to_str().unwrap(), "--quiet"])
        .output()
        .expect("stoolint runs");
    assert_eq!(out.status.code(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn driver_error_exits_1() {
    let out = Command::new(env!("CARGO_BIN_EXE_stoolint"))
        .args(["--no-such-flag"])
        .output()
        .expect("stoolint runs");
    assert_eq!(out.status.code(), Some(1), "bad usage is a driver error");
}
