//! The MPICH-flavoured **native ABI**: what this library's `mpi.h` exposes.
//!
//! Everything here mirrors the representation choices of the real MPICH
//! family, which is what made MANA's original implementation MPICH-specific:
//!
//! * handles are **32-bit integers** with kind/size information packed into
//!   bit fields (predefined objects are compile-time constants like
//!   `0x44000000`);
//! * `MPI_Status` has MPICH's field order, with the transfer count split
//!   across two words;
//! * wildcard/sentinel constants have MPICH's values (`MPI_ANY_SOURCE = -2`,
//!   `MPI_PROC_NULL = -1`, …), which differ from both the Open MPI flavour
//!   and the standard ABI.
//!
//! A binary "compiled against" this module cannot run on `ompi-sim` — the
//! handle values and status layout are meaningless there. That failure (and
//! its repair by the `muk` shim) is demonstrated in `examples/abi_mismatch.rs`.

/// Native communicator handle: a 32-bit integer, MPICH style.
pub type MpiComm = i32;
/// Native datatype handle.
pub type MpiDatatype = i32;
/// Native reduction-op handle.
pub type MpiOp = i32;
/// Native request handle.
pub type MpiRequest = i32;

// ---------------------------------------------------------------------
// Predefined communicators (MPICH bit patterns)
// ---------------------------------------------------------------------

/// `MPI_COMM_WORLD` — note the MPICH magic `0x44000000`.
pub const MPI_COMM_WORLD: MpiComm = 0x4400_0000;
/// `MPI_COMM_SELF`.
pub const MPI_COMM_SELF: MpiComm = 0x4400_0001;
/// `MPI_COMM_NULL`.
pub const MPI_COMM_NULL: MpiComm = 0x0400_0000;
/// Dynamic communicators: `DYN_COMM_BASE | slot`.
pub const DYN_COMM_BASE: MpiComm = 0x8400_0000u32 as i32;

// ---------------------------------------------------------------------
// Predefined datatypes: 0x4c000000 | (size_in_bytes << 8) | index
// (the size-in-handle trick is exactly what real MPICH does)
// ---------------------------------------------------------------------

/// `MPI_DATATYPE_NULL`.
pub const MPI_DATATYPE_NULL: MpiDatatype = 0x0c00_0000;
/// `MPI_BYTE`.
pub const MPI_BYTE: MpiDatatype = 0x4c00_0101;
/// `MPI_CHAR`.
pub const MPI_CHAR: MpiDatatype = 0x4c00_0102;
/// `MPI_INT8_T`.
pub const MPI_INT8_T: MpiDatatype = 0x4c00_0103;
/// `MPI_UINT8_T`.
pub const MPI_UINT8_T: MpiDatatype = 0x4c00_0104;
/// `MPI_INT16_T`.
pub const MPI_INT16_T: MpiDatatype = 0x4c00_0205;
/// `MPI_UINT16_T`.
pub const MPI_UINT16_T: MpiDatatype = 0x4c00_0206;
/// `MPI_INT` (32-bit).
pub const MPI_INT: MpiDatatype = 0x4c00_0407;
/// `MPI_UINT32_T`.
pub const MPI_UINT32_T: MpiDatatype = 0x4c00_0408;
/// `MPI_INT64_T`.
pub const MPI_INT64_T: MpiDatatype = 0x4c00_0809;
/// `MPI_UINT64_T`.
pub const MPI_UINT64_T: MpiDatatype = 0x4c00_080a;
/// `MPI_FLOAT`.
pub const MPI_FLOAT: MpiDatatype = 0x4c00_040b;
/// `MPI_DOUBLE`.
pub const MPI_DOUBLE: MpiDatatype = 0x4c00_080c;
/// Derived datatypes: `DYN_TYPE_BASE | slot`.
pub const DYN_TYPE_BASE: MpiDatatype = 0x8c00_0000u32 as i32;

/// All predefined (non-null) datatypes.
pub const PREDEFINED_DATATYPES: [MpiDatatype; 12] = [
    MPI_BYTE,
    MPI_CHAR,
    MPI_INT8_T,
    MPI_UINT8_T,
    MPI_INT16_T,
    MPI_UINT16_T,
    MPI_INT,
    MPI_UINT32_T,
    MPI_INT64_T,
    MPI_UINT64_T,
    MPI_FLOAT,
    MPI_DOUBLE,
];

/// Element size encoded in a predefined datatype handle (MPICH packs the
/// size into bits 8..16 of the handle).
pub const fn builtin_type_size(dt: MpiDatatype) -> usize {
    ((dt >> 8) & 0xFF) as usize
}

// ---------------------------------------------------------------------
// Predefined reduction ops (real MPICH values: 0x58000001..)
// ---------------------------------------------------------------------

/// `MPI_OP_NULL`.
pub const MPI_OP_NULL: MpiOp = 0x1800_0000;
/// `MPI_MAX`.
pub const MPI_MAX: MpiOp = 0x5800_0001;
/// `MPI_MIN`.
pub const MPI_MIN: MpiOp = 0x5800_0002;
/// `MPI_SUM`.
pub const MPI_SUM: MpiOp = 0x5800_0003;
/// `MPI_PROD`.
pub const MPI_PROD: MpiOp = 0x5800_0004;
/// `MPI_LAND`.
pub const MPI_LAND: MpiOp = 0x5800_0005;
/// `MPI_BAND`.
pub const MPI_BAND: MpiOp = 0x5800_0006;
/// `MPI_LOR`.
pub const MPI_LOR: MpiOp = 0x5800_0007;
/// `MPI_BOR`.
pub const MPI_BOR: MpiOp = 0x5800_0008;
/// `MPI_LXOR`.
pub const MPI_LXOR: MpiOp = 0x5800_0009;
/// `MPI_BXOR`.
pub const MPI_BXOR: MpiOp = 0x5800_000a;
/// User-defined ops: `DYN_OP_BASE | slot`.
pub const DYN_OP_BASE: MpiOp = 0x9800_0000u32 as i32;

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// `MPI_REQUEST_NULL`.
pub const MPI_REQUEST_NULL: MpiRequest = 0x2c00_0000;
/// Dynamic requests: `DYN_REQUEST_BASE | slot` (slot ≥ 1).
pub const DYN_REQUEST_BASE: MpiRequest = 0x2c00_0000;

// ---------------------------------------------------------------------
// Wildcards & sentinels (MPICH values — differ from Open MPI's!)
// ---------------------------------------------------------------------

/// `MPI_ANY_SOURCE` (MPICH: −2; Open MPI uses −1).
pub const MPI_ANY_SOURCE: i32 = -2;
/// `MPI_ANY_TAG` (MPICH: −1).
pub const MPI_ANY_TAG: i32 = -1;
/// `MPI_PROC_NULL` (MPICH: −1; Open MPI uses −2).
pub const MPI_PROC_NULL: i32 = -1;
/// `MPI_ROOT`.
pub const MPI_ROOT: i32 = -3;
/// `MPI_UNDEFINED`.
pub const MPI_UNDEFINED: i32 = -32766;
/// Largest supported tag.
pub const MPI_TAG_UB: i32 = 0x3FFF_FFFF;

// ---------------------------------------------------------------------
// Status (MPICH field layout)
// ---------------------------------------------------------------------

/// `MPI_Status`, MPICH layout: the transfer count is split across the two
/// leading words (`count_lo`, and the low bits of `count_hi_and_cancelled`),
/// followed by the public fields.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MpiStatus {
    /// Low 32 bits of the byte count.
    pub count_lo: i32,
    /// Bits 0..31 of this word: high bits of the count; bit 31: cancelled.
    pub count_hi_and_cancelled: i32,
    /// `status.MPI_SOURCE`.
    pub mpi_source: i32,
    /// `status.MPI_TAG`.
    pub mpi_tag: i32,
    /// `status.MPI_ERROR`.
    pub mpi_error: i32,
}

impl MpiStatus {
    /// Build a status for a completed receive.
    pub fn for_receive(source: i32, tag: i32, count_bytes: u64) -> MpiStatus {
        MpiStatus {
            count_lo: (count_bytes & 0xFFFF_FFFF) as i32,
            count_hi_and_cancelled: ((count_bytes >> 32) & 0x7FFF_FFFF) as i32,
            mpi_source: source,
            mpi_tag: tag,
            mpi_error: MPI_SUCCESS,
        }
    }

    /// Total byte count (`MPI_Get_count` precursor).
    pub fn count_bytes(&self) -> u64 {
        (self.count_lo as u32 as u64)
            | (((self.count_hi_and_cancelled as u32 as u64) & 0x7FFF_FFFF) << 32)
    }

    /// Whether the operation was cancelled.
    pub fn is_cancelled(&self) -> bool {
        (self.count_hi_and_cancelled as u32) & 0x8000_0000 != 0
    }
}

// ---------------------------------------------------------------------
// Error codes (MPICH's low consecutive integers)
// ---------------------------------------------------------------------

/// `MPI_SUCCESS`.
pub const MPI_SUCCESS: i32 = 0;
/// `MPI_ERR_BUFFER`.
pub const MPI_ERR_BUFFER: i32 = 1;
/// `MPI_ERR_COUNT`.
pub const MPI_ERR_COUNT: i32 = 2;
/// `MPI_ERR_TYPE`.
pub const MPI_ERR_TYPE: i32 = 3;
/// `MPI_ERR_TAG`.
pub const MPI_ERR_TAG: i32 = 4;
/// `MPI_ERR_COMM`.
pub const MPI_ERR_COMM: i32 = 5;
/// `MPI_ERR_RANK`.
pub const MPI_ERR_RANK: i32 = 6;
/// `MPI_ERR_ROOT`.
pub const MPI_ERR_ROOT: i32 = 7;
/// `MPI_ERR_GROUP`.
pub const MPI_ERR_GROUP: i32 = 8;
/// `MPI_ERR_OP`.
pub const MPI_ERR_OP: i32 = 9;
/// `MPI_ERR_REQUEST`.
pub const MPI_ERR_REQUEST: i32 = 19;
/// `MPI_ERR_TRUNCATE`.
pub const MPI_ERR_TRUNCATE: i32 = 14;
/// `MPI_ERR_ARG`.
pub const MPI_ERR_ARG: i32 = 12;
/// `MPI_ERR_OTHER`.
pub const MPI_ERR_OTHER: i32 = 15;
/// `MPI_ERR_INTERN`.
pub const MPI_ERR_INTERN: i32 = 16;
/// Process failed (FT extension).
pub const MPI_ERR_PROC_FAILED: i32 = 108;
/// Substrate shut down underneath the library.
pub const MPI_ERR_SHUTDOWN: i32 = 109;
/// Library finalized.
pub const MPI_ERR_FINALIZED: i32 = 110;

/// Result alias for native MPICH-flavour calls: the error is a native code.
pub type MpichResult<T> = Result<T, i32>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_sizes_are_packed_in_handles() {
        assert_eq!(builtin_type_size(MPI_BYTE), 1);
        assert_eq!(builtin_type_size(MPI_CHAR), 1);
        assert_eq!(builtin_type_size(MPI_INT16_T), 2);
        assert_eq!(builtin_type_size(MPI_INT), 4);
        assert_eq!(builtin_type_size(MPI_FLOAT), 4);
        assert_eq!(builtin_type_size(MPI_DOUBLE), 8);
        assert_eq!(builtin_type_size(MPI_INT64_T), 8);
    }

    #[test]
    fn predefined_handles_are_distinct() {
        let mut all: Vec<i32> = PREDEFINED_DATATYPES.to_vec();
        all.extend([MPI_COMM_WORLD, MPI_COMM_SELF, MPI_COMM_NULL]);
        all.extend([
            MPI_SUM, MPI_PROD, MPI_MIN, MPI_MAX, MPI_LAND, MPI_LOR, MPI_LXOR,
        ]);
        all.extend([MPI_BAND, MPI_BOR, MPI_BXOR, MPI_OP_NULL, MPI_REQUEST_NULL]);
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            n,
            "native handle values must be pairwise distinct"
        );
    }

    #[test]
    fn status_count_round_trips_across_split_words() {
        let small = MpiStatus::for_receive(3, 9, 1234);
        assert_eq!(small.count_bytes(), 1234);
        assert_eq!(small.mpi_source, 3);
        assert_eq!(small.mpi_tag, 9);
        assert!(!small.is_cancelled());
        // A count needing the high word.
        let big = MpiStatus::for_receive(0, 0, (7u64 << 32) | 42);
        assert_eq!(big.count_bytes(), (7u64 << 32) | 42);
    }

    #[test]
    fn mpich_constants_differ_from_standard_abi() {
        // The whole point of the shim: MPICH's wildcards are NOT the
        // standard ABI's values.
        assert_ne!(MPI_ANY_SOURCE, mpi_abi_any_source());
        fn mpi_abi_any_source() -> i32 {
            // Inline to avoid a dev-dependency cycle: the standard value.
            -1
        }
    }
}
