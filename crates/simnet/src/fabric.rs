//! The fabric: rank-to-rank FIFO mailboxes plus fail-stop fault injection.
//!
//! One `Mutex<VecDeque>` + `Condvar` mailbox per destination rank carries
//! [`Envelope`]s. Per (src, dst) pair, delivery order equals send order
//! (each sender pushes under the destination's mailbox lock), which is
//! exactly the non-overtaking guarantee MPI point-to-point semantics
//! require from the transport.
//!
//! The fabric is **event-driven**: blocked receivers sleep on their
//! mailbox's condition variable and are woken by the arrival of a message,
//! by [`Fabric::shutdown`], or by [`Fabric::fail_rank`] — there is no
//! polling interval, so failure-detection and shutdown latency is one
//! condvar wakeup, not a timer tick. Writers that flip the shutdown/failed
//! flags briefly acquire each mailbox lock before notifying, so a receiver
//! that checked the flags and is about to sleep cannot miss the wakeup.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use bytes::Bytes;

use crate::cluster::ClusterSpec;
use crate::envelope::Envelope;
use crate::error::{SimError, SimResult};
use crate::rank::RankCtx;

/// One rank's inbox: the arrival queue and the condvar blocked receivers
/// sleep on.
#[derive(Default)]
struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    arrived: Condvar,
}

impl Mailbox {
    /// Wake every receiver blocked on this mailbox. Acquiring (and
    /// immediately releasing) the queue lock first closes the race with a
    /// receiver that has checked the control flags and is entering
    /// `Condvar::wait`: the notifier either runs before the receiver's
    /// flag check (flags are visible) or after the wait released the lock
    /// (the notification is delivered).
    fn wake_all(&self) {
        drop(self.queue.lock().expect("mailbox lock poisoned"));
        self.arrived.notify_all();
    }
}

struct Shared {
    nranks: usize,
    failed: Vec<AtomicBool>,
    /// Number of ranks currently marked failed. Blocked receivers check
    /// this single counter instead of scanning the per-rank flags; the
    /// O(nranks) scan happens only when a failure actually exists.
    failed_count: AtomicUsize,
    shutdown: AtomicBool,
    /// When true, blocked receivers report peer failures as errors
    /// (fault-tolerant mode); when false they keep waiting, like a
    /// non-fault-tolerant MPI would.
    failure_detection: AtomicBool,
    mailboxes: Vec<Mailbox>,
}

/// Handle to the whole fabric: constructs endpoints, injects failures,
/// forces shutdown.
#[derive(Clone)]
pub struct Fabric {
    shared: Arc<Shared>,
}

impl Fabric {
    /// Build a fabric for `spec` and hand out one endpoint per rank.
    pub fn new(spec: &ClusterSpec) -> (Fabric, Vec<Endpoint>) {
        let nranks = spec.nranks();
        let shared = Arc::new(Shared {
            nranks,
            failed: (0..nranks).map(|_| AtomicBool::new(false)).collect(),
            failed_count: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            failure_detection: AtomicBool::new(false),
            mailboxes: (0..nranks).map(|_| Mailbox::default()).collect(),
        });
        let fabric = Fabric { shared };
        let endpoints = (0..nranks)
            .map(|rank| Endpoint {
                rank,
                fabric: fabric.clone(),
                next_seq: std::cell::Cell::new(0),
            })
            .collect();
        (fabric, endpoints)
    }

    /// Number of ranks on the fabric.
    pub fn nranks(&self) -> usize {
        self.shared.nranks
    }

    /// Mark a rank as failed (fail-stop). Subsequent sends to it error with
    /// [`SimError::PeerFailed`]; blocked receivers are woken immediately
    /// and learn of it if failure detection is enabled.
    pub fn fail_rank(&self, rank: usize) {
        if rank >= self.shared.nranks {
            return;
        }
        if !self.shared.failed[rank].swap(true, Ordering::SeqCst) {
            self.shared.failed_count.fetch_add(1, Ordering::SeqCst);
        }
        for mb in &self.shared.mailboxes {
            mb.wake_all();
        }
    }

    /// Whether a rank has been marked failed.
    pub fn is_failed(&self, rank: usize) -> bool {
        rank < self.shared.nranks && self.shared.failed[rank].load(Ordering::SeqCst)
    }

    /// Ranks currently marked failed.
    pub fn failed_ranks(&self) -> Vec<usize> {
        if self.shared.failed_count.load(Ordering::SeqCst) == 0 {
            return Vec::new();
        }
        (0..self.shared.nranks)
            .filter(|&r| self.is_failed(r))
            .collect()
    }

    /// Enable fault-tolerant semantics: blocked receives return
    /// [`SimError::PeerFailed`] when any rank has failed, instead of
    /// waiting forever like a non-fault-tolerant MPI.
    pub fn enable_failure_detection(&self) {
        self.shared.failure_detection.store(true, Ordering::SeqCst);
        for mb in &self.shared.mailboxes {
            mb.wake_all();
        }
    }

    /// Tear the fabric down: every blocked receive returns
    /// [`SimError::Disconnected`] immediately. Used when a rank errors or
    /// panics so the remaining ranks unwind instead of deadlocking.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for mb in &self.shared.mailboxes {
            mb.wake_all();
        }
    }

    /// Whether the fabric has been shut down.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// A rank's attachment point to the fabric.
pub struct Endpoint {
    rank: usize,
    fabric: Fabric,
    next_seq: std::cell::Cell<u64>,
}

impl Endpoint {
    /// This endpoint's rank id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The fabric this endpoint belongs to.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Why a blocked receiver must stop waiting, if it must. Message
    /// delivery takes precedence: callers check the queue first.
    fn unblock_reason(&self) -> Option<SimError> {
        let shared = &self.fabric.shared;
        if shared.shutdown.load(Ordering::SeqCst) {
            return Some(SimError::Disconnected);
        }
        if shared.failed[self.rank].load(Ordering::SeqCst) {
            return Some(SimError::SelfFailed);
        }
        if shared.failure_detection.load(Ordering::SeqCst)
            && shared.failed_count.load(Ordering::SeqCst) > 0
        {
            if let Some(r) = (0..shared.nranks).find(|&r| shared.failed[r].load(Ordering::SeqCst)) {
                return Some(SimError::PeerFailed { rank: r });
            }
        }
        None
    }

    /// Send a raw envelope. The sender's clock first advances by the
    /// message's **serialization time** (LogGP's per-byte gap: a NIC or
    /// shared-memory copy engine pushes bytes out one at a time, so
    /// back-to-back sends serialize on the sender — this is what makes a
    /// 48-peer posted all-to-all pay for its volume). The message then
    /// departs at the sender's clock and the *receiver* accounts the wire
    /// latency on arrival (see [`RankCtx::arrival_time`]). The caller (a
    /// vendor MPI library) is responsible for charging its own
    /// per-message CPU overhead before calling this.
    pub fn send_raw(
        &self,
        dst: usize,
        ctx_id: u64,
        tag: i32,
        payload: Bytes,
        ctx: &RankCtx,
    ) -> SimResult<()> {
        let shared = &self.fabric.shared;
        if dst >= shared.nranks {
            return Err(SimError::NoSuchRank {
                rank: dst,
                nranks: shared.nranks,
            });
        }
        if shared.failed[self.rank].load(Ordering::SeqCst) {
            return Err(SimError::SelfFailed);
        }
        if shared.failed[dst].load(Ordering::SeqCst) {
            return Err(SimError::PeerFailed { rank: dst });
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return Err(SimError::Disconnected);
        }
        let seq = self.next_seq.get();
        self.next_seq.set(seq + 1);
        let wire_bytes = payload.len() + ctx.spec().header_bytes;
        let link = ctx.spec().link_between(self.rank, dst);
        ctx.advance(link.serialize_time(wire_bytes));
        let env = Envelope {
            src: self.rank,
            dst,
            ctx_id,
            tag,
            payload,
            depart: ctx.now(),
            wire_bytes,
            seq,
        };
        ctx.count_send(env.len());
        let mailbox = &shared.mailboxes[dst];
        mailbox
            .queue
            .lock()
            .expect("mailbox lock poisoned")
            .push_back(env);
        mailbox.arrived.notify_one();
        Ok(())
    }

    /// Non-blocking poll for the next raw envelope, in arrival order.
    /// No virtual-time accounting happens here; the caller's matching engine
    /// decides when and how to charge time (see [`RankCtx::arrival_time`]).
    pub fn poll_raw(&self) -> SimResult<Option<Envelope>> {
        let mailbox = &self.fabric.shared.mailboxes[self.rank];
        Ok(mailbox
            .queue
            .lock()
            .expect("mailbox lock poisoned")
            .pop_front())
    }

    /// Batch-drain every envelope currently queued into `into`, acquiring
    /// the mailbox lock exactly once. Returns how many were appended.
    ///
    /// This is the progress engines' fast path: one lock round-trip per
    /// progress call instead of one per message.
    pub fn drain_raw_into(&self, into: &mut Vec<Envelope>) -> SimResult<usize> {
        let mailbox = &self.fabric.shared.mailboxes[self.rank];
        let mut queue = mailbox.queue.lock().expect("mailbox lock poisoned");
        let n = queue.len();
        into.extend(queue.drain(..));
        Ok(n)
    }

    /// Blocking pull of the next raw envelope (no time accounting).
    ///
    /// Sleeps on the mailbox condvar — no polling. Unblocks with an error
    /// if the fabric shuts down, or — when failure detection is enabled —
    /// if any rank has been marked failed; queued messages are always
    /// delivered before an unblock error is reported.
    pub fn recv_raw(&self) -> SimResult<Envelope> {
        let mailbox = &self.fabric.shared.mailboxes[self.rank];
        let mut queue = mailbox.queue.lock().expect("mailbox lock poisoned");
        loop {
            if let Some(env) = queue.pop_front() {
                return Ok(env);
            }
            if let Some(err) = self.unblock_reason() {
                return Err(err);
            }
            queue = mailbox.arrived.wait(queue).expect("mailbox lock poisoned");
        }
    }

    /// Blocking receive **with** arrival-time accounting: advances the
    /// rank's clock to `max(now, arrival)`. Convenience for substrate tests
    /// and simple protocols; vendor libraries use [`Endpoint::recv_raw`]
    /// plus their own matching.
    pub fn recv_raw_blocking(&self, ctx: &RankCtx) -> SimResult<Envelope> {
        let env = self.recv_raw()?;
        let arrival = ctx.arrival_time(&env);
        ctx.advance_to(arrival);
        ctx.count_recv(env.len());
        Ok(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::noise::NoiseModel;
    use crate::rank::RankCtx;
    use std::sync::Arc as StdArc;
    use std::time::Duration;

    fn two_rank_setup() -> (Fabric, Vec<Endpoint>, StdArc<ClusterSpec>) {
        let spec = StdArc::new(ClusterSpec::builder().nodes(1).ranks_per_node(2).build());
        let (fabric, eps) = Fabric::new(&spec);
        (fabric, eps, spec)
    }

    fn ctx_for(rank: usize, spec: &StdArc<ClusterSpec>, ep: Endpoint) -> RankCtx {
        RankCtx::new(
            rank,
            spec.clone(),
            ep,
            NoiseModel::disabled().stream_for_rank(rank),
        )
    }

    #[test]
    fn send_and_receive_round_trip() {
        let (_fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let ctx1 = ctx_for(1, &spec, ep1);
        ctx0.endpoint()
            .send_raw(1, 42, 7, Bytes::from_static(b"hello"), &ctx0)
            .unwrap();
        let env = ctx1.endpoint().recv_raw_blocking(&ctx1).unwrap();
        assert_eq!(env.src, 0);
        assert_eq!(env.ctx_id, 42);
        assert_eq!(env.tag, 7);
        assert_eq!(&env.payload[..], b"hello");
        // Receiver clock advanced by at least the link alpha.
        assert!(ctx1.now() >= spec.link_between(0, 1).alpha);
    }

    #[test]
    fn fifo_per_pair() {
        let (_fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let ctx1 = ctx_for(1, &spec, ep1);
        for i in 0..16u8 {
            ctx0.endpoint()
                .send_raw(1, 0, 0, Bytes::from(vec![i]), &ctx0)
                .unwrap();
        }
        for i in 0..16u8 {
            let env = ctx1.endpoint().recv_raw_blocking(&ctx1).unwrap();
            assert_eq!(env.payload[0], i);
            assert_eq!(env.seq, i as u64);
        }
    }

    #[test]
    fn send_to_out_of_range_rank_errors() {
        let (_fabric, mut eps, spec) = two_rank_setup();
        let _ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let err = ctx0
            .endpoint()
            .send_raw(9, 0, 0, Bytes::new(), &ctx0)
            .unwrap_err();
        assert_eq!(err, SimError::NoSuchRank { rank: 9, nranks: 2 });
    }

    #[test]
    fn send_to_failed_rank_errors() {
        let (fabric, mut eps, spec) = two_rank_setup();
        let _ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        fabric.fail_rank(1);
        assert!(fabric.is_failed(1));
        assert_eq!(fabric.failed_ranks(), vec![1]);
        let err = ctx0
            .endpoint()
            .send_raw(1, 0, 0, Bytes::new(), &ctx0)
            .unwrap_err();
        assert_eq!(err, SimError::PeerFailed { rank: 1 });
    }

    #[test]
    fn blocked_recv_unblocks_on_shutdown() {
        let (fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let _ep0 = eps.pop().unwrap();
        let ctx1 = ctx_for(1, &spec, ep1);
        let handle = std::thread::spawn({
            let fabric = fabric.clone();
            move || {
                std::thread::sleep(Duration::from_millis(5));
                fabric.shutdown();
            }
        });
        let err = ctx1.endpoint().recv_raw().unwrap_err();
        assert_eq!(err, SimError::Disconnected);
        handle.join().unwrap();
    }

    #[test]
    fn blocked_recv_sees_peer_failure_when_detection_enabled() {
        let (fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let _ep0 = eps.pop().unwrap();
        let ctx1 = ctx_for(1, &spec, ep1);
        fabric.enable_failure_detection();
        let handle = std::thread::spawn({
            let fabric = fabric.clone();
            move || {
                std::thread::sleep(Duration::from_millis(5));
                fabric.fail_rank(0);
            }
        });
        let err = ctx1.endpoint().recv_raw().unwrap_err();
        assert_eq!(err, SimError::PeerFailed { rank: 0 });
        handle.join().unwrap();
    }

    #[test]
    fn queued_messages_delivered_before_shutdown_error() {
        let (fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let ctx1 = ctx_for(1, &spec, ep1);
        ctx0.endpoint()
            .send_raw(1, 0, 0, Bytes::from_static(b"last"), &ctx0)
            .unwrap();
        fabric.shutdown();
        // The queued message still comes out; only then does the receiver
        // observe the shutdown.
        let env = ctx1.endpoint().recv_raw().unwrap();
        assert_eq!(&env.payload[..], b"last");
        assert_eq!(
            ctx1.endpoint().recv_raw().unwrap_err(),
            SimError::Disconnected
        );
    }

    #[test]
    fn poll_raw_is_nonblocking() {
        let (_fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let ctx1 = ctx_for(1, &spec, ep1);
        assert!(ctx1.endpoint().poll_raw().unwrap().is_none());
        ctx0.endpoint()
            .send_raw(1, 0, 0, Bytes::from_static(b"x"), &ctx0)
            .unwrap();
        // Mailbox push is synchronous, so the message is immediately visible.
        assert!(ctx1.endpoint().poll_raw().unwrap().is_some());
    }

    #[test]
    fn drain_collects_everything_in_order() {
        let (_fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let ctx1 = ctx_for(1, &spec, ep1);
        for i in 0..10u8 {
            ctx0.endpoint()
                .send_raw(1, 0, i as i32, Bytes::from(vec![i]), &ctx0)
                .unwrap();
        }
        let mut buf = Vec::new();
        let n = ctx1.endpoint().drain_raw_into(&mut buf).unwrap();
        assert_eq!(n, 10);
        assert_eq!(buf.len(), 10);
        for (i, env) in buf.iter().enumerate() {
            assert_eq!(env.payload[0] as usize, i);
        }
        // Queue is now empty.
        assert_eq!(ctx1.endpoint().drain_raw_into(&mut buf).unwrap(), 0);
        assert!(ctx1.endpoint().poll_raw().unwrap().is_none());
    }

    #[test]
    fn small_payloads_ride_inline() {
        // The ≤64 B fast path: the payload handed to the receiver is the
        // inline representation — no heap allocation was retained.
        let (_fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let ctx1 = ctx_for(1, &spec, ep1);
        ctx0.endpoint()
            .send_raw(1, 0, 0, Bytes::copy_from_slice(&[9u8; 64]), &ctx0)
            .unwrap();
        let env = ctx1.endpoint().recv_raw_blocking(&ctx1).unwrap();
        assert!(env.payload.is_inline());
        assert_eq!(env.payload.len(), 64);
    }
}
