//! The remote second tier of the delta-checkpoint store: sealed-epoch
//! shipping to object storage.
//!
//! A node-local delta chain survives process failures, but the disk it
//! lives on is itself a single point of failure — and the quarantine path
//! (`epoch_NNNNNN.bad`) loses state *permanently* when the only copy of a
//! manifest rots. This module adds redundancy one layer out:
//!
//! * [`ObjectTier`] — a minimal put/get/list/delete interface over opaque
//!   sealed objects, deliberately shaped like an object store (S3-style:
//!   whole-object writes, no partial updates, keys not paths).
//! * [`FsTier`] — the in-tree implementation, modelling object storage on
//!   a filesystem: every `put` lands in a staging file named by a content
//!   hash and is atomically renamed into place, so a torn local write can
//!   never be observed as a committed object.
//! * [`FlakyTier`] — a fault-injecting wrapper for tests: scripted upload
//!   errors, torn writes (the object lands corrupted while the put
//!   reports success), and held uploads (a put blocks until the test
//!   releases it — the "slow tier" that tries to race retention GC).
//! * `TierRuntime` (crate-internal) — the background shipper thread,
//!   mirroring `StoreWriter`'s queue/sticky-error design: each locally
//!   committed epoch is queued, its `blocks.bin` and `manifest.bin` are
//!   uploaded with read-back CRC verification and exponential-backoff
//!   retries, and a small checksummed **seal** object is written last.
//!   An epoch is *durable in the tier* only once its seal is up; the
//!   store's retention GC never deletes a local epoch that is not.
//! * [`Scrubber`] — the healing pass over `.bad` quarantine directories:
//!   re-fetch the epoch from the tier, verify seal CRCs and manifest
//!   decode, and atomically reinstate the epoch in the local chain.
//!
//! The tier stores exactly the vendor-neutral on-disk epoch format, so a
//! chain hydrated from the tier restores under either MPI engine
//! bit-identically — the paper's cross-vendor claim extended across the
//! storage boundary.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use simnet::telemetry::{EventKind, Telemetry};

use crate::codec::{crc32, fnv1a, CodecError, Reader, Writer};
use crate::store::{DeltaStore, ScrubReport, StoreError};

/// Magic prefix of a seal object ("TIERSEAL", one byte short).
const SEAL_MAGIC: u64 = 0x5449_4552_5345_414C;
/// Seal format version.
const SEAL_V1: u64 = 1;

/// Why a tier operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TierError {
    /// An I/O-level failure talking to the tier.
    Io {
        /// The operation ("put", "get", "list", "delete").
        op: &'static str,
        /// The object key involved.
        key: String,
        /// The underlying error, stringified (keeps the error cloneable).
        msg: String,
    },
    /// The requested object does not exist.
    NotFound {
        /// The missing key.
        key: String,
    },
    /// An object exists but its content failed verification (length or
    /// CRC mismatch against its seal, or an undecodable seal/manifest).
    Corrupt {
        /// The offending key.
        key: String,
        /// What disagreed.
        detail: String,
    },
    /// A key is not a valid tier key (absolute, empty, or escaping).
    BadKey {
        /// The rejected key.
        key: String,
    },
    /// Retrying the operation exceeded the configured wall-clock
    /// deadline ([`TierConfig::deadline`]) before it could succeed.
    Timeout {
        /// The operation ("put", "get").
        op: &'static str,
        /// The object key involved.
        key: String,
    },
}

impl fmt::Display for TierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TierError::Io { op, key, msg } => write!(f, "tier {op} {key}: {msg}"),
            TierError::NotFound { key } => write!(f, "tier object {key} not found"),
            TierError::Corrupt { key, detail } => write!(f, "tier object {key} corrupt: {detail}"),
            TierError::BadKey { key } => write!(f, "invalid tier key {key:?}"),
            TierError::Timeout { op, key } => {
                write!(f, "tier {op} {key}: retry deadline exceeded")
            }
        }
    }
}

impl std::error::Error for TierError {}

/// A second storage tier holding opaque sealed objects.
///
/// The interface is deliberately the lowest common denominator of object
/// stores: whole-object put/get, flat keys with `/` as a naming (not
/// filesystem) convention, idempotent delete, prefix listing. Everything
/// the store ships through it is self-verifying (seal CRCs + the
/// manifest's own checksum trailer), so a tier implementation does not
/// need read-after-write consistency stronger than "a completed put is
/// eventually observable".
pub trait ObjectTier: Send + Sync {
    /// Store `data` under `key`, replacing any existing object.
    fn put(&self, key: &str, data: &[u8]) -> Result<(), TierError>;
    /// Fetch the object at `key`.
    fn get(&self, key: &str) -> Result<Vec<u8>, TierError>;
    /// List every key starting with `prefix` (pass `""` for all keys).
    fn list(&self, prefix: &str) -> Result<Vec<String>, TierError>;
    /// Delete the object at `key`; deleting a missing object succeeds.
    fn delete(&self, key: &str) -> Result<(), TierError>;
}

/// Tunables of the tier shipper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConfig {
    /// Attempts per object upload before the shipper error goes sticky
    /// (each attempt is a put followed by a read-back CRC verification).
    pub max_attempts: u32,
    /// Base backoff between attempts; doubles per retry.
    pub backoff: Duration,
    /// Jitter applied to every backoff step, in permille of the step
    /// (`250` = each sleep is the step ± up to 25%). Derived
    /// deterministically from the key and attempt number, so retries are
    /// de-synchronized across objects without making tests flaky.
    pub jitter_permille: u32,
    /// Cap on the total retry wall-clock per object: once the next sleep
    /// would cross the deadline, the retry loop surfaces
    /// [`TierError::Timeout`] instead of waiting on. `None` = retries are
    /// bounded only by `max_attempts`.
    pub deadline: Option<Duration>,
}

impl Default for TierConfig {
    fn default() -> TierConfig {
        TierConfig {
            max_attempts: 4,
            backoff: Duration::from_millis(10),
            jitter_permille: 250,
            deadline: None,
        }
    }
}

/// What the shipper has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Epochs whose seal is durably in the tier.
    pub epochs_shipped: u64,
    /// Bytes uploaded for those epochs (blocks + manifest + seal — only
    /// the epoch's *new* blocks ship, so this is the dedup-at-tier
    /// number).
    pub bytes_shipped: u64,
    /// Upload attempts beyond the first, across all objects.
    pub put_retries: u64,
    /// Epochs abandoned after `max_attempts` (the sticky error).
    pub ship_failures: u64,
}

// ---------------------------------------------------------------------------
// Object keys and the seal record
// ---------------------------------------------------------------------------

/// Tier keys of one epoch's objects under a namespace prefix:
/// `(blocks, manifest, seal)`. The prefix is `""` for the legacy
/// single-tenant layout, or `tenant/<id>/` for one tenant of a shared
/// tier (see [`tenant_namespace`]).
pub(crate) fn epoch_keys(ns: &str, epoch: u64) -> (String, String, String) {
    (
        format!("{ns}epoch_{epoch:06}/blocks.bin"),
        format!("{ns}epoch_{epoch:06}/manifest.bin"),
        format!("{ns}epoch_{epoch:06}/seal"),
    )
}

/// The tier key namespace of one tenant: `tenant/<id>/`. Rejects ids
/// that are not a single legal key segment (empty, containing `/` or
/// `\`, `.`, `..`, or the reserved `.inflight`), so a tenant id can
/// never escape its namespace or collide with another tenant's.
pub fn tenant_namespace(id: &str) -> Result<String, TierError> {
    let bad = id.is_empty()
        || id == "."
        || id == ".."
        || id == ".inflight"
        || id.contains('/')
        || id.contains('\\');
    if bad {
        return Err(TierError::BadKey {
            key: format!("tenant/{id}/"),
        });
    }
    Ok(format!("tenant/{id}/"))
}

/// The seal record: written to the tier *after* an epoch's blocks and
/// manifest, it is the durable commit point of a shipped epoch and
/// carries the lengths and CRCs that hydration verifies downloads
/// against. An epoch without a (decodable) seal is treated as never
/// shipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Seal {
    pub epoch: u64,
    pub blocks_len: u64,
    pub blocks_crc: u32,
    pub manifest_len: u64,
    pub manifest_crc: u32,
}

impl Seal {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(SEAL_MAGIC);
        w.u64(SEAL_V1);
        w.u64(self.epoch);
        w.u64(self.blocks_len);
        w.u32(self.blocks_crc);
        w.u64(self.manifest_len);
        w.u32(self.manifest_crc);
        w.finish()
    }

    pub(crate) fn decode(buf: &[u8]) -> Result<Seal, CodecError> {
        let mut r = Reader::checked(buf)?;
        r.expect_magic(SEAL_MAGIC)?;
        let version = r.u64()?;
        if version != SEAL_V1 {
            return Err(CodecError::BadMagic {
                expected: SEAL_V1,
                found: version,
            });
        }
        Ok(Seal {
            epoch: r.u64()?,
            blocks_len: r.u64()?,
            blocks_crc: r.u32()?,
            manifest_len: r.u64()?,
            manifest_crc: r.u32()?,
        })
    }
}

/// Decode every seal in the tier, keyed by epoch. An undecodable seal
/// counts as "not shipped" (the shipper will re-upload), never as an
/// error: the seal is the commit record, and a torn commit record means
/// the commit did not happen. Seals whose recorded epoch disagrees with
/// their key are skipped the same way.
pub(crate) fn sealed_seals(
    tier: &dyn ObjectTier,
    config: TierConfig,
    ns: &str,
) -> Result<BTreeMap<u64, Seal>, TierError> {
    let mut sealed = BTreeMap::new();
    let prefix = format!("{ns}epoch_");
    for key in tier.list(&prefix)? {
        let Some(rest) = key.strip_prefix(&prefix) else {
            continue;
        };
        let Some(digits) = rest.strip_suffix("/seal") else {
            continue;
        };
        if !digits.chars().all(|c| c.is_ascii_digit()) {
            continue;
        }
        let Ok(epoch) = digits.parse::<u64>() else {
            continue;
        };
        match get_retried(tier, config, &key) {
            Ok(buf) => {
                if let Ok(seal) = Seal::decode(&buf) {
                    if seal.epoch == epoch {
                        sealed.insert(epoch, seal);
                    }
                }
            }
            Err(TierError::NotFound { .. }) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(sealed)
}

/// The epochs with a decodable seal in the tier.
pub(crate) fn sealed_epochs(
    tier: &dyn ObjectTier,
    config: TierConfig,
    ns: &str,
) -> Result<BTreeSet<u64>, TierError> {
    Ok(sealed_seals(tier, config, ns)?.into_keys().collect())
}

/// Fetch one sealed epoch, fully verified: the seal decodes, and both
/// objects match the lengths and CRCs it records. Returns
/// `(blocks, manifest)` bytes ready to install locally. Downloads go
/// through the retrying get path, so transient tier faults heal and a
/// configured deadline bounds the wait.
pub(crate) fn fetch_sealed_epoch(
    tier: &dyn ObjectTier,
    config: TierConfig,
    ns: &str,
    epoch: u64,
) -> Result<(Vec<u8>, Vec<u8>), TierError> {
    let (blocks_key, manifest_key, seal_key) = epoch_keys(ns, epoch);
    let seal_buf = get_retried(tier, config, &seal_key)?;
    let seal = Seal::decode(&seal_buf).map_err(|e| TierError::Corrupt {
        key: seal_key.clone(),
        detail: format!("seal does not decode: {e}"),
    })?;
    if seal.epoch != epoch {
        return Err(TierError::Corrupt {
            key: seal_key,
            detail: format!("seal names epoch {}, key names {epoch}", seal.epoch),
        });
    }
    let verified = |key: String, want_len: u64, want_crc: u32| -> Result<Vec<u8>, TierError> {
        let buf = get_retried(tier, config, &key)?;
        if buf.len() as u64 != want_len || crc32(&buf) != want_crc {
            return Err(TierError::Corrupt {
                key,
                detail: format!(
                    "got {} bytes (crc {:08x}), seal says {} bytes (crc {:08x})",
                    buf.len(),
                    crc32(&buf),
                    want_len,
                    want_crc
                ),
            });
        }
        Ok(buf)
    };
    let blocks = verified(blocks_key, seal.blocks_len, seal.blocks_crc)?;
    let manifest = verified(manifest_key, seal.manifest_len, seal.manifest_crc)?;
    Ok((blocks, manifest))
}

// ---------------------------------------------------------------------------
// FsTier
// ---------------------------------------------------------------------------

/// A filesystem directory standing in for an object store.
///
/// Writes are atomic the way object stores are: the bytes land in a
/// staging file under `.inflight/` named by a content hash (content
/// addressing keeps concurrent writers of identical objects from
/// clobbering each other's staging), then a single `rename` publishes
/// the object. Readers can therefore never observe a half-written
/// object — exactly the property the store's seal protocol assumes.
pub struct FsTier {
    root: PathBuf,
    stage_seq: AtomicU64,
}

impl FsTier {
    /// Open (or initialize) a tier rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<FsTier, TierError> {
        let root = root.into();
        std::fs::create_dir_all(root.join(".inflight")).map_err(|e| TierError::Io {
            op: "create",
            key: root.display().to_string(),
            msg: e.to_string(),
        })?;
        Ok(FsTier {
            root,
            stage_seq: AtomicU64::new(0),
        })
    }

    /// The tier's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn io(op: &'static str, key: &str, e: std::io::Error) -> TierError {
        TierError::Io {
            op,
            key: key.to_string(),
            msg: e.to_string(),
        }
    }

    /// Map an object key to a path under the root, rejecting keys that
    /// would escape it or collide with the staging area.
    fn key_path(&self, key: &str) -> Result<PathBuf, TierError> {
        let bad = || TierError::BadKey {
            key: key.to_string(),
        };
        if key.is_empty() || key.starts_with('/') || key.ends_with('/') || key.contains('\\') {
            return Err(bad());
        }
        for part in key.split('/') {
            if part.is_empty() || part == "." || part == ".." || part == ".inflight" {
                return Err(bad());
            }
        }
        Ok(self.root.join(key))
    }

    fn walk(&self, dir: &Path, rel: &str, out: &mut Vec<String>) -> Result<(), TierError> {
        let entries = std::fs::read_dir(dir).map_err(|e| Self::io("list", rel, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| Self::io("list", rel, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if rel.is_empty() && name == ".inflight" {
                continue;
            }
            let child_rel = if rel.is_empty() {
                name
            } else {
                format!("{rel}/{name}")
            };
            let path = entry.path();
            if path.is_dir() {
                self.walk(&path, &child_rel, out)?;
            } else {
                out.push(child_rel);
            }
        }
        Ok(())
    }
}

impl ObjectTier for FsTier {
    fn put(&self, key: &str, data: &[u8]) -> Result<(), TierError> {
        use std::io::Write as _;
        let path = self.key_path(key)?;
        // Content-addressed staging name: identical content stages to the
        // same file, distinct content never collides (a per-handle
        // sequence number breaks ties between concurrent distinct puts).
        let stage = self.root.join(".inflight").join(format!(
            "{:016x}_{}_{}",
            fnv1a(data),
            std::process::id(),
            self.stage_seq.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = std::fs::File::create(&stage).map_err(|e| Self::io("put", key, e))?;
            f.write_all(data).map_err(|e| Self::io("put", key, e))?;
            f.sync_all().map_err(|e| Self::io("put", key, e))?;
        }
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| Self::io("put", key, e))?;
        }
        std::fs::rename(&stage, &path).map_err(|e| Self::io("put", key, e))
    }

    fn get(&self, key: &str) -> Result<Vec<u8>, TierError> {
        let path = self.key_path(key)?;
        match std::fs::read(&path) {
            Ok(buf) => Ok(buf),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(TierError::NotFound {
                key: key.to_string(),
            }),
            Err(e) => Err(Self::io("get", key, e)),
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, TierError> {
        let mut out = Vec::new();
        self.walk(&self.root.clone(), "", &mut out)?;
        out.retain(|k| k.starts_with(prefix));
        out.sort_unstable();
        Ok(out)
    }

    fn delete(&self, key: &str) -> Result<(), TierError> {
        let path = self.key_path(key)?;
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(Self::io("delete", key, e)),
        }
    }
}

// ---------------------------------------------------------------------------
// FlakyTier
// ---------------------------------------------------------------------------

/// A scripted fault applied to one `put` call, in script order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutFault {
    /// The upload fails outright (an I/O error).
    Fail,
    /// The upload *reports success* but the stored object is torn: its
    /// last byte is dropped (or a lone garbage byte is stored for empty
    /// objects). Only read-back verification can catch this.
    Torn,
    /// The upload blocks until [`FlakyTier::release`] — the slow tier.
    Hold,
}

/// A scripted fault applied to one `get` call, in script order.
/// Mirrors [`PutFault`] so download/hydration/log-replay retry paths are
/// fault-injectable, not just uploads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GetFault {
    /// The download fails outright (an I/O error).
    Fail,
    /// The download *reports success* but returns torn bytes: the last
    /// byte is dropped (or a lone garbage byte for empty objects). Only
    /// checksum verification downstream can catch this.
    Torn,
    /// The download blocks until [`FlakyTier::release`] — the slow tier.
    Hold,
}

/// A fault-injecting [`ObjectTier`] wrapper for tests.
///
/// Faults come from three sources: a FIFO *script* of [`PutFault`]s
/// consumed one per put, a FIFO script of [`GetFault`]s consumed one per
/// get, and a *hold-all* switch that blocks every put until
/// [`FlakyTier::release`]. Lists and deletes pass straight through to
/// the inner tier.
pub struct FlakyTier {
    inner: Arc<dyn ObjectTier>,
    state: Mutex<FlakyState>,
    cv: Condvar,
}

struct FlakyState {
    script: VecDeque<PutFault>,
    get_script: VecDeque<GetFault>,
    hold_all: bool,
    released: bool,
    puts: u64,
    gets: u64,
    injected: u64,
}

impl FlakyTier {
    /// Wrap `inner` with an empty fault script.
    pub fn new(inner: Arc<dyn ObjectTier>) -> FlakyTier {
        FlakyTier {
            inner,
            state: Mutex::new(FlakyState {
                script: VecDeque::new(),
                get_script: VecDeque::new(),
                hold_all: false,
                released: false,
                puts: 0,
                gets: 0,
                injected: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Append faults to the script; each subsequent `put` consumes one.
    pub fn script_puts(&self, faults: impl IntoIterator<Item = PutFault>) {
        self.state.lock().expect("flaky lock").script.extend(faults);
    }

    /// Append faults to the get script; each subsequent `get` consumes
    /// one.
    pub fn script_gets(&self, faults: impl IntoIterator<Item = GetFault>) {
        self.state
            .lock()
            .expect("flaky lock")
            .get_script
            .extend(faults);
    }

    /// Make every `put` (script aside) block until [`FlakyTier::release`].
    pub fn hold_all(&self) {
        self.state.lock().expect("flaky lock").hold_all = true;
    }

    /// Release every held `put`, current and future.
    pub fn release(&self) {
        let mut st = self.state.lock().expect("flaky lock");
        st.released = true;
        st.hold_all = false;
        self.cv.notify_all();
    }

    /// Total `put` calls observed.
    pub fn puts(&self) -> u64 {
        self.state.lock().expect("flaky lock").puts
    }

    /// Total `get` calls observed.
    pub fn gets(&self) -> u64 {
        self.state.lock().expect("flaky lock").gets
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state.lock().expect("flaky lock").injected
    }
}

impl ObjectTier for FlakyTier {
    fn put(&self, key: &str, data: &[u8]) -> Result<(), TierError> {
        let fault = {
            let mut st = self.state.lock().expect("flaky lock");
            st.puts += 1;
            let fault = st.script.pop_front().or({
                if st.hold_all && !st.released {
                    Some(PutFault::Hold)
                } else {
                    None
                }
            });
            if fault.is_some() {
                st.injected += 1;
            }
            fault
        };
        match fault {
            None => self.inner.put(key, data),
            Some(PutFault::Fail) => Err(TierError::Io {
                op: "put",
                key: key.to_string(),
                msg: "injected upload failure".to_string(),
            }),
            Some(PutFault::Torn) => {
                let torn: &[u8] = if data.is_empty() {
                    &[0xFF]
                } else {
                    &data[..data.len() - 1]
                };
                self.inner.put(key, torn)
            }
            Some(PutFault::Hold) => {
                let mut st = self.state.lock().expect("flaky lock");
                while !st.released {
                    st = self.cv.wait(st).expect("flaky wait");
                }
                drop(st);
                self.inner.put(key, data)
            }
        }
    }

    fn get(&self, key: &str) -> Result<Vec<u8>, TierError> {
        let fault = {
            let mut st = self.state.lock().expect("flaky lock");
            st.gets += 1;
            let fault = st.get_script.pop_front();
            if fault.is_some() {
                st.injected += 1;
            }
            fault
        };
        match fault {
            None => self.inner.get(key),
            Some(GetFault::Fail) => Err(TierError::Io {
                op: "get",
                key: key.to_string(),
                msg: "injected download failure".to_string(),
            }),
            Some(GetFault::Torn) => {
                let mut data = self.inner.get(key)?;
                if data.is_empty() {
                    data.push(0xFF);
                } else {
                    data.pop();
                }
                Ok(data)
            }
            Some(GetFault::Hold) => {
                let mut st = self.state.lock().expect("flaky lock");
                while !st.released {
                    st = self.cv.wait(st).expect("flaky wait");
                }
                drop(st);
                self.inner.get(key)
            }
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, TierError> {
        self.inner.list(prefix)
    }

    fn delete(&self, key: &str) -> Result<(), TierError> {
        self.inner.delete(key)
    }
}

// ---------------------------------------------------------------------------
// MemTier
// ---------------------------------------------------------------------------

/// An in-memory [`ObjectTier`]: a mutex-guarded map standing in for
/// object storage in tests and benches (the replica logs use it where a
/// filesystem directory would add noise without coverage).
#[derive(Default)]
pub struct MemTier {
    objects: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemTier {
    /// An empty tier.
    pub fn new() -> MemTier {
        MemTier::default()
    }
}

fn check_key(key: &str) -> Result<(), TierError> {
    let bad = key.is_empty()
        || key.starts_with('/')
        || key
            .split('/')
            .any(|c| c.is_empty() || c == "." || c == "..");
    if bad {
        return Err(TierError::BadKey {
            key: key.to_string(),
        });
    }
    Ok(())
}

impl ObjectTier for MemTier {
    fn put(&self, key: &str, data: &[u8]) -> Result<(), TierError> {
        check_key(key)?;
        self.objects
            .lock()
            .expect("mem tier lock")
            .insert(key.to_string(), data.to_vec());
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Vec<u8>, TierError> {
        check_key(key)?;
        self.objects
            .lock()
            .expect("mem tier lock")
            .get(key)
            .cloned()
            .ok_or_else(|| TierError::NotFound {
                key: key.to_string(),
            })
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, TierError> {
        Ok(self
            .objects
            .lock()
            .expect("mem tier lock")
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect())
    }

    fn delete(&self, key: &str) -> Result<(), TierError> {
        check_key(key)?;
        self.objects.lock().expect("mem tier lock").remove(key);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The background shipper
// ---------------------------------------------------------------------------

/// One tenant's share of the shipper: its local store directory, its
/// key namespace in the tier, and — crucially — its *own* queue, sticky
/// error, durable set, and stats. A lane whose uploads go sticky stops
/// shipping without touching its neighbors: the error is scoped to the
/// tenant whose tier config is dead, never to the runtime.
struct ShipLane {
    dir: PathBuf,
    ns: String,
    queue: VecDeque<u64>,
    in_flight: bool,
    error: Option<TierError>,
    durable: BTreeSet<u64>,
    stats: TierStats,
    /// Attached flight recorder of this lane's tenant, cloned out by
    /// the shipper thread before uploading.
    telemetry: Option<Arc<Telemetry>>,
}

struct ShipState {
    lanes: Vec<ShipLane>,
    closed: bool,
    /// Round-robin cursor: the lane the next dispatch starts scanning
    /// from, so a chatty tenant cannot starve the others.
    rr: usize,
}

impl ShipState {
    /// Pop the next epoch to ship, fair-share round-robin across lanes,
    /// skipping lanes with a sticky error. Returns
    /// `(lane, epoch, dir, ns, telemetry)`.
    #[allow(clippy::type_complexity)]
    fn next_work(&mut self) -> Option<(usize, u64, PathBuf, String, Option<Arc<Telemetry>>)> {
        let n = self.lanes.len();
        for i in 0..n {
            let idx = (self.rr + i) % n;
            let lane = &mut self.lanes[idx];
            if lane.error.is_some() {
                continue;
            }
            if let Some(epoch) = lane.queue.pop_front() {
                lane.in_flight = true;
                self.rr = (idx + 1) % n;
                return Some((
                    idx,
                    epoch,
                    lane.dir.clone(),
                    lane.ns.clone(),
                    lane.telemetry.clone(),
                ));
            }
        }
        None
    }
}

struct ShipShared {
    state: Mutex<ShipState>,
    cv: Condvar,
}

/// Emit one event on a recorder's tier lane, stamped with its observed
/// virtual-clock high-water mark (the shipper is a wall-clock
/// background thread).
fn emit_tier(tel: &Option<Arc<Telemetry>>, kind: EventKind, a: u64, b: u64, c: u64) {
    if let Some(tel) = tel {
        tel.emit(tel.tier_lane(), kind, tel.observed_now(), a, b, c);
    }
}

/// A cloneable live view of one lane's [`TierStats`], detached from
/// the store that owns the [`TierRuntime`]. Lets a session keep reading
/// shipping statistics after the store has moved into the background
/// writer thread (`StoreWriter::from_store`).
#[derive(Clone)]
pub struct TierStatsHandle {
    shared: Arc<ShipShared>,
    lane: usize,
}

impl TierStatsHandle {
    /// The lane's shipping statistics right now.
    pub fn stats(&self) -> TierStats {
        self.shared.state.lock().expect("shipper lock").lanes[self.lane].stats
    }

    /// Block until every upload queued on this lane so far is durable or
    /// the lane's sticky error is set. Unlike `DeltaStore::tier_flush`
    /// this works after the store has moved into the writer thread —
    /// sessions drain the shipper through it so a telemetry snapshot sees
    /// final shipping statistics instead of racing the background thread.
    pub fn wait_durable(&self) -> Result<(), TierError> {
        let mut st = self.shared.state.lock().expect("shipper lock");
        while (!st.lanes[self.lane].queue.is_empty() || st.lanes[self.lane].in_flight)
            && st.lanes[self.lane].error.is_none()
        {
            st = self.shared.cv.wait(st).expect("shipper wait");
        }
        match &st.lanes[self.lane].error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }
}

impl std::fmt::Debug for TierStatsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TierStatsHandle")
            .field("stats", &self.stats())
            .finish()
    }
}

/// The live tier attachment of one or many [`DeltaStore`]s: the tier
/// handle, its config, and ONE background shipper thread multiplexing
/// sealed-epoch uploads from every registered lane, fair-share
/// round-robin. Mirrors `StoreWriter`: bounded-latency hand-off (each
/// lane's queue holds only epoch numbers; bytes are read on the
/// shipper's thread), sticky first error *per lane*, drain-and-join on
/// drop of the last handle.
pub(crate) struct TierRuntime {
    pub(crate) tier: Arc<dyn ObjectTier>,
    pub(crate) config: TierConfig,
    shared: Arc<ShipShared>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TierRuntime {
    /// Spawn the shipper with no lanes yet; stores register via
    /// [`TierRuntime::add_lane`].
    pub(crate) fn spawn(tier: Arc<dyn ObjectTier>, config: TierConfig) -> TierRuntime {
        let shared = Arc::new(ShipShared {
            state: Mutex::new(ShipState {
                lanes: Vec::new(),
                closed: false,
                rr: 0,
            }),
            cv: Condvar::new(),
        });
        let worker_shared = shared.clone();
        let worker_tier = tier.clone();
        let worker = std::thread::Builder::new()
            .name("ckpt-tier-shipper".into())
            .spawn(move || loop {
                let (lane, epoch, dir, ns, tel) = {
                    let mut st = worker_shared.state.lock().expect("shipper lock");
                    loop {
                        if let Some(work) = st.next_work() {
                            break work;
                        }
                        if st.closed {
                            return;
                        }
                        st = worker_shared.cv.wait(st).expect("shipper wait");
                    }
                };
                emit_tier(&tel, EventKind::TierShip, epoch, 0, 0);
                let mut retries = 0u64;
                let result = ship_epoch(&*worker_tier, config, &dir, &ns, epoch, &mut retries);
                if let Some(tel) = &tel {
                    if retries > 0 {
                        tel.metrics().counter("tier.put_retries").add(retries);
                    }
                    match &result {
                        Ok(bytes) => {
                            emit_tier(
                                &Some(tel.clone()),
                                EventKind::SealDurable,
                                epoch,
                                *bytes,
                                retries,
                            );
                            tel.metrics().histogram("tier.ship_bytes").observe(*bytes);
                        }
                        Err(_) => {
                            // An abandoned upload leaves this epoch's only
                            // durable copy local: an incident worth a dump.
                            emit_tier(&Some(tel.clone()), EventKind::TierFail, epoch, retries, 0);
                            tel.note_incident();
                        }
                    }
                }
                let mut st = worker_shared.state.lock().expect("shipper lock");
                let l = &mut st.lanes[lane];
                l.in_flight = false;
                l.stats.put_retries += retries;
                match result {
                    Ok(bytes) => {
                        l.durable.insert(epoch);
                        l.stats.epochs_shipped += 1;
                        l.stats.bytes_shipped += bytes;
                    }
                    Err(e) => {
                        // Sticky FOR THIS LANE ONLY: its queued epochs stay
                        // undurable (the GC guard translates that into
                        // local retention) while every other lane keeps
                        // shipping.
                        l.stats.ship_failures += 1;
                        l.error.get_or_insert(e);
                    }
                }
                worker_shared.cv.notify_all();
            })
            .expect("spawn tier shipper");
        TierRuntime {
            tier,
            config,
            shared,
            worker: Mutex::new(Some(worker)),
        }
    }

    /// Register one store's lane: its local chain directory, its key
    /// namespace, and the epochs already durably sealed in the tier
    /// (from a reconcile listing). Returns the lane index.
    pub(crate) fn add_lane(&self, dir: PathBuf, ns: String, durable: BTreeSet<u64>) -> usize {
        let mut st = self.shared.state.lock().expect("shipper lock");
        st.lanes.push(ShipLane {
            dir,
            ns,
            queue: VecDeque::new(),
            in_flight: false,
            error: None,
            durable,
            stats: TierStats::default(),
            telemetry: None,
        });
        st.lanes.len() - 1
    }

    /// How many lanes are registered.
    pub(crate) fn lanes(&self) -> usize {
        self.shared.state.lock().expect("shipper lock").lanes.len()
    }

    /// Attach a flight recorder to one lane (first attachment wins).
    /// Ship starts, durable seals, and abandoned uploads flow onto its
    /// tier lane.
    pub(crate) fn attach_telemetry(&self, lane: usize, tel: Arc<Telemetry>) {
        let mut st = self.shared.state.lock().expect("shipper lock");
        let slot = &mut st.lanes[lane].telemetry;
        if slot.is_none() {
            *slot = Some(tel);
        }
    }

    /// Queue one committed epoch for upload on `lane`. Never blocks and
    /// never fails: after the lane's sticky error the enqueue is dropped
    /// (the epoch stays undurable and locally retained).
    pub(crate) fn enqueue(&self, lane: usize, epoch: u64) {
        let mut st = self.shared.state.lock().expect("shipper lock");
        if st.closed || st.lanes[lane].error.is_some() {
            return;
        }
        st.lanes[lane].queue.push_back(epoch);
        self.shared.cv.notify_all();
    }

    /// Wait until every epoch queued on `lane` is durable (or the lane
    /// failed). Other lanes' backlogs do not gate this wait beyond their
    /// fair share of the single shipper thread.
    pub(crate) fn flush(&self, lane: usize) -> Result<(), TierError> {
        let mut st = self.shared.state.lock().expect("shipper lock");
        while (!st.lanes[lane].queue.is_empty() || st.lanes[lane].in_flight)
            && st.lanes[lane].error.is_none()
        {
            st = self.shared.cv.wait(st).expect("shipper wait");
        }
        match &st.lanes[lane].error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Epochs whose seal is durably in the tier, for `lane`.
    pub(crate) fn durable(&self, lane: usize) -> BTreeSet<u64> {
        self.shared.state.lock().expect("shipper lock").lanes[lane]
            .durable
            .clone()
    }

    /// Shipping statistics of `lane` so far.
    pub(crate) fn stats(&self, lane: usize) -> TierStats {
        self.shared.state.lock().expect("shipper lock").lanes[lane].stats
    }

    /// A cloneable handle that keeps reading one lane's live statistics
    /// after the owning store has moved to another thread.
    pub(crate) fn stats_handle(&self, lane: usize) -> TierStatsHandle {
        TierStatsHandle {
            shared: self.shared.clone(),
            lane,
        }
    }

    /// The lane's sticky error, if any.
    pub(crate) fn error(&self, lane: usize) -> Option<TierError> {
        self.shared.state.lock().expect("shipper lock").lanes[lane]
            .error
            .clone()
    }
}

/// A tier shipper shared by many stores: ONE background upload thread
/// multiplexing every tenant's sealed epochs, fair-share round-robin,
/// with per-tenant (per-lane) sticky errors, durable sets, and stats.
/// Clone handles freely; the shipper drains and joins when the last
/// handle (including every attached store) drops.
#[derive(Clone)]
pub struct SharedTier {
    runtime: Arc<TierRuntime>,
}

impl SharedTier {
    /// Spawn a shared shipper over `tier`.
    pub fn new(tier: Arc<dyn ObjectTier>, config: TierConfig) -> SharedTier {
        SharedTier {
            runtime: Arc::new(TierRuntime::spawn(tier, config)),
        }
    }

    /// The underlying object-tier handle.
    pub fn tier(&self) -> Arc<dyn ObjectTier> {
        self.runtime.tier.clone()
    }

    /// The retry/backoff policy every lane ships with.
    pub fn config(&self) -> TierConfig {
        self.runtime.config
    }

    /// How many store lanes have been registered.
    pub fn lanes(&self) -> usize {
        self.runtime.lanes()
    }

    pub(crate) fn runtime(&self) -> &Arc<TierRuntime> {
        &self.runtime
    }
}

impl Drop for TierRuntime {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("shipper lock");
            st.closed = true;
            self.shared.cv.notify_all();
        }
        if let Some(handle) = self.worker.lock().expect("worker lock").take() {
            handle.join().expect("tier shipper thread");
        }
    }
}

/// The sleep before retry `attempt` (1-based): exponential backoff with
/// deterministic jitter. The jitter offset is hashed from the key and
/// attempt number, so concurrent retries on different objects
/// de-synchronize while every test run sleeps identically.
fn backoff_step(config: TierConfig, key: &str, attempt: u32) -> Duration {
    let step = config.backoff * (1 << (attempt - 1).min(10));
    let jitter = config.jitter_permille.min(1000) as u128;
    if jitter == 0 || step.is_zero() {
        return step;
    }
    let span = step.as_nanos() * jitter / 1000;
    if span == 0 {
        return step;
    }
    let h = crate::codec::fnv1a_seeded(attempt as u64, key.as_bytes()) as u128;
    let offset = h % (2 * span + 1); // 0 ..= 2*span
    let nanos = step.as_nanos() + offset - span; // step ± span
    Duration::from_nanos(nanos.min(u64::MAX as u128) as u64)
}

/// Sleep before retry `attempt`, honoring the deadline: if the sleep
/// would cross [`TierConfig::deadline`] (measured from `start`), surface
/// [`TierError::Timeout`] instead of waiting on.
fn backoff_or_timeout(
    config: TierConfig,
    start: std::time::Instant,
    op: &'static str,
    key: &str,
    attempt: u32,
    retries: &mut u64,
) -> Result<(), TierError> {
    let sleep = backoff_step(config, key, attempt);
    if let Some(deadline) = config.deadline {
        if start.elapsed() + sleep > deadline {
            return Err(TierError::Timeout {
                op,
                key: key.to_string(),
            });
        }
    }
    *retries += 1;
    // lint:allow(no-sleep-poll) — jittered retry backoff on the tier upload path, not a poll loop.
    std::thread::sleep(sleep);
    Ok(())
}

/// Upload one object with read-back verification and jittered
/// exponential backoff. A put that "succeeds" but stores bytes whose CRC
/// disagrees (a torn object) counts as a failed attempt and is
/// re-uploaded. A configured deadline bounds the total retry wall-clock
/// ([`TierError::Timeout`]).
pub(crate) fn put_verified(
    tier: &dyn ObjectTier,
    config: TierConfig,
    key: &str,
    data: &[u8],
    retries: &mut u64,
) -> Result<(), TierError> {
    let start = std::time::Instant::now();
    let want = crc32(data);
    let mut last = TierError::Io {
        op: "put",
        key: key.to_string(),
        msg: "no attempts made".to_string(),
    };
    for attempt in 0..config.max_attempts.max(1) {
        if attempt > 0 {
            backoff_or_timeout(config, start, "put", key, attempt, retries)?;
        }
        if let Err(e) = tier.put(key, data) {
            last = e;
            continue;
        }
        match tier.get(key) {
            Ok(back) if back.len() == data.len() && crc32(&back) == want => return Ok(()),
            Ok(back) => {
                last = TierError::Corrupt {
                    key: key.to_string(),
                    detail: format!(
                        "read-back verification failed: stored {} bytes, sent {}",
                        back.len(),
                        data.len()
                    ),
                };
            }
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// Download one object with the same jittered-backoff retry policy as
/// [`put_verified`]: transient I/O failures retry, a missing object does
/// not (absence is an answer, not a fault), and a configured deadline
/// bounds the total wait. Hydration and the replica-log replay read
/// through this, so [`GetFault`] scripts exercise their retry paths.
pub(crate) fn get_retried(
    tier: &dyn ObjectTier,
    config: TierConfig,
    key: &str,
) -> Result<Vec<u8>, TierError> {
    let start = std::time::Instant::now();
    let mut retries = 0u64;
    let mut last = TierError::Io {
        op: "get",
        key: key.to_string(),
        msg: "no attempts made".to_string(),
    };
    for attempt in 0..config.max_attempts.max(1) {
        if attempt > 0 {
            backoff_or_timeout(config, start, "get", key, attempt, &mut retries)?;
        }
        match tier.get(key) {
            Ok(buf) => return Ok(buf),
            Err(e @ TierError::NotFound { .. }) | Err(e @ TierError::BadKey { .. }) => {
                return Err(e)
            }
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// Ship one locally committed epoch: blocks, then manifest, then the
/// seal (the durable commit point). Returns the bytes uploaded.
fn ship_epoch(
    tier: &dyn ObjectTier,
    config: TierConfig,
    dir: &Path,
    ns: &str,
    epoch: u64,
    retries: &mut u64,
) -> Result<u64, TierError> {
    let edir = dir.join(format!("epoch_{epoch:06}"));
    let read_local = |name: &str| -> Result<Vec<u8>, TierError> {
        std::fs::read(edir.join(name)).map_err(|e| TierError::Io {
            op: "read local epoch",
            key: format!("{ns}epoch_{epoch:06}/{name}"),
            msg: e.to_string(),
        })
    };
    let blocks = read_local("blocks.bin")?;
    let manifest = read_local("manifest.bin")?;
    let seal = Seal {
        epoch,
        blocks_len: blocks.len() as u64,
        blocks_crc: crc32(&blocks),
        manifest_len: manifest.len() as u64,
        manifest_crc: crc32(&manifest),
    }
    .encode();
    let (blocks_key, manifest_key, seal_key) = epoch_keys(ns, epoch);
    put_verified(tier, config, &blocks_key, &blocks, retries)?;
    put_verified(tier, config, &manifest_key, &manifest, retries)?;
    put_verified(tier, config, &seal_key, &seal, retries)?;
    Ok((blocks.len() + manifest.len() + seal.len()) as u64)
}

// ---------------------------------------------------------------------------
// Scrubber
// ---------------------------------------------------------------------------

/// The quarantine-healing pass: re-fetch `.bad` epochs from a tier,
/// verify them (seal CRCs + manifest decode), and reinstate them in the
/// local chain. A thin handle over [`DeltaStore::scrub`] for stores that
/// did not attach the tier at open (e.g. forensic repair of a chain that
/// was opened read-only without tier credentials).
///
/// Scrubbing is idempotent: a healthy chain (no `.bad` directories) is a
/// verified no-op, and a second scrub after a heal finds nothing to do.
pub struct Scrubber {
    tier: Arc<dyn ObjectTier>,
    config: TierConfig,
    ns: String,
}

impl Scrubber {
    /// A scrubber reading from `tier` with the default retry policy.
    pub fn new(tier: Arc<dyn ObjectTier>) -> Scrubber {
        Scrubber::with_config(tier, TierConfig::default())
    }

    /// A scrubber with an explicit retry/backoff/deadline policy for its
    /// downloads.
    pub fn with_config(tier: Arc<dyn ObjectTier>, config: TierConfig) -> Scrubber {
        Scrubber {
            tier,
            config,
            ns: String::new(),
        }
    }

    /// Read under one tenant's key namespace ([`tenant_namespace`])
    /// instead of the legacy root layout.
    pub fn namespaced(mut self, ns: impl Into<String>) -> Scrubber {
        self.ns = ns.into();
        self
    }

    /// Heal `store`'s quarantined epochs from the tier. See
    /// [`DeltaStore::scrub`] for the exact semantics and the report.
    pub fn scrub(&self, store: &mut DeltaStore) -> Result<ScrubReport, StoreError> {
        store.scrub_with(&*self.tier, self.config, &self.ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "stool_tier_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fs_tier_put_get_list_delete_roundtrip() {
        let root = tmp_dir("rt");
        let tier = FsTier::open(&root).unwrap();
        tier.put("epoch_000001/blocks.bin", b"blocks").unwrap();
        tier.put("epoch_000001/seal", b"seal").unwrap();
        tier.put("epoch_000002/seal", b"seal2").unwrap();
        assert_eq!(tier.get("epoch_000001/blocks.bin").unwrap(), b"blocks");
        assert_eq!(
            tier.list("").unwrap(),
            vec![
                "epoch_000001/blocks.bin",
                "epoch_000001/seal",
                "epoch_000002/seal"
            ]
        );
        assert_eq!(
            tier.list("epoch_000002").unwrap(),
            vec!["epoch_000002/seal"]
        );
        tier.delete("epoch_000001/seal").unwrap();
        tier.delete("epoch_000001/seal").unwrap(); // idempotent
        assert!(matches!(
            tier.get("epoch_000001/seal"),
            Err(TierError::NotFound { .. })
        ));
        // Overwrite replaces.
        tier.put("epoch_000002/seal", b"replaced").unwrap();
        assert_eq!(tier.get("epoch_000002/seal").unwrap(), b"replaced");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn fs_tier_rejects_escaping_keys() {
        let root = tmp_dir("keys");
        let tier = FsTier::open(&root).unwrap();
        for bad in ["", "/abs", "a/../b", "..", "a//b", "tail/", ".inflight/x"] {
            assert!(
                matches!(tier.put(bad, b"x"), Err(TierError::BadKey { .. })),
                "accepted {bad:?}"
            );
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn seal_roundtrips_and_rejects_corruption() {
        let seal = Seal {
            epoch: 7,
            blocks_len: 1234,
            blocks_crc: 0xDEAD_BEEF,
            manifest_len: 99,
            manifest_crc: 0x0BAD_F00D,
        };
        let buf = seal.encode();
        assert_eq!(Seal::decode(&buf).unwrap(), seal);
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x10;
            assert!(Seal::decode(&bad).is_err(), "flip at {i} accepted");
        }
        assert!(Seal::decode(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn flaky_tier_scripts_faults_in_order() {
        let root = tmp_dir("flaky");
        let tier = FlakyTier::new(Arc::new(FsTier::open(&root).unwrap()));
        tier.script_puts([PutFault::Fail, PutFault::Torn]);
        assert!(matches!(tier.put("k", b"data"), Err(TierError::Io { .. })));
        tier.put("k", b"data").unwrap(); // torn: reports success...
        assert_eq!(tier.get("k").unwrap(), b"dat"); // ...but stored torn
        tier.put("k", b"data").unwrap(); // script exhausted: clean
        assert_eq!(tier.get("k").unwrap(), b"data");
        assert_eq!(tier.puts(), 3);
        assert_eq!(tier.injected(), 2);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn flaky_tier_hold_blocks_until_release() {
        let root = tmp_dir("hold");
        let tier = Arc::new(FlakyTier::new(Arc::new(FsTier::open(&root).unwrap())));
        tier.hold_all();
        let t2 = tier.clone();
        let handle = std::thread::spawn(move || t2.put("held", b"v"));
        // The put must not complete while held.
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(tier.get("held"), Err(TierError::NotFound { .. })));
        tier.release();
        handle.join().unwrap().unwrap();
        assert_eq!(tier.get("held").unwrap(), b"v");
        // After release, future puts pass straight through.
        tier.put("after", b"w").unwrap();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn put_verified_retries_torn_and_failed_uploads() {
        let root = tmp_dir("verify");
        let tier = FlakyTier::new(Arc::new(FsTier::open(&root).unwrap()));
        tier.script_puts([PutFault::Fail, PutFault::Torn]);
        let cfg = TierConfig {
            max_attempts: 4,
            backoff: Duration::from_millis(1),
            ..TierConfig::default()
        };
        let mut retries = 0;
        put_verified(&tier, cfg, "obj", b"payload bytes", &mut retries).unwrap();
        assert_eq!(retries, 2, "one retry per injected fault");
        assert_eq!(tier.get("obj").unwrap(), b"payload bytes");
        // Exhausting the budget surfaces the last error.
        tier.script_puts(std::iter::repeat_n(PutFault::Fail, 8));
        let mut retries = 0;
        assert!(put_verified(&tier, cfg, "obj2", b"x", &mut retries).is_err());
        assert_eq!(retries, cfg.max_attempts as u64 - 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn flaky_tier_scripts_get_faults_in_order() {
        let tier = FlakyTier::new(Arc::new(MemTier::new()));
        tier.put("k", b"data").unwrap();
        tier.script_gets([GetFault::Fail, GetFault::Torn]);
        assert!(matches!(tier.get("k"), Err(TierError::Io { .. })));
        assert_eq!(tier.get("k").unwrap(), b"dat"); // torn: last byte gone
        assert_eq!(tier.get("k").unwrap(), b"data"); // script exhausted
        assert_eq!(tier.gets(), 3);
        assert_eq!(tier.injected(), 2);
    }

    #[test]
    fn get_retried_rides_out_scripted_failures() {
        let tier = FlakyTier::new(Arc::new(MemTier::new()));
        tier.put("k", b"payload").unwrap();
        tier.script_gets([GetFault::Fail, GetFault::Fail]);
        let cfg = TierConfig {
            max_attempts: 4,
            backoff: Duration::from_millis(1),
            ..TierConfig::default()
        };
        assert_eq!(get_retried(&tier, cfg, "k").unwrap(), b"payload");
        // Absence is an answer, not a fault: no retry budget is spent.
        assert!(matches!(
            get_retried(&tier, cfg, "missing"),
            Err(TierError::NotFound { .. })
        ));
        assert_eq!(tier.gets(), 4, "three for `k`, one for `missing`");
    }

    #[test]
    fn get_retried_surfaces_timeout_at_the_deadline() {
        let tier = FlakyTier::new(Arc::new(MemTier::new()));
        tier.put("k", b"payload").unwrap();
        tier.script_gets(std::iter::repeat_n(GetFault::Fail, 16));
        let cfg = TierConfig {
            max_attempts: 16,
            backoff: Duration::from_millis(50),
            deadline: Some(Duration::from_millis(5)),
            ..TierConfig::default()
        };
        // The first backoff sleep alone would cross the deadline: the
        // retry loop surfaces Timeout instead of waiting it out.
        assert!(matches!(
            get_retried(&tier, cfg, "k"),
            Err(TierError::Timeout { op: "get", .. })
        ));
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let cfg = TierConfig {
            backoff: Duration::from_millis(100),
            jitter_permille: 250,
            ..TierConfig::default()
        };
        for attempt in 1..=4u32 {
            let step = cfg.backoff * (1 << (attempt - 1));
            let lo = step - step.mul_f64(0.25);
            let hi = step + step.mul_f64(0.25);
            let a = backoff_step(cfg, "epoch_000001/blocks.bin", attempt);
            let b = backoff_step(cfg, "epoch_000001/blocks.bin", attempt);
            assert_eq!(a, b, "same key+attempt sleeps identically");
            assert!(
                a >= lo && a <= hi,
                "attempt {attempt}: {a:?} not in [{lo:?}, {hi:?}]"
            );
        }
        // Different keys de-synchronize; zero jitter is exact.
        assert_ne!(
            backoff_step(cfg, "epoch_000001/blocks.bin", 1),
            backoff_step(cfg, "epoch_000002/blocks.bin", 1),
        );
        let plain = TierConfig {
            jitter_permille: 0,
            ..cfg
        };
        assert_eq!(backoff_step(plain, "k", 3), plain.backoff * 4);
    }
}
