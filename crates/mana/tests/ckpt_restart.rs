//! End-to-end MANA tests: interposition, drain, checkpoint, and restart —
//! including the paper's headline move, checkpoint under one MPI
//! implementation and restart under the other.

use std::rc::Rc;

use dmtcp_sim::coordinator::{CkptMode, Coordinator};
use dmtcp_sim::memory::Memory;
use mana_sim::ckpt::{maybe_checkpoint, restore_rank, CkptAction};
use mana_sim::{ManaConfig, ManaMpi};
use mpi_abi::{consts, AbiResult, Datatype, Handle, MpiAbi, ReduceOp};
use muk::{MukShim, Vendor};
use simnet::{ClusterSpec, RankCtx, World, WorldOutcome};

fn err(e: impl std::fmt::Display) -> simnet::SimError {
    simnet::SimError::InvalidConfig(e.to_string())
}

fn stack(vendor: Vendor, ctx: &Rc<RankCtx>) -> ManaMpi {
    let shim = MukShim::load(vendor, ctx.clone());
    ManaMpi::launch(ctx.clone(), ManaConfig::default(), Box::new(shim))
}

#[test]
fn wrapper_forwards_and_counts() {
    let spec = ClusterSpec::builder().nodes(1).ranks_per_node(2).build();
    let out = World::run(&spec, |ctx| {
        let mut mana = stack(Vendor::Mpich, &ctx);
        let me = mana.comm_rank(Handle::COMM_WORLD).map_err(err)?;
        let other = 1 - me;
        mana.send(
            &[9u8; 8],
            Datatype::Byte.handle(),
            other,
            5,
            Handle::COMM_WORLD,
        )
        .map_err(err)?;
        let mut buf = [0u8; 8];
        let st = mana
            .recv(
                &mut buf,
                Datatype::Byte.handle(),
                other,
                5,
                Handle::COMM_WORLD,
            )
            .map_err(err)?;
        assert_eq!(st.source, other);
        assert_eq!(buf, [9u8; 8]);
        // Counters: one send to `other`, one receive from `other`.
        Ok((ctx.counters().context_switches, me))
    })
    .unwrap();
    // Every wrapper call crosses twice; at least send+recv+comm_rank = 3
    // calls = 6 switches.
    for (switches, _) in out.results {
        assert!(
            switches >= 6,
            "context switches must be counted, got {switches}"
        );
    }
}

#[test]
fn mana_overhead_visible_on_old_kernel_only() {
    let time_with = |kernel| {
        let spec = ClusterSpec::builder()
            .nodes(1)
            .ranks_per_node(2)
            .kernel(kernel)
            .build();
        let out: WorldOutcome<u64> = World::run(&spec, |ctx| {
            let mut mana = stack(Vendor::Mpich, &ctx);
            let me = mana.comm_rank(Handle::COMM_WORLD).map_err(err)?;
            let other = 1 - me;
            let mut buf = [0u8; 8];
            for _ in 0..100 {
                mana.sendrecv(
                    &[1u8; 8],
                    other,
                    0,
                    &mut buf,
                    other,
                    0,
                    Datatype::Byte.handle(),
                    Handle::COMM_WORLD,
                )
                .map_err(err)?;
            }
            Ok(ctx.now().as_nanos())
        })
        .unwrap();
        out.results[0]
    };
    let old = time_with(simnet::KernelVersion::CENTOS7);
    let new = time_with(simnet::KernelVersion::MODERN);
    assert!(
        old > new,
        "FSGSBASE syscall fallback must cost extra virtual time: old={old} new={new}"
    );
    let config = ManaConfig::default();
    // 101 wrapper calls cross the split-process boundary: one comm_rank
    // plus the 100 sendrecvs.
    let per_call = 2 * (config.switch_syscall.as_nanos() - config.switch_fsgsbase.as_nanos());
    assert_eq!(
        old - new,
        101 * per_call,
        "delta must be exactly the switch-cost difference"
    );
}

/// A tiny stateful "application" for checkpoint tests: accumulates a ring
/// value into memory across steps.
fn ring_step(mana: &mut ManaMpi, mem: &mut Memory, step: u64) -> AbiResult<()> {
    let me = mana.comm_rank(Handle::COMM_WORLD)?;
    let n = mana.comm_size(Handle::COMM_WORLD)?;
    let next = (me + 1) % n;
    let prev = (me + n - 1) % n;
    let acc = mem.f64s_mut("acc", 1);
    let payload = (acc[0] + me as f64 + step as f64).to_le_bytes();
    mana.send(
        &payload,
        Datatype::Double.handle(),
        next,
        7,
        Handle::COMM_WORLD,
    )?;
    let mut buf = [0u8; 8];
    mana.recv(
        &mut buf,
        Datatype::Double.handle(),
        prev,
        7,
        Handle::COMM_WORLD,
    )?;
    mem.f64s_mut("acc", 1)[0] += f64::from_le_bytes(buf);
    Ok(())
}

fn run_ring_uninterrupted(vendor: Vendor, nsteps: u64) -> Vec<f64> {
    let spec = ClusterSpec::builder().nodes(1).ranks_per_node(3).build();
    World::run(&spec, |ctx| {
        let mut mana = stack(vendor, &ctx);
        let mut mem = Memory::new();
        mem.f64s_mut("acc", 1);
        for step in 0..nsteps {
            ring_step(&mut mana, &mut mem, step).map_err(err)?;
        }
        Ok(mem.f64s("acc").unwrap()[0])
    })
    .unwrap()
    .results
}

#[test]
fn checkpoint_stop_restart_other_vendor_same_answer() {
    let nsteps = 8u64;
    let ckpt_at = 3u64;
    let expect = run_ring_uninterrupted(Vendor::OpenMpi, nsteps);

    // Phase 1: run under Open MPI, checkpoint-and-stop at step 3.
    let spec = ClusterSpec::builder().nodes(1).ranks_per_node(3).build();
    let coord = Coordinator::new(spec.nranks());
    let coord_for_ranks = coord.clone();
    let outcome = World::run(&spec, move |ctx| {
        let coord = coord_for_ranks.clone();
        let mut agent = coord.agent(ctx.rank());
        let mut mana = stack(Vendor::OpenMpi, &ctx);
        let mut mem = Memory::new();
        mem.f64s_mut("acc", 1);
        for step in 0..nsteps {
            // Safe point between steps.
            match maybe_checkpoint(&mut mana, &mut agent, &mem, step).map_err(err)? {
                CkptAction::Stop { .. } => return Ok(None),
                CkptAction::Taken { .. } | CkptAction::None => {}
            }
            ring_step(&mut mana, &mut mem, step).map_err(err)?;
            if step + 1 == ckpt_at && ctx.rank() == 0 {
                // "Press the button" once, from rank 0's thread.
                coord.request_checkpoint(CkptMode::Stop);
            }
        }
        Ok(Some(mem.f64s("acc").unwrap()[0]))
    })
    .unwrap();
    assert!(
        outcome.results.iter().all(Option::is_none),
        "world must stop at checkpoint"
    );
    let image = coord
        .take_world_image("Open MPI")
        .expect("checkpoint image collected");
    assert_eq!(image.vendor_hint, "Open MPI");
    assert_eq!(image.nranks(), 3);

    // Phase 2: restart under MPICH and finish.
    let images = std::sync::Arc::new(image);
    let out = World::run(&spec, move |ctx| {
        let shim = MukShim::load(Vendor::Mpich, ctx.clone());
        let restored = restore_rank(
            ctx.clone(),
            ManaConfig::default(),
            Box::new(shim),
            &images.ranks[ctx.rank()],
        )
        .map_err(err)?;
        let mut mana = restored.mana;
        let mut mem = restored.memory;
        assert!(mana.library_version().contains("mpich-sim"));
        for step in restored.resume_step..nsteps {
            ring_step(&mut mana, &mut mem, step).map_err(err)?;
        }
        Ok(mem.f64s("acc").unwrap()[0])
    })
    .unwrap();
    assert_eq!(
        out.results, expect,
        "cross-vendor restart must preserve the computation"
    );
}

#[test]
fn in_flight_messages_survive_checkpoint_via_pool() {
    // Rank 0 sends BEFORE the checkpoint; rank 1 receives only AFTER the
    // restart. The message must travel through the drain pool.
    let nsteps_msg = 0xBEEFu64;
    let spec = ClusterSpec::builder().nodes(1).ranks_per_node(2).build();
    let coord = Coordinator::new(2);
    coord.request_checkpoint(CkptMode::Stop);
    let coord_for_ranks = coord.clone();
    let _ = World::run(&spec, move |ctx| {
        let mut agent = coord_for_ranks.agent(ctx.rank());
        let mut mana = stack(Vendor::Mpich, &ctx);
        let mut mem = Memory::new();
        if ctx.rank() == 0 {
            mana.send(
                &nsteps_msg.to_le_bytes(),
                Datatype::Uint64.handle(),
                1,
                42,
                Handle::COMM_WORLD,
            )
            .map_err(err)?;
        }
        // Both ranks poll safe points until the agreed cut; rank 1 never
        // posted the recv, so the message is still in flight at the cut.
        let mut step = 0;
        loop {
            match maybe_checkpoint(&mut mana, &mut agent, &mem, step).map_err(err)? {
                CkptAction::Stop { .. } => break,
                CkptAction::Taken { .. } => panic!("mode was Stop"),
                CkptAction::None => {
                    step += 1;
                    std::thread::yield_now();
                }
            }
        }
        if ctx.rank() == 1 {
            assert_eq!(mana.pooled(), 1, "the in-flight message must be drained");
        }
        mem.set_u64("done", 1);
        Ok(())
    })
    .unwrap();
    let image = coord.take_world_image("MPICH").expect("image");

    // Restart under the OTHER vendor; rank 1 now receives.
    let images = std::sync::Arc::new(image);
    let out = World::run(&spec, move |ctx| {
        let shim = MukShim::load(Vendor::OpenMpi, ctx.clone());
        let restored = restore_rank(
            ctx.clone(),
            ManaConfig::default(),
            Box::new(shim),
            &images.ranks[ctx.rank()],
        )
        .map_err(err)?;
        let mut mana = restored.mana;
        if ctx.rank() == 1 {
            // Probe sees the pooled message, then receive it.
            let st = mana
                .iprobe(consts::ANY_SOURCE, consts::ANY_TAG, Handle::COMM_WORLD)
                .map_err(err)?
                .expect("pooled message visible to probe");
            assert_eq!(st.source, 0);
            assert_eq!(st.tag, 42);
            let mut buf = [0u8; 8];
            let st = mana
                .recv(
                    &mut buf,
                    Datatype::Uint64.handle(),
                    0,
                    42,
                    Handle::COMM_WORLD,
                )
                .map_err(err)?;
            assert_eq!(st.source, 0);
            return Ok(u64::from_le_bytes(buf));
        }
        Ok(0)
    })
    .unwrap();
    assert_eq!(out.results[1], 0xBEEF);
}

#[test]
fn dynamic_objects_replayed_across_vendors() {
    // Create a dup, a split, and a derived type before the checkpoint;
    // use them after a cross-vendor restart.
    let spec = ClusterSpec::builder().nodes(1).ranks_per_node(4).build();
    let coord = Coordinator::new(4);
    let coord_for_ranks = coord.clone();
    let _ = World::run(&spec, move |ctx| {
        let mut agent = coord_for_ranks.agent(ctx.rank());
        let mut mana = stack(Vendor::OpenMpi, &ctx);
        let mut mem = Memory::new();
        let me = mana.comm_rank(Handle::COMM_WORLD).map_err(err)?;
        let dup = mana.comm_dup(Handle::COMM_WORLD).map_err(err)?;
        let sub = mana
            .comm_split(Handle::COMM_WORLD, me % 2, me)
            .map_err(err)?;
        let vec2 = mana
            .type_contiguous(2, Datatype::Double.handle())
            .map_err(err)?;
        mana.type_commit(vec2).map_err(err)?;
        // Remember the virtual handles in checkpointed memory — they are
        // plain u64s, exactly what "the application keeps references" means.
        mem.set_u64("dup", dup.raw());
        mem.set_u64("sub", sub.raw());
        mem.set_u64("vec2", vec2.raw());
        if ctx.rank() == 0 {
            coord_for_ranks.request_checkpoint(CkptMode::Stop);
        }
        // Everyone polls safe points until the rendezvous completes.
        let mut step = 1;
        loop {
            match maybe_checkpoint(&mut mana, &mut agent, &mem, step).map_err(err)? {
                CkptAction::Stop { .. } => break,
                CkptAction::Taken { .. } => panic!("mode was Stop"),
                CkptAction::None => {
                    step += 1;
                    std::thread::yield_now();
                }
            }
        }
        Ok(())
    })
    .unwrap();
    let image = coord.take_world_image("Open MPI").expect("image");

    let images = std::sync::Arc::new(image);
    let out = World::run(&spec, move |ctx| {
        let shim = MukShim::load(Vendor::Mpich, ctx.clone());
        let restored = restore_rank(
            ctx.clone(),
            ManaConfig::default(),
            Box::new(shim),
            &images.ranks[ctx.rank()],
        )
        .map_err(err)?;
        let mut mana = restored.mana;
        let mem = restored.memory;
        let dup = Handle::from_raw(mem.get_u64("dup").unwrap());
        let sub = Handle::from_raw(mem.get_u64("sub").unwrap());
        let vec2 = Handle::from_raw(mem.get_u64("vec2").unwrap());
        // The virtual handles still work over the NEW vendor.
        assert_eq!(mana.comm_size(dup).map_err(err)?, 4);
        assert_eq!(mana.comm_size(sub).map_err(err)?, 2);
        assert_eq!(mana.type_size(vec2).map_err(err)?, 16);
        // And they carry real traffic: allreduce over the split comm.
        let me_sub = mana.comm_rank(sub).map_err(err)?;
        let mut out = vec![0u8; 8];
        mana.allreduce(
            &(me_sub as f64 + 1.0).to_le_bytes(),
            &mut out,
            Datatype::Double.handle(),
            ReduceOp::Sum.handle(),
            sub,
        )
        .map_err(err)?;
        Ok(f64::from_le_bytes(out[..].try_into().unwrap()))
    })
    .unwrap();
    // Each split half has ranks {0,1} → sum = 1+2 = 3.
    assert_eq!(out.results, vec![3.0; 4]);
}

#[test]
fn user_op_requires_registration() {
    fn my_min(inv: &[u8], io: &mut [u8], _e: usize) {
        for (a, b) in inv.chunks_exact(8).zip(io.chunks_exact_mut(8)) {
            let x = f64::from_le_bytes(a.try_into().unwrap());
            let y = f64::from_le_bytes(b.try_into().unwrap());
            b.copy_from_slice(&x.min(y).to_le_bytes());
        }
    }
    fn unregistered(_: &[u8], _: &mut [u8], _e: usize) {}

    let spec = ClusterSpec::builder().nodes(1).ranks_per_node(2).build();
    mana_sim::ops::register("test.my_min", my_min);
    let out = World::run(&spec, |ctx| {
        let mut mana = stack(Vendor::Mpich, &ctx);
        // Unregistered op fails with Unsupported.
        assert_eq!(
            mana.op_create(unregistered, true),
            Err(mpi_abi::AbiError::Unsupported)
        );
        // Registered op works end-to-end.
        let op = mana.op_create(my_min, true).map_err(err)?;
        let me = mana.comm_rank(Handle::COMM_WORLD).map_err(err)?;
        let mine = ((me + 2) as f64).to_le_bytes();
        let mut out = vec![0u8; 8];
        mana.allreduce(
            &mine,
            &mut out,
            Datatype::Double.handle(),
            op,
            Handle::COMM_WORLD,
        )
        .map_err(err)?;
        Ok(f64::from_le_bytes(out[..].try_into().unwrap()))
    })
    .unwrap();
    assert_eq!(out.results, vec![2.0, 2.0]);
}
