//! Stress tests for the checkpoint coordinator's gather/rendezvous
//! protocol: under arbitrary thread interleavings and request timings,
//! every round must either complete with a *uniform* cut or abort
//! cleanly — never deadlock, never checkpoint ranks at different steps.
//!
//! (The bug class this guards against: a rank observing a request at an
//! earlier safe point than the requester and parking in the barrier while
//! still owing messages — see `dmtcp_sim::coordinator`.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mpi_stool::dmtcp::{CkptMode, Coordinator, Poll, RankImage};

/// Drive `n` ranks through `steps` safe points each, with the button
/// pressed from outside at a staggered moment. Returns the cuts taken.
fn drive(n: usize, steps: u64, press_after_polls: u64, mode: CkptMode, seed: u64) -> Vec<u64> {
    let coord = Coordinator::new(n);
    let cuts = Mutex::new(Vec::new());
    let polls = AtomicU64::new(0);
    let pressed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for rank in 0..n {
            let coord = coord.clone();
            let cuts = &cuts;
            let polls = &polls;
            let pressed = &pressed;
            s.spawn(move || {
                let mut agent = coord.agent(rank);
                let zeros = vec![0u64; n];
                let mut step = 0u64;
                while step < steps {
                    // Scheduling noise: some ranks burn extra yields, so
                    // interleavings vary run to run and rank to rank.
                    for _ in 0..((seed ^ rank as u64 ^ step) % 4) {
                        std::thread::yield_now();
                    }
                    let total = polls.fetch_add(1, Ordering::SeqCst) + 1;
                    if total == press_after_polls
                        && pressed
                            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                    {
                        coord.request_checkpoint(mode);
                    }
                    match agent.poll(step).expect("protocol never errors here") {
                        Poll::None | Poll::KeepRunning => {
                            step += 1;
                        }
                        Poll::Enter(session) => {
                            let cut = session.cut();
                            assert_eq!(cut, step, "entered away from the cut");
                            let pending =
                                session.exchange_counters(&zeros, &zeros).expect("exchange");
                            assert!(pending.iter().all(|&p| p == 0));
                            session.submit_image(RankImage::new(rank, n, session.epoch()));
                            let got = session.finish().expect("finish");
                            assert_eq!(got, mode);
                            cuts.lock().unwrap().push(cut);
                            if got == CkptMode::Stop {
                                return;
                            }
                            step += 1;
                        }
                    }
                }
            });
        }
    });
    cuts.into_inner().unwrap()
}

#[test]
fn randomized_button_timing_never_deadlocks_and_cuts_are_uniform() {
    for n in [1usize, 2, 3, 5, 8] {
        for seed in 0..6u64 {
            for &mode in &[CkptMode::Continue, CkptMode::Stop] {
                let press = 1 + (seed * 7) % 20;
                let cuts = drive(n, 40, press, mode, seed);
                // Either the round completed on every rank with one cut,
                // or it aborted (a rank finished first) and nobody cut.
                assert!(
                    cuts.is_empty() || cuts.len() == n,
                    "n={n} seed={seed} mode={mode:?}: partial round {cuts:?}"
                );
                if let Some(&first) = cuts.first() {
                    assert!(
                        cuts.iter().all(|&c| c == first),
                        "n={n} seed={seed}: non-uniform cuts {cuts:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn press_near_program_end_aborts_instead_of_hanging() {
    // The request lands so late that some ranks may run out of safe
    // points mid-gather: the round must abort, not deadlock or poison.
    for seed in 0..10u64 {
        let cuts = drive(4, 6, 20 + seed, CkptMode::Continue, seed);
        assert!(
            cuts.is_empty() || cuts.len() == 4,
            "seed={seed}: partial round {cuts:?}"
        );
    }
}

#[test]
fn back_to_back_requests_each_get_a_round_or_merge() {
    let n = 4;
    let coord = Coordinator::new(n);
    std::thread::scope(|s| {
        for rank in 0..n {
            let coord = coord.clone();
            s.spawn(move || {
                let mut agent = coord.agent(rank);
                let zeros = vec![0u64; n];
                let mut step = 0u64;
                while step < 60 {
                    // Rank 0 presses the button three times as it runs.
                    if rank == 0 && (step == 5 || step == 20 || step == 35) {
                        coord.request_checkpoint(CkptMode::Continue);
                    }
                    match agent.poll(step).expect("poll") {
                        Poll::None | Poll::KeepRunning => step += 1,
                        Poll::Enter(session) => {
                            session.exchange_counters(&zeros, &zeros).expect("exchange");
                            session.submit_image(RankImage::new(rank, n, session.epoch()));
                            session.finish().expect("finish");
                            step += 1;
                        }
                    }
                    std::thread::yield_now();
                }
            });
        }
    });
    // Requests spaced well apart across 60 steps: every press is served
    // by some round (merging is only possible for presses landing inside
    // an open round, which 15-step spacing prevents here).
    assert_eq!(coord.completed_rounds(), 3, "three presses, three rounds");
}
