//! `stoolint`: the workspace invariant linter.
//!
//! The architecture invariants in `ROADMAP.md` ("never reintroduce
//! polling", "never allocate on an emit path", "never hold a guard
//! across the rank barrier") were prose until this module; here they are
//! data-driven rules over a lightweight Rust token stream, enforced by
//! CI with `benchgate`-style exit-2-on-violation semantics.
//!
//! The engine is three layers:
//!
//! 1. **A tokenizer** ([`tokenize`]) that understands exactly as much
//!    Rust as a lint needs: idents, punctuation, string/char/raw-string
//!    literals (so `"eprintln"` inside a string never trips a rule),
//!    lifetimes, and comments (kept, because suppressions and region
//!    markers live in comments).
//! 2. **Per-file context** ([`FileContext`]): `// lint:allow(rule)`
//!    suppressions, `// lint:region-start(rule)` / `// lint:region-end`
//!    annotation-scoped regions, and `#[cfg(test)] mod` spans so rules
//!    can exempt unit-test code.
//! 3. **Rule visitors** ([`default_rules`]): each rule is a config
//!    struct (banned names, barrier function lists, path filters) plus
//!    one pass over the tokens producing [`Finding`]s with exact spans.
//!
//! The driver ([`lint_tree`]) walks `crates/**/*.rs`, runs every rule,
//! then checks the workspace manifests for the `shims-only-deps` rule
//! (every dependency must resolve inside the repo — a registry dep
//! cannot build offline). Exit semantics mirror `benchgate`: 0 clean,
//! 2 on any finding, 1 on a driver error.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

/// Token classes the lint rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// String literal (plain, raw, byte; contents not inspected).
    Str,
    /// Char literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`).
    Lifetime,
    /// Line or block comment, text preserved (suppressions live here).
    Comment,
}

/// One token with its source span (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Source text (for `Str`/`Comment` this includes delimiters).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize Rust source. Never fails: unterminated literals consume to
/// end of input (the lint keeps going; rustc owns real syntax errors).
pub fn tokenize(source: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        let start = cur.pos;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                out.push(tok(TokKind::Comment, &cur, start, line, col));
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.push(tok(TokKind::Comment, &cur, start, line, col));
            }
            b'"' => {
                scan_string(&mut cur);
                out.push(tok(TokKind::Str, &cur, start, line, col));
            }
            b'r' | b'b' if raw_string_lookahead(&cur) => {
                scan_raw_or_byte_string(&mut cur);
                out.push(tok(TokKind::Str, &cur, start, line, col));
            }
            b'\'' => {
                // Lifetime or char literal: a lifetime is `'ident` NOT
                // followed by a closing quote.
                if cur.peek_at(1).map(is_ident_start).unwrap_or(false)
                    && cur.peek_at(2) != Some(b'\'')
                {
                    cur.bump();
                    while cur.peek().map(is_ident_cont).unwrap_or(false) {
                        cur.bump();
                    }
                    out.push(tok(TokKind::Lifetime, &cur, start, line, col));
                } else {
                    cur.bump();
                    if cur.peek() == Some(b'\\') {
                        cur.bump();
                        cur.bump();
                    } else {
                        cur.bump();
                    }
                    if cur.peek() == Some(b'\'') {
                        cur.bump();
                    }
                    out.push(tok(TokKind::Char, &cur, start, line, col));
                }
            }
            c if is_ident_start(c) => {
                while cur.peek().map(is_ident_cont).unwrap_or(false) {
                    cur.bump();
                }
                out.push(tok(TokKind::Ident, &cur, start, line, col));
            }
            c if c.is_ascii_digit() => {
                while cur
                    .peek()
                    .map(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.')
                    .unwrap_or(false)
                {
                    // `1.0` consumes the dot, but `1..n` must not.
                    if cur.peek() == Some(b'.') && cur.peek_at(1) == Some(b'.') {
                        break;
                    }
                    cur.bump();
                }
                out.push(tok(TokKind::Num, &cur, start, line, col));
            }
            b':' if cur.peek_at(1) == Some(b':') => {
                // `::` as one token so rules can match paths segment-wise.
                cur.bump();
                cur.bump();
                out.push(tok(TokKind::Punct, &cur, start, line, col));
            }
            _ => {
                cur.bump();
                out.push(tok(TokKind::Punct, &cur, start, line, col));
            }
        }
    }
    out
}

fn tok(kind: TokKind, cur: &Cursor<'_>, start: usize, line: u32, col: u32) -> Token {
    Token {
        kind,
        text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
        line,
        col,
    }
}

/// Whether the cursor sits on `r"`, `r#`, `b"`, `br"` or `br#`.
fn raw_string_lookahead(cur: &Cursor<'_>) -> bool {
    matches!(
        (cur.peek(), cur.peek_at(1), cur.peek_at(2)),
        (Some(b'r'), Some(b'"' | b'#'), _)
            | (Some(b'b'), Some(b'"'), _)
            | (Some(b'b'), Some(b'r'), Some(b'"' | b'#'))
    )
}

fn scan_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.peek() {
        match c {
            b'\\' => {
                cur.bump();
                cur.bump();
            }
            b'"' => {
                cur.bump();
                return;
            }
            _ => {
                cur.bump();
            }
        }
    }
}

fn scan_raw_or_byte_string(cur: &mut Cursor<'_>) {
    // Consume `r`, `b`, `br` prefix.
    while matches!(cur.peek(), Some(b'r') | Some(b'b')) {
        cur.bump();
    }
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() != Some(b'"') {
        return; // `b` ident-ish false positive; caller already emitted prefix
    }
    if hashes == 0 {
        scan_string(cur);
        return;
    }
    cur.bump(); // opening quote
    loop {
        match cur.peek() {
            None => return,
            Some(b'"') => {
                cur.bump();
                let mut seen = 0usize;
                while seen < hashes && cur.peek() == Some(b'#') {
                    seen += 1;
                    cur.bump();
                }
                if seen == hashes {
                    return;
                }
            }
            Some(_) => {
                cur.bump();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// One rule violation, with its exact source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// 1-based column of the violation.
    pub col: u32,
    /// Human explanation, naming the invariant the rule encodes.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Per-file context: suppressions, regions, test spans
// ---------------------------------------------------------------------------

/// Everything a rule needs to know about one file beyond its tokens.
pub struct FileContext {
    /// Repo-relative path label.
    pub path: String,
    /// Token stream (comments included).
    pub tokens: Vec<Token>,
    /// `lint:allow(rule)` lines: rule -> lines the suppression covers
    /// (the comment's own line and the line below it).
    allows: BTreeMap<String, BTreeSet<u32>>,
    /// `lint:region-start(rule)` .. `lint:region-end(rule)` line ranges.
    regions: BTreeMap<String, Vec<(u32, u32)>>,
    /// Line ranges of `#[cfg(test)] mod` bodies.
    test_spans: Vec<(u32, u32)>,
}

impl FileContext {
    /// Build the context for one file.
    pub fn new(path: &str, source: &str) -> FileContext {
        let tokens = tokenize(source);
        let mut allows: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
        let mut starts: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        let mut regions: BTreeMap<String, Vec<(u32, u32)>> = BTreeMap::new();
        for t in &tokens {
            if t.kind != TokKind::Comment {
                continue;
            }
            for rule in parse_marker(&t.text, "lint:allow(") {
                let entry = allows.entry(rule).or_default();
                entry.insert(t.line);
                entry.insert(t.line + 1);
            }
            for rule in parse_marker(&t.text, "lint:region-start(") {
                starts.entry(rule).or_default().push(t.line);
            }
            for rule in parse_marker(&t.text, "lint:region-end(") {
                if let Some(open) = starts.get_mut(&rule).and_then(|v| v.pop()) {
                    regions.entry(rule).or_default().push((open, t.line));
                }
            }
        }
        // An unclosed region runs to end of file (fail safe: checked).
        for (rule, opens) in starts {
            for open in opens {
                regions
                    .entry(rule.clone())
                    .or_default()
                    .push((open, u32::MAX));
            }
        }
        let test_spans = find_test_spans(&tokens);
        FileContext {
            path: path.to_string(),
            tokens,
            allows,
            regions,
            test_spans,
        }
    }

    /// Whether `line` is covered by a `lint:allow(rule)` suppression.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .get(rule)
            .map(|lines| lines.contains(&line))
            .unwrap_or(false)
    }

    /// Whether `line` falls inside a `lint:region(rule)` span.
    pub fn in_region(&self, rule: &str, line: u32) -> bool {
        self.regions
            .get(rule)
            .map(|spans| spans.iter().any(|&(a, b)| line >= a && line <= b))
            .unwrap_or(false)
    }

    /// Whether `line` falls inside a `#[cfg(test)] mod` body.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| line >= a && line <= b)
    }
}

/// Extract rule names out of `marker(rule1, rule2)` occurrences in a
/// comment.
fn parse_marker(comment: &str, marker: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find(marker) {
        rest = &rest[at + marker.len()..];
        if let Some(close) = rest.find(')') {
            for rule in rest[..close].split(',') {
                let rule = rule.trim();
                if !rule.is_empty() {
                    out.push(rule.to_string());
                }
            }
            rest = &rest[close + 1..];
        } else {
            break;
        }
    }
    out
}

/// Line spans of `#[cfg(test)] mod name { ... }` bodies, brace-matched.
fn find_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let toks: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is_cfg_test_attr(&toks, i) {
            // Skip this attribute and any further attributes, then
            // expect `mod name {`.
            let mut j = i;
            while j < toks.len() && toks[j].text == "#" {
                j = skip_attr(&toks, j);
            }
            if j + 2 < toks.len()
                && toks[j].text == "mod"
                && toks[j + 1].kind == TokKind::Ident
                && toks[j + 2].text == "{"
            {
                let open_line = toks[j + 2].line;
                let mut depth = 0i64;
                let mut k = j + 2;
                let mut close_line = open_line;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                close_line = toks[k].line;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                spans.push((open_line, close_line.max(open_line)));
                i = k;
            }
        }
        i += 1;
    }
    spans
}

fn is_cfg_test_attr(toks: &[&Token], i: usize) -> bool {
    toks.len() > i + 5
        && toks[i].text == "#"
        && toks[i + 1].text == "["
        && toks[i + 2].text == "cfg"
        && toks[i + 3].text == "("
        && toks[i + 4].text == "test"
}

/// Given `toks[i] == "#"`, return the index just past the attribute.
fn skip_attr(toks: &[&Token], i: usize) -> usize {
    let mut j = i + 1;
    if toks.get(j).map(|t| t.text.as_str()) != Some("[") {
        return i + 1;
    }
    let mut depth = 0i64;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// One data-driven lint rule: configuration plus which visitor runs it.
pub struct Rule {
    /// Stable rule name (`lint:allow(name)` refers to it).
    pub name: &'static str,
    /// One-line statement of the invariant the rule encodes.
    pub invariant: &'static str,
    /// Path substrings the rule applies to (empty = every file).
    pub paths: &'static [&'static str],
    /// Path substrings exempt from the rule (tooling that legitimately
    /// violates it, e.g. gate binaries writing stderr).
    pub allow_paths: &'static [&'static str],
    /// Whether `#[cfg(test)] mod` bodies are exempt.
    pub skip_tests: bool,
    /// The visitor that actually scans the tokens.
    pub check: Check,
}

/// The visitor variants (the data each carries makes the rule).
pub enum Check {
    /// Flag invocations of any of these macros (ident followed by `!`).
    BannedMacro(&'static [&'static str]),
    /// Flag calls to any of these functions/methods (ident followed by
    /// `(`, excluding `fn` definitions).
    BannedCall(&'static [&'static str]),
    /// Flag calls spelled as one of these token paths (e.g.
    /// `["thread", "::", "sleep"]` matches both `thread::sleep(..)` and
    /// `std::thread::sleep(..)`), followed by `(`.
    BannedPath(&'static [&'static [&'static str]]),
    /// Within `lint:region-start/-end` spans of this rule, flag banned
    /// macros and calls (allocation on an emit path).
    AllocInRegion {
        /// Banned macro names.
        macros: &'static [&'static str],
        /// Banned call/method names.
        calls: &'static [&'static str],
    },
    /// A `.lock()` guard live across a call to one of these barrier
    /// functions — including the receiver-evaluated-first single
    /// statement form `x.lock().unwrap().push(session.finish())`.
    GuardAcrossBarrier(&'static [&'static str]),
}

/// The workspace rule set. Data, not code: adding a banned name or a
/// barrier function is a one-line edit here.
pub fn default_rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "no-eprintln",
            invariant: "tracing flows through simnet::telemetry (flight recorder), never ad-hoc stderr",
            paths: &["crates/"],
            // Gate tooling reports to stderr by design; its sites also
            // carry lint:allow so the exemption is visible in-source.
            allow_paths: &[],
            skip_tests: true,
            check: Check::BannedMacro(&["eprintln", "eprint"]),
        },
        Rule {
            name: "no-sleep-poll",
            invariant: "the fabric and coordinator are event-driven; no sleeping or spinning on hot paths",
            paths: &["crates/simnet/src", "crates/dmtcp/src"],
            allow_paths: &[],
            skip_tests: true,
            // `thread::sleep` as a path, so calls through the injectable
            // `Clock` trait (the sanctioned wait primitive) stay legal
            // while a raw OS sleep — the PR 1 poll-loop class — fires.
            check: Check::BannedPath(&[
                &["thread", "::", "sleep"],
                &["hint", "::", "spin_loop"],
                &["thread", "::", "park_timeout"],
                &["spin_loop"],
                &["park_timeout"],
                &["sleep_ms"],
            ]),
        },
        Rule {
            name: "no-alloc-in-emit",
            invariant: "telemetry emit paths are wait-free and alloc-free (seqlock stores only)",
            paths: &["crates/"],
            allow_paths: &[],
            skip_tests: false,
            check: Check::AllocInRegion {
                macros: &["format", "vec"],
                calls: &[
                    "push",
                    "push_str",
                    "to_string",
                    "to_owned",
                    "to_vec",
                    "collect",
                    "with_capacity",
                    "new_boxed",
                ],
            },
        },
        Rule {
            name: "guard-across-barrier",
            invariant: "no MutexGuard may be live across a rank barrier (finish/rendezvous/exchange_counters)",
            paths: &["crates/", "tests/", "benches/", "examples/"],
            allow_paths: &[],
            skip_tests: false,
            check: Check::GuardAcrossBarrier(&["finish", "rendezvous", "exchange_counters"]),
        },
    ]
}

/// Run every applicable rule over one file's source. `path` is the
/// repo-relative label stamped into findings.
pub fn lint_source(path: &str, source: &str, rules: &[Rule]) -> Vec<Finding> {
    let ctx = FileContext::new(path, source);
    let mut out = Vec::new();
    for rule in rules {
        if !rule.paths.is_empty() && !rule.paths.iter().any(|p| path.contains(p)) {
            continue;
        }
        if rule.allow_paths.iter().any(|p| path.contains(p)) {
            continue;
        }
        let raw = match &rule.check {
            Check::BannedMacro(macros) => check_banned_macro(&ctx, rule, macros),
            Check::BannedCall(calls) => check_banned_call(&ctx, rule, calls),
            Check::BannedPath(paths) => check_banned_path(&ctx, rule, paths),
            Check::AllocInRegion { macros, calls } => {
                check_alloc_in_region(&ctx, rule, macros, calls)
            }
            Check::GuardAcrossBarrier(barriers) => check_guard_across_barrier(&ctx, rule, barriers),
        };
        out.extend(raw.into_iter().filter(|f| {
            if ctx.allowed(rule.name, f.line) {
                return false;
            }
            if rule.skip_tests && ctx.in_test(f.line) {
                return false;
            }
            true
        }));
    }
    out.sort_by_key(|f| (f.line, f.col));
    out
}

/// Code tokens only (comments dropped), for rules that scan syntax.
fn code_tokens(ctx: &FileContext) -> Vec<&Token> {
    ctx.tokens
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect()
}

fn check_banned_macro(ctx: &FileContext, rule: &Rule, macros: &[&str]) -> Vec<Finding> {
    let toks = code_tokens(ctx);
    let mut out = Vec::new();
    for w in toks.windows(2) {
        if w[0].kind == TokKind::Ident && w[1].text == "!" && macros.contains(&w[0].text.as_str()) {
            out.push(Finding {
                rule: rule.name,
                path: ctx.path.clone(),
                line: w[0].line,
                col: w[0].col,
                message: format!("`{}!` is banned: {}", w[0].text, rule.invariant),
            });
        }
    }
    out
}

fn check_banned_call(ctx: &FileContext, rule: &Rule, calls: &[&str]) -> Vec<Finding> {
    let toks = code_tokens(ctx);
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].kind == TokKind::Ident
            && toks[i + 1].text == "("
            && calls.contains(&toks[i].text.as_str())
            && (i == 0 || toks[i - 1].text != "fn")
        {
            out.push(Finding {
                rule: rule.name,
                path: ctx.path.clone(),
                line: toks[i].line,
                col: toks[i].col,
                message: format!("call to `{}`: {}", toks[i].text, rule.invariant),
            });
        }
    }
    out
}

fn check_banned_path(ctx: &FileContext, rule: &Rule, paths: &[&[&str]]) -> Vec<Finding> {
    let toks = code_tokens(ctx);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        for path in paths {
            let n = path.len();
            if i + n >= toks.len() {
                continue;
            }
            let matches = (0..n).all(|k| toks[i + k].text == path[k])
                && toks[i + n].text == "("
                && (i == 0 || toks[i - 1].text != "fn")
                // A bare (single-segment) form only matches a free call:
                // `foo::bar(` is the longer path forms' business, and
                // matching both would double-report one call site.
                && (n > 1 || i == 0 || toks[i - 1].text != "::");
            if matches {
                out.push(Finding {
                    rule: rule.name,
                    path: ctx.path.clone(),
                    line: toks[i].line,
                    col: toks[i].col,
                    message: format!("call to `{}`: {}", path.join(""), rule.invariant),
                });
                break;
            }
        }
    }
    out
}

fn check_alloc_in_region(
    ctx: &FileContext,
    rule: &Rule,
    macros: &[&str],
    calls: &[&str],
) -> Vec<Finding> {
    let toks = code_tokens(ctx);
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(1) {
        if !ctx.in_region(rule.name, toks[i].line) {
            continue;
        }
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        let next = toks[i + 1].text.as_str();
        let is_macro = next == "!" && macros.contains(&name);
        let is_call = next == "(" && calls.contains(&name) && (i == 0 || toks[i - 1].text != "fn");
        // `Box::new(..)` / `String::from(..)`: a constructor call whose
        // path starts at a heap type.
        let is_heap_ctor =
            next == "::" && matches!(name, "Box" | "String" | "Vec" | "BTreeMap" | "HashMap");
        if is_macro || is_call || is_heap_ctor {
            out.push(Finding {
                rule: rule.name,
                path: ctx.path.clone(),
                line: toks[i].line,
                col: toks[i].col,
                message: format!(
                    "`{}` allocates inside an emit region: {}",
                    name, rule.invariant
                ),
            });
        }
    }
    out
}

/// The PR 6 deadlock class. Two forms are flagged:
///
/// * **Receiver-evaluated-first**: one statement containing `.lock(`
///   followed (later in the same statement) by a barrier call —
///   `results.lock().unwrap().push(session.finish())` evaluates the
///   receiver (the guard) before the argument, so the lock is held
///   across the rank barrier.
/// * **Guard live across a barrier**: `let g = x.lock()...;` where the
///   initializer *ends* in the guard (only `.unwrap()` / `.expect(..)` /
///   `?` after `.lock()`), followed by a barrier call in the same block
///   before `g` is dropped.
fn check_guard_across_barrier(ctx: &FileContext, rule: &Rule, barriers: &[&str]) -> Vec<Finding> {
    let toks = code_tokens(ctx);
    let mut out = Vec::new();

    #[derive(Debug)]
    struct Guard {
        name: String,
        depth: usize,
        line: u32,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // Token indices of the statement being accumulated.
    let mut stmt: Vec<usize> = Vec::new();

    let barrier_at = |idxs: &[usize], from: usize| -> Option<usize> {
        idxs.iter().copied().skip(from).find(|&i| {
            toks[i].kind == TokKind::Ident
                && barriers.contains(&toks[i].text.as_str())
                && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
                && (i == 0 || toks[i - 1].text != "fn")
        })
    };
    let lock_at = |idxs: &[usize]| -> Option<usize> {
        idxs.iter().copied().position(|i| {
            toks[i].text == "lock"
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
        })
    };

    let flush =
        |stmt: &mut Vec<usize>, guards: &mut Vec<Guard>, depth: usize, out: &mut Vec<Finding>| {
            if stmt.is_empty() {
                return;
            }
            let lock_pos = lock_at(stmt);
            // Form 1: lock and barrier in one statement, lock first.
            if let Some(lp) = lock_pos {
                if let Some(bi) = barrier_at(stmt, lp + 1) {
                    out.push(Finding {
                        rule: rule.name,
                        path: ctx.path.clone(),
                        line: toks[bi].line,
                        col: toks[bi].col,
                        message: format!(
                            "`{}()` called while the statement's `.lock()` guard is live \
                             (receiver is evaluated first): {}",
                            toks[bi].text, rule.invariant
                        ),
                    });
                    stmt.clear();
                    return;
                }
            }
            // Form 2a: barrier call while an earlier guard is live.
            if let Some(bi) = barrier_at(stmt, 0) {
                if let Some(g) = guards.iter().find(|g| g.depth <= depth) {
                    out.push(Finding {
                        rule: rule.name,
                        path: ctx.path.clone(),
                        line: toks[bi].line,
                        col: toks[bi].col,
                        message: format!(
                            "`{}()` called while guard `{}` (bound line {}) is still live: {}",
                            toks[bi].text, g.name, g.line, rule.invariant
                        ),
                    });
                }
            }
            // `drop(g)` releases a tracked guard.
            for w in stmt.windows(4) {
                if toks[w[0]].text == "drop" && toks[w[1]].text == "(" && toks[w[3]].text == ")" {
                    let name = &toks[w[2]].text;
                    guards.retain(|g| &g.name != name);
                }
            }
            // Form 2 bookkeeping: `let g = ...lock()...;` where the
            // initializer ends in the guard.
            if toks[stmt[0]].text == "let" {
                if let Some(lp) = lock_pos {
                    let after: Vec<usize> = stmt[lp + 1..].to_vec();
                    if chain_ends_in_guard(&after, toks.as_slice()) {
                        // Bound name: first ident after `let` (skip `mut`).
                        let name = stmt
                            .iter()
                            .skip(1)
                            .map(|&i| &toks[i])
                            .find(|t| t.kind == TokKind::Ident && t.text != "mut")
                            .map(|t| t.text.clone());
                        if let Some(name) = name {
                            // Rebinding replaces the old guard entry.
                            guards.retain(|g| g.name != name);
                            guards.push(Guard {
                                name,
                                depth,
                                line: toks[stmt[0]].line,
                            });
                        }
                    }
                }
            }
            stmt.clear();
        };

    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            ";" | "," => flush(&mut stmt, &mut guards, depth, &mut out),
            "{" => {
                flush(&mut stmt, &mut guards, depth, &mut out);
                depth += 1;
            }
            "}" => {
                flush(&mut stmt, &mut guards, depth, &mut out);
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            _ => stmt.push(i),
        }
    }
    flush(&mut stmt, &mut guards, depth, &mut out);
    out
}

/// Whether the tokens after `.lock(` form a chain that still *is* the
/// guard at statement end: only `()`, `.unwrap()`, `.expect("..")`, `?`
/// may follow. Any other method call consumes the guard within the
/// statement (temporary; dropped at `;`).
fn chain_ends_in_guard(idxs: &[usize], toks: &[&Token]) -> bool {
    let mut j = 0usize;
    // Skip the `lock(` argument list: first token is `(`'s payload...
    // idxs starts right after the `lock` ident; expect `(` `)` first.
    let texts: Vec<&str> = idxs.iter().map(|&i| toks[i].text.as_str()).collect();
    if texts.first() != Some(&"(") {
        return false;
    }
    // Find matching close paren.
    let mut depth = 0i64;
    while j < texts.len() {
        match texts[j] {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    // Now only `.unwrap()`, `.expect(..)`, `?` may remain.
    while j < texts.len() {
        match texts[j] {
            "?" => j += 1,
            "." => {
                let name = texts.get(j + 1).copied().unwrap_or("");
                if name != "unwrap" && name != "expect" {
                    return false;
                }
                // Skip `name ( ... )`.
                j += 2;
                if texts.get(j) != Some(&"(") {
                    return false;
                }
                let mut d = 0i64;
                while j < texts.len() {
                    match texts[j] {
                        "(" => d += 1,
                        ")" => {
                            d -= 1;
                            if d == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            _ => return false,
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Manifest rule: shims-only-deps
// ---------------------------------------------------------------------------

/// Check one `Cargo.toml` body: every dependency must resolve inside
/// the workspace (`path = "..."` or `workspace = true`); a bare version
/// requirement means a registry dependency, which cannot build offline.
pub fn lint_manifest(path: &str, source: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut section = String::new();
    let mut table_dep: Option<(String, u32, bool)> = None; // (name, line, satisfied)
    let flush_table = |td: &mut Option<(String, u32, bool)>, out: &mut Vec<Finding>| {
        if let Some((name, line, ok)) = td.take() {
            if !ok {
                out.push(dep_finding(path, line, &name));
            }
        }
    };
    for (ln, raw) in source.lines().enumerate() {
        let line_no = ln as u32 + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_table(&mut table_dep, &mut out);
            section = line.trim_matches(['[', ']']).to_string();
            // `[dependencies.foo]` table form.
            if let Some(rest) = section
                .strip_prefix("dependencies.")
                .or_else(|| section.strip_prefix("dev-dependencies."))
                .or_else(|| section.strip_prefix("build-dependencies."))
                .or_else(|| section.strip_prefix("workspace.dependencies."))
            {
                table_dep = Some((rest.to_string(), line_no, false));
            }
            continue;
        }
        if let Some((_, _, ok)) = &mut table_dep {
            if line.starts_with("path") || line.starts_with("workspace") {
                *ok = true;
            }
            continue;
        }
        let dep_section = matches!(
            section.as_str(),
            "dependencies" | "dev-dependencies" | "build-dependencies" | "workspace.dependencies"
        );
        if !dep_section {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let (name, value) = (name.trim(), value.trim());
        if value.contains("path =") || value.contains("path=") || value.contains("workspace = true")
        {
            continue;
        }
        out.push(dep_finding(path, line_no, name));
    }
    flush_table(&mut table_dep, &mut out);
    out
}

fn dep_finding(path: &str, line: u32, name: &str) -> Finding {
    Finding {
        rule: "shims-only-deps",
        path: path.to_string(),
        line,
        col: 1,
        message: format!(
            "dependency `{name}` does not resolve to a workspace path: external deps \
             must be API-compatible shims under shims/ (no crates.io access)"
        ),
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// The result of a whole-tree lint run.
pub struct LintReport {
    /// Every finding, in (path, line) order.
    pub findings: Vec<Finding>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
    /// How many manifests were checked.
    pub manifests_scanned: usize,
}

impl LintReport {
    /// `benchgate`-style exit semantics: 0 clean, 2 on any violation.
    pub fn exit_code(&self) -> i32 {
        if self.findings.is_empty() {
            0
        } else {
            2
        }
    }

    /// The report as a JSON object (stable field order, no deps).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"tool\":\"stoolint\",");
        out.push_str(&format!(
            "\"files_scanned\":{},\"manifests_scanned\":{},\"violations\":{},\"findings\":[",
            self.files_scanned,
            self.manifests_scanned,
            self.findings.len()
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{}}}",
                json_string(f.rule),
                json_string(&f.path),
                f.line,
                f.col,
                json_string(&f.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Lint the workspace rooted at `root`: every `crates/**/*.rs`,
/// `tests/**/*.rs`, `benches/**/*.rs` and `examples/**/*.rs` file
/// against [`default_rules`], plus every reachable `Cargo.toml` against
/// `shims-only-deps`.
pub fn lint_tree(root: &Path) -> std::io::Result<LintReport> {
    let rules = default_rules();
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    let mut manifests_scanned = 0usize;

    let mut rs_files = Vec::new();
    for top in ["crates", "tests", "benches", "examples", "src"] {
        collect_files(&root.join(top), "rs", &mut rs_files)?;
    }
    rs_files.sort();
    for file in &rs_files {
        let source = std::fs::read_to_string(file)?;
        let label = rel_label(root, file);
        findings.extend(lint_source(&label, &source, &rules));
        files_scanned += 1;
    }

    let mut manifests = vec![root.join("Cargo.toml")];
    for top in ["crates", "shims"] {
        collect_manifests(&root.join(top), &mut manifests)?;
    }
    manifests.sort();
    for m in &manifests {
        if !m.is_file() {
            continue;
        }
        let source = std::fs::read_to_string(m)?;
        let label = rel_label(root, m);
        findings.extend(lint_manifest(&label, &source));
        manifests_scanned += 1;
    }

    findings.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok(LintReport {
        findings,
        files_scanned,
        manifests_scanned,
    })
}

fn rel_label(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_files(dir: &Path, ext: &str, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_files(&path, ext, out)?;
        } else if path.extension().map(|e| e == ext).unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

fn collect_manifests(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            let m = path.join("Cargo.toml");
            if m.is_file() {
                out.push(m);
            }
        }
    }
    Ok(())
}

/// Minimal JSON string escaping (mirrors the flight recorder's).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_strings_and_comments_do_not_leak_idents() {
        let toks = tokenize(r##"let s = "eprintln!(x)"; // eprintln! in comment"##);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s"]);
    }

    #[test]
    fn tokenizer_raw_strings_and_lifetimes() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let r = r#\"sleep(\"#; }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime));
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["r#\"sleep(\"#"]);
    }

    #[test]
    fn tokenizer_spans_are_one_based() {
        let toks = tokenize("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn cfg_test_spans_cover_the_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\n";
        let ctx = FileContext::new("x.rs", src);
        assert!(!ctx.in_test(1));
        assert!(ctx.in_test(4));
    }

    #[test]
    fn manifest_rule_flags_registry_deps_only() {
        let good = "[dependencies]\nfoo = { path = \"shims/foo\" }\nbar = { workspace = true }\n";
        assert!(lint_manifest("Cargo.toml", good).is_empty());
        let bad = "[dependencies]\nserde = \"1.0\"\n";
        let f = lint_manifest("Cargo.toml", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        let table = "[dependencies.serde]\nversion = \"1.0\"\n";
        assert_eq!(lint_manifest("Cargo.toml", table).len(), 1);
        let table_ok = "[dependencies.simnet]\npath = \"../simnet\"\n";
        assert!(lint_manifest("Cargo.toml", table_ok).is_empty());
    }

    #[test]
    fn chain_classifier_distinguishes_guard_from_temporary() {
        let rules = default_rules();
        // Temporary guard consumed in the statement: not a live guard,
        // and no barrier involved.
        let src = "fn f() { let v = m.lock().unwrap().take(); g.finish(); }";
        assert!(lint_source("crates/x.rs", src, &rules).is_empty());
    }
}
