//! # dmtcp-sim — a DMTCP-like transparent checkpointing platform
//!
//! DMTCP (Distributed MultiThreaded CheckPointing) is the platform MANA is
//! built on: a coordinator process orchestrates checkpoints across ranks,
//! each process's state is serialized into an image file, and *process
//! virtualization* lets the restarted process rebuild kernel resources from
//! virtual references.
//!
//! This crate reproduces the platform layer, MPI-agnostically:
//!
//! * [`codec`] — a self-describing, checksummed binary format for images
//!   (hand-rolled: the offline crate set has no serde format crate, and a
//!   checkpointing system wants explicit control of its wire format anyway);
//! * [`memory`] — [`memory::Memory`]: the "upper-half memory" abstraction,
//!   named typed segments that stand in for the application's writable
//!   address space (see DESIGN.md §1 for why Rust needs this cooperative
//!   substitute for raw page capture);
//! * [`image`] — per-rank checkpoint images ([`image::RankImage`]) grouped
//!   into a world image ([`image::WorldImage`]), with file save/load;
//! * [`coordinator`] — the checkpoint coordinator: epoch-based requests,
//!   phase barriers, counter exchange used by the MANA drain protocol, and
//!   image collection.
//!
//! The MPI-specific parts (split process, virtual ids, drain) live in
//! `mana-sim`, which plugs into this platform exactly as MANA plugs into
//! DMTCP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod coordinator;
pub mod image;
pub mod memory;

pub use codec::{CodecError, Reader, Writer};
pub use coordinator::{CkptError, CkptMode, CkptSession, Coordinator, Poll, RankAgent};
pub use image::{RankImage, WorldImage};
pub use memory::Memory;
