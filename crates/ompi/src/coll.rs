//! Open MPI-family collective algorithms (the `coll/tuned` lineage).
//!
//! Deliberately a different family from the MPICH flavour's:
//!
//! | collective  | small messages              | large messages              |
//! |-------------|-----------------------------|-----------------------------|
//! | `bcast`     | binary tree                 | pipelined segmented chain   |
//! | `allreduce` | recursive doubling          | ring (reduce-scatter + allgather) |
//! | `alltoall`  | posted linear               | pairwise exchange           |
//! | `allgather` | recursive doubling (p2) / ring | ring                     |
//! | `reduce`    | linear (root receives all)  | pipelined segmented chain   |
//! | `gather`    | linear                      | linear                      |
//! | `scatter`   | linear                      | linear                      |
//! | `scan`      | linear chain                | linear chain                |
//! | `barrier`   | recursive doubling          | recursive doubling          |
//!
//! The different round counts and message granularity are what separate the
//! two vendors' latency curves in the paper's Figs. 2–4.

use bytes::Bytes;

use crate::engine::{Want, WantTag};
use crate::objects::CommRec;
use crate::ompi_h::{self, MpiComm, MpiDatatype, MpiOp, OmpiResult};
use crate::proc::OmpiProcess;

const TAG_BARRIER: i32 = 0x0401;
const TAG_BCAST: i32 = 0x0402;
const TAG_REDUCE: i32 = 0x0403;
const TAG_ALLREDUCE: i32 = 0x0404;
const TAG_GATHER: i32 = 0x0405;
const TAG_SCATTER: i32 = 0x0406;
const TAG_ALLGATHER: i32 = 0x0407;
const TAG_ALLTOALL: i32 = 0x0408;
const TAG_SCAN: i32 = 0x0409;

fn chunk_lengths(total_elems: usize, parts: usize) -> Vec<usize> {
    let base = total_elems / parts;
    let rem = total_elems % parts;
    (0..parts).map(|i| base + usize::from(i < rem)).collect()
}

fn offsets(lens: &[usize]) -> Vec<usize> {
    lens.iter()
        .scan(0usize, |a, &l| {
            let o = *a;
            *a += l;
            Some(o)
        })
        .collect()
}

impl OmpiProcess {
    fn validate_coll(
        &self,
        comm: MpiComm,
        dt: MpiDatatype,
        buf_len: usize,
    ) -> OmpiResult<(CommRec, usize)> {
        if self.is_finalized() {
            return Err(ompi_h::MPI_ERR_FINALIZED);
        }
        let rec = self.rec(comm)?;
        let elem = self.check_typed_buf(dt, buf_len)?;
        Ok((rec, elem))
    }

    fn validate_root(rec: &CommRec, root: i32) -> OmpiResult<usize> {
        if root < 0 || root as usize >= rec.size() {
            Err(ompi_h::MPI_ERR_ROOT)
        } else {
            Ok(root as usize)
        }
    }

    fn validate_op(&self, op: MpiOp) -> OmpiResult<()> {
        if crate::objects::Heap::is_builtin_op(op) {
            Ok(())
        } else {
            self.heap.user_op(op).map(|_| ())
        }
    }

    fn combine_ordered(
        &mut self,
        op: MpiOp,
        dt: MpiDatatype,
        acc: &mut [u8],
        other: &[u8],
        other_first: bool,
    ) -> OmpiResult<()> {
        self.charge_reduce_cost(acc.len());
        if other_first {
            self.combine_with(op, dt, acc, other)
        } else {
            let mut tmp = other.to_vec();
            self.combine_with(op, dt, &mut tmp, acc)?;
            acc.copy_from_slice(&tmp);
            Ok(())
        }
    }

    // ------------------------------------------------------------------
    // Barrier: recursive doubling with non-power-of-two fold
    // ------------------------------------------------------------------

    /// `MPI_Barrier`.
    pub fn barrier(&mut self, comm: MpiComm) -> OmpiResult<()> {
        let (rec, _) = self.validate_coll(comm, ompi_h::MPI_BYTE, 0)?;
        let n = rec.size();
        if n == 1 {
            return Ok(());
        }
        let me = rec.my_rank as usize;
        let pof2 = n.next_power_of_two() / if n.is_power_of_two() { 1 } else { 2 };
        let rem = n - pof2;
        // Extras notify their partner and wait for release.
        if me >= pof2 {
            let partner = (me - pof2) as i32;
            self.xsend(&rec, true, partner, TAG_BARRIER, Bytes::new())?;
            let src = rec.world_of(partner)?;
            self.xrecv(&rec, true, Want::Src(src), WantTag::Tag(TAG_BARRIER + 2))?;
            return Ok(());
        }
        if me < rem {
            let src = rec.world_of((me + pof2) as i32)?;
            self.xrecv(&rec, true, Want::Src(src), WantTag::Tag(TAG_BARRIER))?;
        }
        let mut mask = 1usize;
        while mask < pof2 {
            let partner = (me ^ mask) as i32;
            self.xsend(&rec, true, partner, TAG_BARRIER + 1, Bytes::new())?;
            let src = rec.world_of(partner)?;
            self.xrecv(&rec, true, Want::Src(src), WantTag::Tag(TAG_BARRIER + 1))?;
            mask <<= 1;
        }
        if me < rem {
            self.xsend(
                &rec,
                true,
                (me + pof2) as i32,
                TAG_BARRIER + 2,
                Bytes::new(),
            )?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Bcast: binary tree / pipelined chain
    // ------------------------------------------------------------------

    /// `MPI_Bcast`.
    pub fn bcast(
        &mut self,
        buf: &mut [u8],
        dt: MpiDatatype,
        root: i32,
        comm: MpiComm,
    ) -> OmpiResult<()> {
        let (rec, _) = self.validate_coll(comm, dt, buf.len())?;
        let root = Self::validate_root(&rec, root)?;
        if rec.size() == 1 || buf.is_empty() {
            return Ok(());
        }
        if buf.len() <= self.tuning().bcast_bintree_max {
            self.bcast_bintree(&rec, buf, root)
        } else {
            self.bcast_pipeline(&rec, buf, root)
        }
    }

    fn bcast_bintree(&mut self, rec: &CommRec, buf: &mut [u8], root: usize) -> OmpiResult<()> {
        let n = rec.size();
        let me = rec.my_rank as usize;
        let rel = (me + n - root) % n;
        if rel != 0 {
            let parent_rel = (rel - 1) / 2;
            let parent = (parent_rel + root) % n;
            let got = self.xrecv(
                rec,
                true,
                Want::Src(rec.world_of(parent as i32)?),
                WantTag::Tag(TAG_BCAST),
            )?;
            if got.env.len() != buf.len() {
                return Err(ompi_h::MPI_ERR_TRUNCATE);
            }
            buf.copy_from_slice(&got.env.payload);
        }
        let payload = Bytes::copy_from_slice(buf);
        for child_rel in [2 * rel + 1, 2 * rel + 2] {
            if child_rel < n {
                let child = (child_rel + root) % n;
                self.xsend(rec, true, child as i32, TAG_BCAST, payload.clone())?;
            }
        }
        Ok(())
    }

    fn bcast_pipeline(&mut self, rec: &CommRec, buf: &mut [u8], root: usize) -> OmpiResult<()> {
        let n = rec.size();
        let me = rec.my_rank as usize;
        let rel = (me + n - root) % n;
        let seg = self.tuning().pipeline_segment.max(1);
        let nseg = buf.len().div_ceil(seg);
        let prev = if rel > 0 {
            Some(((rel - 1) + root) % n)
        } else {
            None
        };
        let next = if rel + 1 < n {
            Some(((rel + 1) + root) % n)
        } else {
            None
        };
        for k in 0..nseg {
            let lo = k * seg;
            let hi = (lo + seg).min(buf.len());
            if let Some(p) = prev {
                let got = self.xrecv(
                    rec,
                    true,
                    Want::Src(rec.world_of(p as i32)?),
                    WantTag::Tag(TAG_BCAST + 1),
                )?;
                if got.env.len() != hi - lo {
                    return Err(ompi_h::MPI_ERR_TRUNCATE);
                }
                buf[lo..hi].copy_from_slice(&got.env.payload);
            }
            if let Some(nx) = next {
                let payload = Bytes::copy_from_slice(&buf[lo..hi]);
                self.xsend(rec, true, nx as i32, TAG_BCAST + 1, payload)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reduce: linear / pipelined chain
    // ------------------------------------------------------------------

    /// `MPI_Reduce`.
    pub fn reduce(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        dt: MpiDatatype,
        op: MpiOp,
        root: i32,
        comm: MpiComm,
    ) -> OmpiResult<()> {
        let (rec, _) = self.validate_coll(comm, dt, sendbuf.len())?;
        let root = Self::validate_root(&rec, root)?;
        self.validate_op(op)?;
        let me = rec.my_rank as usize;
        if me == root && recvbuf.len() != sendbuf.len() {
            return Err(ompi_h::MPI_ERR_COUNT);
        }
        if rec.size() == 1 {
            recvbuf.copy_from_slice(sendbuf);
            return Ok(());
        }
        if sendbuf.len() <= self.tuning().pipeline_segment {
            self.reduce_linear(&rec, sendbuf, recvbuf, dt, op, root)
        } else {
            self.reduce_pipeline(&rec, sendbuf, recvbuf, dt, op, root)
        }
    }

    fn reduce_linear(
        &mut self,
        rec: &CommRec,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        dt: MpiDatatype,
        op: MpiOp,
        root: usize,
    ) -> OmpiResult<()> {
        let n = rec.size();
        let me = rec.my_rank as usize;
        if me != root {
            return self.xsend(
                rec,
                true,
                root as i32,
                TAG_REDUCE,
                Bytes::copy_from_slice(sendbuf),
            );
        }
        // Root combines contributions in strict rank order.
        let mut acc: Option<Vec<u8>> = None;
        for cr in 0..n {
            let contribution: Vec<u8> = if cr == me {
                sendbuf.to_vec()
            } else {
                let got = self.xrecv(
                    rec,
                    true,
                    Want::Src(rec.world_of(cr as i32)?),
                    WantTag::Tag(TAG_REDUCE),
                )?;
                if got.env.len() != sendbuf.len() {
                    return Err(ompi_h::MPI_ERR_TRUNCATE);
                }
                got.env.payload.to_vec()
            };
            acc = Some(match acc {
                None => contribution,
                Some(mut a) => {
                    self.combine_ordered(op, dt, &mut a, &contribution, false)?;
                    a
                }
            });
        }
        recvbuf.copy_from_slice(&acc.expect("n >= 1"));
        Ok(())
    }

    fn reduce_pipeline(
        &mut self,
        rec: &CommRec,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        dt: MpiDatatype,
        op: MpiOp,
        root: usize,
    ) -> OmpiResult<()> {
        let n = rec.size();
        let me = rec.my_rank as usize;
        // Chain in relative order with the root last: rel 0 → 1 → … → n−1.
        let rel = (me + n - root + n - 1) % n; // root gets rel n−1
        let seg = self.tuning().pipeline_segment.max(1);
        let nseg = sendbuf.len().div_ceil(seg);
        let prev = if rel > 0 {
            Some((rel - 1 + root + 1) % n)
        } else {
            None
        };
        let next = if rel + 1 < n {
            Some((rel + 1 + root + 1) % n)
        } else {
            None
        };
        let mut acc = sendbuf.to_vec();
        for k in 0..nseg {
            let lo = k * seg;
            let hi = (lo + seg).min(acc.len());
            if let Some(p) = prev {
                let got = self.xrecv(
                    rec,
                    true,
                    Want::Src(rec.world_of(p as i32)?),
                    WantTag::Tag(TAG_REDUCE + 1),
                )?;
                if got.env.len() != hi - lo {
                    return Err(ompi_h::MPI_ERR_TRUNCATE);
                }
                // Incoming covers chain-earlier ranks.
                self.combine_ordered(op, dt, &mut acc[lo..hi], &got.env.payload, true)?;
            }
            if let Some(nx) = next {
                let payload = Bytes::copy_from_slice(&acc[lo..hi]);
                self.xsend(rec, true, nx as i32, TAG_REDUCE + 1, payload)?;
            }
        }
        if me == root {
            recvbuf.copy_from_slice(&acc);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Allreduce: recursive doubling / ring
    // ------------------------------------------------------------------

    /// `MPI_Allreduce`.
    pub fn allreduce(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        dt: MpiDatatype,
        op: MpiOp,
        comm: MpiComm,
    ) -> OmpiResult<()> {
        let (rec, elem) = self.validate_coll(comm, dt, sendbuf.len())?;
        self.validate_op(op)?;
        if recvbuf.len() != sendbuf.len() {
            return Err(ompi_h::MPI_ERR_COUNT);
        }
        recvbuf.copy_from_slice(sendbuf);
        let n = rec.size();
        if n == 1 || sendbuf.is_empty() {
            return Ok(());
        }
        if sendbuf.len() <= self.tuning().allreduce_recdbl_max || sendbuf.len() / elem < n {
            self.allreduce_recdbl(&rec, recvbuf, dt, op)
        } else {
            self.allreduce_ring(&rec, recvbuf, elem, dt, op)
        }
    }

    fn allreduce_recdbl(
        &mut self,
        rec: &CommRec,
        acc: &mut [u8],
        dt: MpiDatatype,
        op: MpiOp,
    ) -> OmpiResult<()> {
        let n = rec.size();
        let me = rec.my_rank as usize;
        let pof2 = n.next_power_of_two() / if n.is_power_of_two() { 1 } else { 2 };
        let rem = n - pof2;
        // Fold extras: ranks ≥ pof2 hand their data to (me − pof2).
        let newrank = if me >= pof2 {
            self.xsend(
                &rec.clone(),
                true,
                (me - pof2) as i32,
                TAG_ALLREDUCE,
                Bytes::copy_from_slice(acc),
            )?;
            None
        } else {
            if me < rem {
                let src = rec.world_of((me + pof2) as i32)?;
                let got = self.xrecv(rec, true, Want::Src(src), WantTag::Tag(TAG_ALLREDUCE))?;
                if got.env.len() != acc.len() {
                    return Err(ompi_h::MPI_ERR_TRUNCATE);
                }
                // The extra (me + pof2) follows me in rank order.
                self.combine_ordered(op, dt, acc, &got.env.payload, false)?;
            }
            Some(me)
        };
        if let Some(nr) = newrank {
            let mut mask = 1usize;
            while mask < pof2 {
                let partner = nr ^ mask;
                self.xsend(
                    rec,
                    true,
                    partner as i32,
                    TAG_ALLREDUCE + 1,
                    Bytes::copy_from_slice(acc),
                )?;
                let got = self.xrecv(
                    rec,
                    true,
                    Want::Src(rec.world_of(partner as i32)?),
                    WantTag::Tag(TAG_ALLREDUCE + 1),
                )?;
                if got.env.len() != acc.len() {
                    return Err(ompi_h::MPI_ERR_TRUNCATE);
                }
                self.combine_ordered(op, dt, acc, &got.env.payload, partner < nr)?;
                mask <<= 1;
            }
            if nr < rem {
                self.xsend(
                    rec,
                    true,
                    (nr + pof2) as i32,
                    TAG_ALLREDUCE + 2,
                    Bytes::copy_from_slice(acc),
                )?;
            }
        } else {
            let src = rec.world_of((me - pof2) as i32)?;
            let got = self.xrecv(rec, true, Want::Src(src), WantTag::Tag(TAG_ALLREDUCE + 2))?;
            acc.copy_from_slice(&got.env.payload);
        }
        Ok(())
    }

    /// Ring allreduce: reduce-scatter ring then allgather ring, 2(n−1)
    /// steps of 1/n-sized chunks — the bandwidth-optimal large-message
    /// algorithm.
    fn allreduce_ring(
        &mut self,
        rec: &CommRec,
        acc: &mut [u8],
        elem: usize,
        dt: MpiDatatype,
        op: MpiOp,
    ) -> OmpiResult<()> {
        let n = rec.size();
        let me = rec.my_rank as usize;
        let lens: Vec<usize> = chunk_lengths(acc.len() / elem, n)
            .into_iter()
            .map(|l| l * elem)
            .collect();
        let offs = offsets(&lens);
        let next = ((me + 1) % n) as i32;
        let prev_world = rec.world_of(((me + n - 1) % n) as i32)?;

        // Reduce-scatter phase.
        for s in 0..n - 1 {
            let send_c = (me + n - s) % n;
            let recv_c = (me + n - s - 1) % n;
            let payload = Bytes::copy_from_slice(&acc[offs[send_c]..offs[send_c] + lens[send_c]]);
            self.xsend(rec, true, next, TAG_ALLREDUCE + 3, payload)?;
            let got = self.xrecv(
                rec,
                true,
                Want::Src(prev_world),
                WantTag::Tag(TAG_ALLREDUCE + 3),
            )?;
            if got.env.len() != lens[recv_c] {
                return Err(ompi_h::MPI_ERR_TRUNCATE);
            }
            let span = &mut acc[offs[recv_c]..offs[recv_c] + lens[recv_c]];
            // Ring ordering is not rank ordering; fine for the commutative
            // predefined ops (user ops must be commutative for ring — the
            // tuned decision function respects `commute` in real Open MPI;
            // we document the same requirement).
            self.combine_ordered(op, dt, span, &got.env.payload, true)?;
        }
        // Allgather phase.
        for s in 0..n - 1 {
            let send_c = (me + 1 + n - s) % n;
            let recv_c = (me + n - s) % n;
            let payload = Bytes::copy_from_slice(&acc[offs[send_c]..offs[send_c] + lens[send_c]]);
            self.xsend(rec, true, next, TAG_ALLREDUCE + 4, payload)?;
            let got = self.xrecv(
                rec,
                true,
                Want::Src(prev_world),
                WantTag::Tag(TAG_ALLREDUCE + 4),
            )?;
            if got.env.len() != lens[recv_c] {
                return Err(ompi_h::MPI_ERR_TRUNCATE);
            }
            acc[offs[recv_c]..offs[recv_c] + lens[recv_c]].copy_from_slice(&got.env.payload);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Gather / Scatter: linear
    // ------------------------------------------------------------------

    /// `MPI_Gather` (linear: every rank sends straight to the root).
    pub fn gather(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        dt: MpiDatatype,
        root: i32,
        comm: MpiComm,
    ) -> OmpiResult<()> {
        let (rec, _) = self.validate_coll(comm, dt, sendbuf.len())?;
        let root = Self::validate_root(&rec, root)?;
        let n = rec.size();
        let me = rec.my_rank as usize;
        let block = sendbuf.len();
        if me == root {
            if recvbuf.len() != block * n {
                return Err(ompi_h::MPI_ERR_COUNT);
            }
            recvbuf[me * block..(me + 1) * block].copy_from_slice(sendbuf);
            for cr in (0..n).filter(|&cr| cr != me) {
                let got = self.xrecv(
                    &rec,
                    true,
                    Want::Src(rec.world_of(cr as i32)?),
                    WantTag::Tag(TAG_GATHER),
                )?;
                if got.env.len() != block {
                    return Err(ompi_h::MPI_ERR_TRUNCATE);
                }
                recvbuf[cr * block..(cr + 1) * block].copy_from_slice(&got.env.payload);
            }
            Ok(())
        } else {
            self.xsend(
                &rec,
                true,
                root as i32,
                TAG_GATHER,
                Bytes::copy_from_slice(sendbuf),
            )
        }
    }

    /// `MPI_Scatter` (linear).
    pub fn scatter(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        dt: MpiDatatype,
        root: i32,
        comm: MpiComm,
    ) -> OmpiResult<()> {
        let (rec, _) = self.validate_coll(comm, dt, recvbuf.len())?;
        let root = Self::validate_root(&rec, root)?;
        let n = rec.size();
        let me = rec.my_rank as usize;
        let block = recvbuf.len();
        if me == root {
            if sendbuf.len() != block * n {
                return Err(ompi_h::MPI_ERR_COUNT);
            }
            for cr in (0..n).filter(|&cr| cr != me) {
                let payload = Bytes::copy_from_slice(&sendbuf[cr * block..(cr + 1) * block]);
                self.xsend(&rec, true, cr as i32, TAG_SCATTER, payload)?;
            }
            recvbuf.copy_from_slice(&sendbuf[me * block..(me + 1) * block]);
            Ok(())
        } else {
            let got = self.xrecv(
                &rec,
                true,
                Want::Src(rec.world_of(root as i32)?),
                WantTag::Tag(TAG_SCATTER),
            )?;
            if got.env.len() != block {
                return Err(ompi_h::MPI_ERR_TRUNCATE);
            }
            recvbuf.copy_from_slice(&got.env.payload);
            Ok(())
        }
    }

    // ------------------------------------------------------------------
    // Allgather: recursive doubling (p2) / ring
    // ------------------------------------------------------------------

    /// `MPI_Allgather`.
    pub fn allgather(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        dt: MpiDatatype,
        comm: MpiComm,
    ) -> OmpiResult<()> {
        let (rec, _) = self.validate_coll(comm, dt, sendbuf.len())?;
        let n = rec.size();
        let block = sendbuf.len();
        if recvbuf.len() != block * n {
            return Err(ompi_h::MPI_ERR_COUNT);
        }
        if n == 1 {
            recvbuf.copy_from_slice(sendbuf);
            return Ok(());
        }
        let small = block * n <= self.tuning().allgather_neighbor_max;
        if small && n.is_power_of_two() {
            self.allgather_recdbl(&rec, sendbuf, recvbuf, block)
        } else {
            self.allgather_ring(&rec, sendbuf, recvbuf, block)
        }
    }

    fn allgather_recdbl(
        &mut self,
        rec: &CommRec,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        block: usize,
    ) -> OmpiResult<()> {
        let n = rec.size();
        let me = rec.my_rank as usize;
        recvbuf[me * block..(me + 1) * block].copy_from_slice(sendbuf);
        let mut mask = 1usize;
        while mask < n {
            let partner = me ^ mask;
            let my_lo = me & !(mask - 1);
            let their_lo = partner & !(mask - 1);
            let payload = Bytes::copy_from_slice(&recvbuf[my_lo * block..(my_lo + mask) * block]);
            self.xsend(rec, true, partner as i32, TAG_ALLGATHER, payload)?;
            let got = self.xrecv(
                rec,
                true,
                Want::Src(rec.world_of(partner as i32)?),
                WantTag::Tag(TAG_ALLGATHER),
            )?;
            if got.env.len() != mask * block {
                return Err(ompi_h::MPI_ERR_TRUNCATE);
            }
            recvbuf[their_lo * block..(their_lo + mask) * block].copy_from_slice(&got.env.payload);
            mask <<= 1;
        }
        Ok(())
    }

    fn allgather_ring(
        &mut self,
        rec: &CommRec,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        block: usize,
    ) -> OmpiResult<()> {
        let n = rec.size();
        let me = rec.my_rank as usize;
        recvbuf[me * block..(me + 1) * block].copy_from_slice(sendbuf);
        let next = ((me + 1) % n) as i32;
        let prev_world = rec.world_of(((me + n - 1) % n) as i32)?;
        for s in 0..n - 1 {
            let send_i = (me + n - s) % n;
            let recv_i = (me + n - s - 1) % n;
            let payload = Bytes::copy_from_slice(&recvbuf[send_i * block..(send_i + 1) * block]);
            self.xsend(rec, true, next, TAG_ALLGATHER + 1, payload)?;
            let got = self.xrecv(
                rec,
                true,
                Want::Src(prev_world),
                WantTag::Tag(TAG_ALLGATHER + 1),
            )?;
            if got.env.len() != block {
                return Err(ompi_h::MPI_ERR_TRUNCATE);
            }
            recvbuf[recv_i * block..(recv_i + 1) * block].copy_from_slice(&got.env.payload);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Alltoall: posted linear / pairwise
    // ------------------------------------------------------------------

    /// `MPI_Alltoall`.
    pub fn alltoall(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        dt: MpiDatatype,
        comm: MpiComm,
    ) -> OmpiResult<()> {
        let (rec, _) = self.validate_coll(comm, dt, sendbuf.len())?;
        let n = rec.size();
        if sendbuf.len() != recvbuf.len() || !sendbuf.len().is_multiple_of(n) {
            return Err(ompi_h::MPI_ERR_COUNT);
        }
        let block = sendbuf.len() / n;
        if n == 1 {
            recvbuf.copy_from_slice(sendbuf);
            return Ok(());
        }
        if block <= self.tuning().alltoall_linear_max {
            self.alltoall_linear(&rec, sendbuf, recvbuf, block)
        } else {
            self.alltoall_pairwise(&rec, sendbuf, recvbuf, block)
        }
    }

    fn alltoall_linear(
        &mut self,
        rec: &CommRec,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        block: usize,
    ) -> OmpiResult<()> {
        let n = rec.size();
        let me = rec.my_rank as usize;
        recvbuf[me * block..(me + 1) * block]
            .copy_from_slice(&sendbuf[me * block..(me + 1) * block]);
        for off in 1..n {
            let dst = (me + off) % n;
            let payload = Bytes::copy_from_slice(&sendbuf[dst * block..(dst + 1) * block]);
            self.xsend(rec, true, dst as i32, TAG_ALLTOALL, payload)?;
        }
        for off in 1..n {
            let src = (me + n - off) % n;
            let got = self.xrecv(
                rec,
                true,
                Want::Src(rec.world_of(src as i32)?),
                WantTag::Tag(TAG_ALLTOALL),
            )?;
            if got.env.len() != block {
                return Err(ompi_h::MPI_ERR_TRUNCATE);
            }
            recvbuf[src * block..(src + 1) * block].copy_from_slice(&got.env.payload);
        }
        Ok(())
    }

    fn alltoall_pairwise(
        &mut self,
        rec: &CommRec,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        block: usize,
    ) -> OmpiResult<()> {
        let n = rec.size();
        let me = rec.my_rank as usize;
        recvbuf[me * block..(me + 1) * block]
            .copy_from_slice(&sendbuf[me * block..(me + 1) * block]);
        for step in 1..n {
            let dst = (me + step) % n;
            let src = (me + n - step) % n;
            let payload = Bytes::copy_from_slice(&sendbuf[dst * block..(dst + 1) * block]);
            self.xsend(rec, true, dst as i32, TAG_ALLTOALL + 1, payload)?;
            let got = self.xrecv(
                rec,
                true,
                Want::Src(rec.world_of(src as i32)?),
                WantTag::Tag(TAG_ALLTOALL + 1),
            )?;
            if got.env.len() != block {
                return Err(ompi_h::MPI_ERR_TRUNCATE);
            }
            recvbuf[src * block..(src + 1) * block].copy_from_slice(&got.env.payload);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Scan: linear chain
    // ------------------------------------------------------------------

    /// `MPI_Scan` (inclusive prefix; linear chain, Open MPI `basic` style).
    pub fn scan(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        dt: MpiDatatype,
        op: MpiOp,
        comm: MpiComm,
    ) -> OmpiResult<()> {
        let (rec, _) = self.validate_coll(comm, dt, sendbuf.len())?;
        self.validate_op(op)?;
        if recvbuf.len() != sendbuf.len() {
            return Err(ompi_h::MPI_ERR_COUNT);
        }
        let n = rec.size();
        let me = rec.my_rank as usize;
        recvbuf.copy_from_slice(sendbuf);
        if me > 0 {
            let src = rec.world_of((me - 1) as i32)?;
            let got = self.xrecv(&rec, true, Want::Src(src), WantTag::Tag(TAG_SCAN))?;
            if got.env.len() != recvbuf.len() {
                return Err(ompi_h::MPI_ERR_TRUNCATE);
            }
            self.combine_ordered(op, dt, recvbuf, &got.env.payload, true)?;
        }
        if me + 1 < n {
            self.xsend(
                &rec,
                true,
                (me + 1) as i32,
                TAG_SCAN,
                Bytes::copy_from_slice(recvbuf),
            )?;
        }
        Ok(())
    }

    pub(crate) fn tuning(&self) -> &crate::tuning::Tuning {
        &self.tuning
    }
}
