//! Virtual ids and the object-creation replay log.
//!
//! The application (upper half) never sees a real MPI handle: `libmana.so`
//! hands out **virtual ids** and keeps the mapping to the current lower
//! half's real handles. Because only virtual ids live in checkpointed
//! memory, the lower half can be discarded and rebuilt — under a different
//! MPI implementation — by replaying the recorded creation log in order;
//! the MPI semantics of the creation calls (collective context-id
//! agreement etc.) guarantee the rebuilt objects are semantically
//! equivalent, which is the virtual-id design of MANA \[20\] this paper
//! rests on.

use std::collections::HashMap;

use dmtcp_sim::codec::{CodecError, Reader, Writer};
use mpi_abi::{AbiError, AbiResult, Handle, HandleKind, MpiAbi};

use crate::ops;

/// How a dynamic MPI object was created (in terms of *virtual* parents).
#[derive(Debug, Clone, PartialEq)]
pub enum Recipe {
    /// `comm_dup(parent)`.
    CommDup {
        /// Virtual id of the parent communicator.
        parent: Handle,
    },
    /// `comm_split(parent, color, key)`.
    CommSplit {
        /// Virtual id of the parent communicator.
        parent: Handle,
        /// This rank's color argument.
        color: i32,
        /// This rank's key argument.
        key: i32,
    },
    /// `type_contiguous(count, base)`.
    TypeContiguous {
        /// Element repetition count.
        count: i32,
        /// Virtual id (or predefined handle) of the base type.
        base: Handle,
    },
    /// `op_create(func, commute)` with a registry-resolved function name.
    OpUser {
        /// Registered name of the reduction function.
        name: String,
        /// Commutativity flag.
        commute: bool,
    },
}

/// One entry of the replay log.
#[derive(Debug, Clone, PartialEq)]
pub enum LogEntry {
    /// An object was created. `vid` may be [`Handle::COMM_NULL`] for a
    /// `comm_split` that returned no communicator on this rank — the call
    /// must still be replayed (it is collective).
    Create {
        /// Virtual id assigned (or a null handle).
        vid: Handle,
        /// Creation recipe.
        recipe: Recipe,
    },
    /// `type_commit(vid)`.
    Commit {
        /// Virtual id of the datatype.
        vid: Handle,
    },
    /// The object was freed.
    Free {
        /// Virtual id of the freed object.
        vid: Handle,
    },
}

/// The virtual-id table of one rank's upper half.
pub struct VidTable {
    to_real: HashMap<Handle, Handle>,
    /// Cached communicator sizes (for the collective overhead model),
    /// keyed by virtual id.
    comm_sizes: HashMap<Handle, usize>,
    log: Vec<LogEntry>,
    next_slot: [u32; 4], // comm, datatype, op, request namespaces
}

fn kind_index(kind: HandleKind) -> usize {
    match kind {
        HandleKind::Comm => 0,
        HandleKind::Datatype => 1,
        HandleKind::Op => 2,
        HandleKind::Request => 3,
        _ => panic!("no virtual ids for {kind:?}"),
    }
}

impl VidTable {
    /// Fresh table with the predefined communicators cached.
    pub fn new(world_size: usize) -> VidTable {
        let mut comm_sizes = HashMap::new();
        comm_sizes.insert(Handle::COMM_WORLD, world_size);
        comm_sizes.insert(Handle::COMM_SELF, 1);
        VidTable {
            to_real: HashMap::new(),
            comm_sizes,
            log: Vec::new(),
            next_slot: [Handle::FIRST_DYNAMIC_INDEX; 4],
        }
    }

    /// Allocate a fresh virtual id of a kind.
    pub fn alloc(&mut self, kind: HandleKind) -> Handle {
        let idx = kind_index(kind);
        let slot = self.next_slot[idx];
        self.next_slot[idx] += 1;
        Handle::dynamic(kind, slot)
    }

    /// Bind a virtual id to the current lower half's real handle.
    pub fn bind(&mut self, vid: Handle, real: Handle) {
        self.to_real.insert(vid, real);
    }

    /// Translate a virtual handle to the current real handle. Predefined
    /// handles pass through unchanged (their values are fixed by the ABI).
    pub fn real_of(&self, vid: Handle) -> AbiResult<Handle> {
        if vid.is_predefined() {
            return Ok(vid);
        }
        self.to_real
            .get(&vid)
            .copied()
            .ok_or_else(|| AbiError::for_kind(vid.kind()))
    }

    /// Drop a virtual id's binding (on free).
    pub fn unbind(&mut self, vid: Handle) -> Option<Handle> {
        self.comm_sizes.remove(&vid);
        self.to_real.remove(&vid)
    }

    /// Record a log entry.
    pub fn record(&mut self, entry: LogEntry) {
        self.log.push(entry);
    }

    /// Cache a communicator's size.
    pub fn cache_comm_size(&mut self, vid: Handle, size: usize) {
        self.comm_sizes.insert(vid, size);
    }

    /// Cached communicator size, if known.
    pub fn comm_size_of(&self, vid: Handle) -> Option<usize> {
        self.comm_sizes.get(&vid).copied()
    }

    /// Virtual ids of all live communicators (predefined + dynamic), in a
    /// deterministic order — the drain protocol probes each of these.
    pub fn live_comms(&self) -> Vec<Handle> {
        let mut comms = vec![Handle::COMM_WORLD, Handle::COMM_SELF];
        let mut dynamic: Vec<Handle> = self
            .to_real
            .keys()
            .filter(|h| h.kind() == HandleKind::Comm)
            .copied()
            .collect();
        dynamic.sort_unstable();
        comms.extend(dynamic);
        comms
    }

    /// The replay log (for serialization).
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// Number of live dynamic objects.
    pub fn live_objects(&self) -> usize {
        self.to_real.len()
    }

    /// Rebuild a table against a fresh lower half by replaying `log`.
    ///
    /// Executes every logged call in order through `lower`; the calls are
    /// collective where MPI says so, so all ranks must replay in lockstep
    /// (they do: restart runs this before the application resumes).
    pub fn replay(
        log: Vec<LogEntry>,
        world_size: usize,
        lower: &mut dyn MpiAbi,
    ) -> AbiResult<VidTable> {
        let mut table = VidTable::new(world_size);
        for entry in &log {
            match entry {
                LogEntry::Create { vid, recipe } => {
                    let real = match recipe {
                        Recipe::CommDup { parent } => {
                            let p = table.real_of(*parent)?;
                            Some(lower.comm_dup(p)?)
                        }
                        Recipe::CommSplit { parent, color, key } => {
                            let p = table.real_of(*parent)?;
                            let r = lower.comm_split(p, *color, *key)?;
                            if r == Handle::COMM_NULL {
                                None
                            } else {
                                Some(r)
                            }
                        }
                        Recipe::TypeContiguous { count, base } => {
                            let b = table.real_of(*base)?;
                            Some(lower.type_contiguous(*count, b)?)
                        }
                        Recipe::OpUser { name, commute } => {
                            let func = ops::lookup(name).ok_or(AbiError::Unsupported)?;
                            Some(lower.op_create(func, *commute)?)
                        }
                    };
                    match (vid, real) {
                        (v, Some(r)) if !v.is_null() => {
                            table.bind(*v, r);
                            if v.kind() == HandleKind::Comm {
                                let size = lower.comm_size(r)? as usize;
                                table.cache_comm_size(*v, size);
                            }
                            // Keep vid allocation in sync so post-restart
                            // creations continue the same sequence.
                            let idx = kind_index(v.kind());
                            table.next_slot[idx] = table.next_slot[idx].max(v.index() + 1);
                        }
                        (v, None) if v.is_null() => {}
                        _ => return Err(AbiError::Intern),
                    }
                }
                LogEntry::Commit { vid } => {
                    let real = table.real_of(*vid)?;
                    lower.type_commit(real)?;
                }
                LogEntry::Free { vid } => {
                    let real = table.unbind(*vid).ok_or(AbiError::Arg)?;
                    match vid.kind() {
                        HandleKind::Comm => lower.comm_free(real)?,
                        HandleKind::Datatype => lower.type_free(real)?,
                        HandleKind::Op => lower.op_free(real)?,
                        _ => return Err(AbiError::Intern),
                    }
                }
            }
        }
        table.log = log;
        Ok(table)
    }

    // ---- serialization ---------------------------------------------------

    /// Encode the replay log.
    pub fn encode_log(&self, w: &mut Writer) {
        w.u64(self.log.len() as u64);
        for entry in &self.log {
            match entry {
                LogEntry::Create { vid, recipe } => {
                    w.u8(0);
                    w.u64(vid.raw());
                    match recipe {
                        Recipe::CommDup { parent } => {
                            w.u8(0);
                            w.u64(parent.raw());
                        }
                        Recipe::CommSplit { parent, color, key } => {
                            w.u8(1);
                            w.u64(parent.raw());
                            w.i32(*color);
                            w.i32(*key);
                        }
                        Recipe::TypeContiguous { count, base } => {
                            w.u8(2);
                            w.i32(*count);
                            w.u64(base.raw());
                        }
                        Recipe::OpUser { name, commute } => {
                            w.u8(3);
                            w.string(name);
                            w.u8(*commute as u8);
                        }
                    }
                }
                LogEntry::Commit { vid } => {
                    w.u8(1);
                    w.u64(vid.raw());
                }
                LogEntry::Free { vid } => {
                    w.u8(2);
                    w.u64(vid.raw());
                }
            }
        }
    }

    /// Decode a replay log.
    pub fn decode_log(r: &mut Reader<'_>) -> Result<Vec<LogEntry>, CodecError> {
        let count = r.u64()?;
        if count > 1 << 24 {
            return Err(CodecError::LengthOutOfBounds(count));
        }
        let mut log = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let entry = match r.u8()? {
                0 => {
                    let vid = Handle::from_raw(r.u64()?);
                    let recipe = match r.u8()? {
                        0 => Recipe::CommDup {
                            parent: Handle::from_raw(r.u64()?),
                        },
                        1 => Recipe::CommSplit {
                            parent: Handle::from_raw(r.u64()?),
                            color: r.i32()?,
                            key: r.i32()?,
                        },
                        2 => Recipe::TypeContiguous {
                            count: r.i32()?,
                            base: Handle::from_raw(r.u64()?),
                        },
                        3 => Recipe::OpUser {
                            name: r.string()?,
                            commute: r.u8()? != 0,
                        },
                        t => return Err(CodecError::LengthOutOfBounds(t as u64)),
                    };
                    LogEntry::Create { vid, recipe }
                }
                1 => LogEntry::Commit {
                    vid: Handle::from_raw(r.u64()?),
                },
                2 => LogEntry::Free {
                    vid: Handle::from_raw(r.u64()?),
                },
                t => return Err(CodecError::LengthOutOfBounds(t as u64)),
            };
            log.push(entry);
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_monotonic_per_kind() {
        let mut t = VidTable::new(4);
        let c1 = t.alloc(HandleKind::Comm);
        let c2 = t.alloc(HandleKind::Comm);
        let d1 = t.alloc(HandleKind::Datatype);
        assert_ne!(c1, c2);
        assert_eq!(c1.kind(), HandleKind::Comm);
        assert_eq!(d1.kind(), HandleKind::Datatype);
        assert_eq!(c2.index(), c1.index() + 1);
    }

    #[test]
    fn predefined_pass_through() {
        let t = VidTable::new(4);
        assert_eq!(t.real_of(Handle::COMM_WORLD).unwrap(), Handle::COMM_WORLD);
        assert_eq!(
            t.real_of(mpi_abi::Datatype::Double.handle()).unwrap(),
            mpi_abi::Datatype::Double.handle()
        );
        assert_eq!(t.comm_size_of(Handle::COMM_WORLD), Some(4));
        assert_eq!(t.comm_size_of(Handle::COMM_SELF), Some(1));
    }

    #[test]
    fn bind_translate_unbind() {
        let mut t = VidTable::new(2);
        let vid = t.alloc(HandleKind::Comm);
        let real = Handle::dynamic(HandleKind::Comm, 0x9999);
        t.bind(vid, real);
        t.cache_comm_size(vid, 2);
        assert_eq!(t.real_of(vid).unwrap(), real);
        assert_eq!(t.live_objects(), 1);
        assert_eq!(
            t.live_comms(),
            vec![Handle::COMM_WORLD, Handle::COMM_SELF, vid]
        );
        assert_eq!(t.unbind(vid), Some(real));
        assert!(t.real_of(vid).is_err());
        assert_eq!(t.comm_size_of(vid), None);
    }

    #[test]
    fn log_round_trips_through_codec() {
        let mut t = VidTable::new(2);
        let c = t.alloc(HandleKind::Comm);
        let d = t.alloc(HandleKind::Datatype);
        t.record(LogEntry::Create {
            vid: c,
            recipe: Recipe::CommDup {
                parent: Handle::COMM_WORLD,
            },
        });
        t.record(LogEntry::Create {
            vid: d,
            recipe: Recipe::TypeContiguous {
                count: 3,
                base: mpi_abi::Datatype::Double.handle(),
            },
        });
        t.record(LogEntry::Commit { vid: d });
        t.record(LogEntry::Create {
            vid: Handle::COMM_NULL,
            recipe: Recipe::CommSplit {
                parent: c,
                color: -32766,
                key: 0,
            },
        });
        t.record(LogEntry::Free { vid: d });
        let op_vid = t.alloc(HandleKind::Op);
        t.record(LogEntry::Create {
            vid: op_vid,
            recipe: Recipe::OpUser {
                name: "my.op".into(),
                commute: true,
            },
        });

        let mut w = Writer::new();
        t.encode_log(&mut w);
        let buf = w.finish();
        let mut r = Reader::checked(&buf).unwrap();
        let log = VidTable::decode_log(&mut r).unwrap();
        assert_eq!(log, t.log().to_vec());
    }
}
