//! # mpi-apps — the paper's evaluation workloads
//!
//! Every workload the paper measures, implemented once against the
//! portable API (`stool::MpiProgram`) and therefore runnable unchanged on
//! every stack configuration — native vendor, +Mukautuva, +Mukautuva+MANA:
//!
//! * [`osu`] — OSU Micro-Benchmark-style latency kernels for
//!   `MPI_Alltoall`, `MPI_Bcast`, `MPI_Allreduce` (Figs. 2–4), including
//!   the paper's *modified* alltoall with a post-warmup sleep window for
//!   the Fig. 6 checkpoint;
//! * [`wave`] — the 1-D wave equation solver (Burkardt's `wave_mpi`):
//!   domain decomposition with nearest-neighbour exchange, against an
//!   exact analytic solution;
//! * [`comd`] — a CoMD-like classical molecular-dynamics mini-app:
//!   Lennard-Jones forces with cell lists, velocity-Verlet integration,
//!   halo exchange and atom migration between neighbouring domains,
//!   energy diagnostics via reductions.
//!
//! All three keep their evolving state in checkpointable memory and expose
//! a safe point every step, so any of them can be checkpointed under one
//! MPI library and restarted under the other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comd;
pub mod osu;
pub mod wave;

pub use comd::CoMdMini;
pub use osu::{OsuKernel, OsuLatency};
pub use wave::WaveMpi;
