//! The fabric: rank-to-rank FIFO mailboxes plus fail-stop fault injection.
//!
//! Each destination rank owns a **striped mailbox**: the arrival queue is
//! split into `nstripes` lock stripes keyed by *source* rank
//! (`src % nstripes`), so concurrent senders to the same destination only
//! contend when they share a stripe — and senders in different stripes
//! never touch the same lock. Per (src, dst) pair, delivery order equals
//! send order (one source always lands in one stripe, whose queue is
//! FIFO), which is exactly the non-overtaking guarantee MPI point-to-point
//! semantics require from the transport. Cross-sender arrival order is
//! defined by a per-destination atomic **arrival stamp** taken at push
//! time; receivers merge the stripes in stamp order, so a single-threaded
//! send schedule is observed exactly in send order, as before striping.
//!
//! The fabric is **event-driven**: blocked receivers sleep on their
//! mailbox's condition variable and are woken by the arrival of a message,
//! by [`Fabric::shutdown`], or by [`Fabric::fail_rank`] — there is no
//! polling interval, so failure-detection and shutdown latency is one
//! condvar wakeup, not a timer tick. The condvar's guard mutex (the
//! *gate*) protects nothing but the sleep itself: senders take and release
//! it before notifying (and writers that flip the shutdown/failed flags do
//! the same), so a receiver that checked the queues and flags under the
//! gate and is about to sleep cannot miss the wakeup. Senders skip the
//! gate entirely while no receiver is registered as waiting, which keeps
//! the 512-rank incast fast path at one stripe lock per send.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use bytes::Bytes;

use crate::cluster::ClusterSpec;
use crate::envelope::Envelope;
use crate::error::{SimError, SimResult};
use crate::rank::RankCtx;
use crate::telemetry::{Counter, Telemetry};

/// Default number of lock stripes per destination mailbox. Eight stripes
/// keep the per-mailbox footprint trivial while making an all-to-one
/// incast from hundreds of senders contend on eight locks instead of one.
pub const DEFAULT_STRIPES: usize = 8;

/// A queued envelope tagged with its destination-wide arrival stamp.
type Stamped = (u64, Envelope);

/// A held stripe lock during the take-next front scan.
type StripeGuard<'a> = std::sync::MutexGuard<'a, VecDeque<Stamped>>;

/// One lock stripe of a mailbox: envelopes from sources mapping to this
/// stripe, each tagged with its destination-wide arrival stamp.
#[derive(Default)]
struct Stripe {
    queue: Mutex<VecDeque<Stamped>>,
}

/// One rank's inbox: striped arrival queues, the merge stamp, and the
/// condvar blocked receivers sleep on.
struct Mailbox {
    /// Next arrival stamp for this destination; the stripe merge key.
    arrivals: AtomicU64,
    /// Envelopes currently queued across all stripes.
    queued: AtomicUsize,
    /// Receivers currently registered on the condvar. Senders skip the
    /// gate lock + notify when this is zero.
    waiters: AtomicUsize,
    stripes: Vec<Stripe>,
    /// Guard mutex for the sleep; guards no data.
    gate: Mutex<()>,
    arrived: Condvar,
}

impl Mailbox {
    fn new(nstripes: usize) -> Mailbox {
        Mailbox {
            arrivals: AtomicU64::new(0),
            queued: AtomicUsize::new(0),
            waiters: AtomicUsize::new(0),
            stripes: (0..nstripes.max(1)).map(|_| Stripe::default()).collect(),
            gate: Mutex::new(()),
            arrived: Condvar::new(),
        }
    }

    /// Enqueue one envelope from `src` and wake a sleeping receiver if one
    /// is registered. Only the stripe lock is taken on the fast path.
    /// Returns whether a sleeping receiver was woken.
    fn push(&self, src: usize, env: Envelope) -> bool {
        let stamp = self.arrivals.fetch_add(1, Ordering::SeqCst);
        let stripe = &self.stripes[src % self.stripes.len()];
        {
            let mut queue = stripe.queue.lock().expect("stripe lock poisoned");
            queue.push_back((stamp, env));
            // Incremented while the stripe lock is held: a receiver that
            // pops or drains this envelope first had to acquire the same
            // lock, so its matching decrement can never run before this
            // increment (`queued` counts down but never underflows).
            self.queued.fetch_add(1, Ordering::SeqCst);
        }
        // The receiver registers in `waiters` *before* its final emptiness
        // check (both SeqCst): if we read zero here, the receiver's check
        // is ordered after our `queued` increment and it will not sleep.
        if self.waiters.load(Ordering::SeqCst) > 0 {
            self.wake_one();
            return true;
        }
        false
    }

    /// Pop the queued envelope with the smallest arrival stamp, if any.
    /// Only the owning endpoint pops, so a peeked front cannot be stolen.
    fn take_next(&self) -> Option<Envelope> {
        // Empty-mailbox fast path: one atomic load instead of a scan over
        // every stripe lock (this is what recv_raw's wakeup retries and
        // poll-shaped progress loops hit most of the time).
        if self.queued.load(Ordering::SeqCst) == 0 {
            return None;
        }
        // Scan stripe fronts keeping the current winner's guard, so the
        // winning stripe is not re-locked to pop. At most two stripe locks
        // are held at once and only by the single receiver — senders take
        // exactly one — so no lock cycle can form.
        let mut best: Option<(u64, StripeGuard<'_>)> = None;
        for stripe in &self.stripes {
            let guard = stripe.queue.lock().expect("stripe lock poisoned");
            let stamp = match guard.front() {
                Some((stamp, _)) => *stamp,
                None => continue,
            };
            if best.as_ref().is_none_or(|(s, _)| stamp < *s) {
                best = Some((stamp, guard));
            }
        }
        let (_, mut queue) = best?;
        let (_, env) = queue
            .pop_front()
            .expect("front cannot vanish under the single receiver");
        self.queued.fetch_sub(1, Ordering::SeqCst);
        Some(env)
    }

    /// Drain every stripe into `into`, merged in arrival-stamp order.
    fn drain_into(&self, into: &mut Vec<Envelope>) -> usize {
        let mut batch: Vec<(u64, Envelope)> =
            Vec::with_capacity(self.queued.load(Ordering::SeqCst));
        for stripe in &self.stripes {
            let mut queue = stripe.queue.lock().expect("stripe lock poisoned");
            // Decremented under the stripe lock, like the push increment,
            // so the counter cannot transiently underflow.
            self.queued.fetch_sub(queue.len(), Ordering::SeqCst);
            batch.extend(queue.drain(..));
        }
        batch.sort_unstable_by_key(|(stamp, _)| *stamp);
        let n = batch.len();
        into.extend(batch.into_iter().map(|(_, env)| env));
        n
    }

    /// Wake one sleeping receiver. Acquiring (and immediately releasing)
    /// the gate first closes the race with a receiver that has checked the
    /// queues and flags and is entering `Condvar::wait`: the notifier
    /// either runs before the receiver's check (the new state is visible)
    /// or after the wait released the gate (the notification is
    /// delivered).
    fn wake_one(&self) {
        drop(self.gate.lock().expect("mailbox gate poisoned"));
        self.arrived.notify_one();
    }

    /// Wake every receiver blocked on this mailbox (shutdown / fail-stop).
    fn wake_all(&self) {
        drop(self.gate.lock().expect("mailbox gate poisoned"));
        self.arrived.notify_all();
    }
}

/// The fabric's attached flight recorder plus cached counter handles,
/// so the send and match hot paths pay one atomic add per metric
/// instead of a registry lookup.
pub(crate) struct FabricTelemetry {
    pub(crate) tel: Arc<Telemetry>,
    sends: Counter,
    wakeups: Counter,
    broadcast_wakeups: Counter,
    /// Successful message matches (exact + wildcard), fed by [`crate::matching`].
    pub(crate) match_hits: Counter,
    /// Wildcard receives that had to scan candidate bucket fronts.
    pub(crate) wildcard_scans: Counter,
    /// Total candidate buckets compared across all wildcard scans.
    pub(crate) wildcard_scanned: Counter,
}

struct Shared {
    nranks: usize,
    failed: Vec<AtomicBool>,
    /// Number of ranks currently marked failed. Blocked receivers check
    /// this single counter instead of scanning the per-rank flags; the
    /// O(nranks) scan happens only when a failure actually exists.
    failed_count: AtomicUsize,
    shutdown: AtomicBool,
    /// When true, blocked receivers report peer failures as errors
    /// (fault-tolerant mode); when false they keep waiting, like a
    /// non-fault-tolerant MPI would.
    failure_detection: AtomicBool,
    mailboxes: Vec<Mailbox>,
    /// Attached at most once, before ranks start; absent on bare fabrics.
    telemetry: OnceLock<FabricTelemetry>,
}

/// Handle to the whole fabric: constructs endpoints, injects failures,
/// forces shutdown.
#[derive(Clone)]
pub struct Fabric {
    shared: Arc<Shared>,
}

impl Fabric {
    /// Build a fabric for `spec` with the default stripe count and hand
    /// out one endpoint per rank.
    pub fn new(spec: &ClusterSpec) -> (Fabric, Vec<Endpoint>) {
        Fabric::with_stripes(spec, DEFAULT_STRIPES)
    }

    /// Like [`Fabric::new`] with an explicit number of mailbox lock
    /// stripes per destination (clamped to at least one). One stripe
    /// reproduces the pre-striping single-lock mailbox exactly.
    pub fn with_stripes(spec: &ClusterSpec, nstripes: usize) -> (Fabric, Vec<Endpoint>) {
        let nranks = spec.nranks();
        let nstripes = nstripes.clamp(1, nranks.max(1));
        let shared = Arc::new(Shared {
            nranks,
            failed: (0..nranks).map(|_| AtomicBool::new(false)).collect(),
            failed_count: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            failure_detection: AtomicBool::new(false),
            mailboxes: (0..nranks).map(|_| Mailbox::new(nstripes)).collect(),
            telemetry: OnceLock::new(),
        });
        let fabric = Fabric { shared };
        let endpoints = (0..nranks)
            .map(|rank| Endpoint {
                rank,
                fabric: fabric.clone(),
                next_seq: std::cell::Cell::new(0),
            })
            .collect();
        (fabric, endpoints)
    }

    /// Number of ranks on the fabric.
    pub fn nranks(&self) -> usize {
        self.shared.nranks
    }

    /// Number of lock stripes per destination mailbox.
    pub fn stripes(&self) -> usize {
        self.shared
            .mailboxes
            .first()
            .map_or(1, |mb| mb.stripes.len())
    }

    /// Attach a flight recorder to the fabric. First attachment wins;
    /// later calls are no-ops. Send/wakeup counters and message-match
    /// events flow into it from every endpoint.
    pub fn attach_telemetry(&self, tel: Arc<Telemetry>) {
        let _ = self.shared.telemetry.set(FabricTelemetry {
            sends: tel.metrics().counter("fabric.sends"),
            wakeups: tel.metrics().counter("fabric.wakeups"),
            broadcast_wakeups: tel.metrics().counter("fabric.broadcast_wakeups"),
            match_hits: tel.metrics().counter("match.hits"),
            wildcard_scans: tel.metrics().counter("match.wildcard_scans"),
            wildcard_scanned: tel.metrics().counter("match.wildcard_scanned_buckets"),
            tel,
        });
    }

    /// The attached flight recorder, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.shared.telemetry.get().map(|ft| &ft.tel)
    }

    /// Cached counter handles for same-crate hot paths (matching).
    pub(crate) fn tel_handles(&self) -> Option<&FabricTelemetry> {
        self.shared.telemetry.get()
    }

    /// Count a broadcast wakeup (shutdown / fail-stop / detection flip).
    fn note_broadcast_wakeup(&self) {
        if let Some(ft) = self.shared.telemetry.get() {
            ft.broadcast_wakeups.incr();
        }
    }

    /// Mark a rank as failed (fail-stop). Subsequent sends to it error with
    /// [`SimError::PeerFailed`]; blocked receivers are woken immediately
    /// and learn of it if failure detection is enabled.
    pub fn fail_rank(&self, rank: usize) {
        if rank >= self.shared.nranks {
            return;
        }
        if !self.shared.failed[rank].swap(true, Ordering::SeqCst) {
            self.shared.failed_count.fetch_add(1, Ordering::SeqCst);
        }
        self.note_broadcast_wakeup();
        for mb in &self.shared.mailboxes {
            mb.wake_all();
        }
    }

    /// Whether a rank has been marked failed.
    pub fn is_failed(&self, rank: usize) -> bool {
        rank < self.shared.nranks && self.shared.failed[rank].load(Ordering::SeqCst)
    }

    /// Ranks currently marked failed.
    pub fn failed_ranks(&self) -> Vec<usize> {
        if self.shared.failed_count.load(Ordering::SeqCst) == 0 {
            return Vec::new();
        }
        (0..self.shared.nranks)
            .filter(|&r| self.is_failed(r))
            .collect()
    }

    /// Enable fault-tolerant semantics: blocked receives return
    /// [`SimError::PeerFailed`] when any rank has failed, instead of
    /// waiting forever like a non-fault-tolerant MPI.
    pub fn enable_failure_detection(&self) {
        self.shared.failure_detection.store(true, Ordering::SeqCst);
        self.note_broadcast_wakeup();
        for mb in &self.shared.mailboxes {
            mb.wake_all();
        }
    }

    /// Tear the fabric down: every blocked receive returns
    /// [`SimError::Disconnected`] immediately. Used when a rank errors or
    /// panics so the remaining ranks unwind instead of deadlocking.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.note_broadcast_wakeup();
        for mb in &self.shared.mailboxes {
            mb.wake_all();
        }
    }

    /// Whether the fabric has been shut down.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// A rank's attachment point to the fabric.
pub struct Endpoint {
    rank: usize,
    fabric: Fabric,
    next_seq: std::cell::Cell<u64>,
}

impl Endpoint {
    /// This endpoint's rank id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The fabric this endpoint belongs to.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Why a blocked receiver must stop waiting, if it must. Message
    /// delivery takes precedence: callers check the queue first.
    fn unblock_reason(&self) -> Option<SimError> {
        let shared = &self.fabric.shared;
        if shared.shutdown.load(Ordering::SeqCst) {
            return Some(SimError::Disconnected);
        }
        if shared.failed[self.rank].load(Ordering::SeqCst) {
            return Some(SimError::SelfFailed);
        }
        if shared.failure_detection.load(Ordering::SeqCst)
            && shared.failed_count.load(Ordering::SeqCst) > 0
        {
            if let Some(r) = (0..shared.nranks).find(|&r| shared.failed[r].load(Ordering::SeqCst)) {
                return Some(SimError::PeerFailed { rank: r });
            }
        }
        None
    }

    /// Send a raw envelope. The sender's clock first advances by the
    /// message's **serialization time** (LogGP's per-byte gap: a NIC or
    /// shared-memory copy engine pushes bytes out one at a time, so
    /// back-to-back sends serialize on the sender — this is what makes a
    /// 48-peer posted all-to-all pay for its volume). The message then
    /// departs at the sender's clock and the *receiver* accounts the wire
    /// latency on arrival (see [`RankCtx::arrival_time`]). The caller (a
    /// vendor MPI library) is responsible for charging its own
    /// per-message CPU overhead before calling this.
    pub fn send_raw(
        &self,
        dst: usize,
        ctx_id: u64,
        tag: i32,
        payload: Bytes,
        ctx: &RankCtx,
    ) -> SimResult<()> {
        let shared = &self.fabric.shared;
        if dst >= shared.nranks {
            return Err(SimError::NoSuchRank {
                rank: dst,
                nranks: shared.nranks,
            });
        }
        if shared.failed[self.rank].load(Ordering::SeqCst) {
            return Err(SimError::SelfFailed);
        }
        if shared.failed[dst].load(Ordering::SeqCst) {
            return Err(SimError::PeerFailed { rank: dst });
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return Err(SimError::Disconnected);
        }
        let seq = self.next_seq.get();
        self.next_seq.set(seq + 1);
        let wire_bytes = payload.len() + ctx.spec().header_bytes;
        let link = ctx.spec().link_between(self.rank, dst);
        ctx.advance(link.serialize_time(wire_bytes));
        let env = Envelope {
            src: self.rank,
            dst,
            ctx_id,
            tag,
            payload,
            depart: ctx.now(),
            wire_bytes,
            seq,
        };
        ctx.count_send(env.len());
        let woke = shared.mailboxes[dst].push(self.rank, env);
        if let Some(ft) = shared.telemetry.get() {
            ft.sends.incr();
            if woke {
                ft.wakeups.incr();
            }
        }
        Ok(())
    }

    /// Non-blocking poll for the next raw envelope, in arrival order.
    /// No virtual-time accounting happens here; the caller's matching engine
    /// decides when and how to charge time (see [`RankCtx::arrival_time`]).
    pub fn poll_raw(&self) -> SimResult<Option<Envelope>> {
        Ok(self.fabric.shared.mailboxes[self.rank].take_next())
    }

    /// Batch-drain every envelope currently queued into `into`, acquiring
    /// each stripe lock exactly once and merging the stripes in arrival
    /// order. Returns how many were appended.
    ///
    /// This is the progress engines' fast path: one lock round-trip per
    /// stripe per progress call instead of one per message.
    pub fn drain_raw_into(&self, into: &mut Vec<Envelope>) -> SimResult<usize> {
        Ok(self.fabric.shared.mailboxes[self.rank].drain_into(into))
    }

    /// Blocking pull of the next raw envelope (no time accounting).
    ///
    /// Sleeps on the mailbox condvar — no polling. Unblocks with an error
    /// if the fabric shuts down, or — when failure detection is enabled —
    /// if any rank has been marked failed; queued messages are always
    /// delivered before an unblock error is reported.
    pub fn recv_raw(&self) -> SimResult<Envelope> {
        let mailbox = &self.fabric.shared.mailboxes[self.rank];
        loop {
            if let Some(env) = mailbox.take_next() {
                return Ok(env);
            }
            // Nothing queued: register on the condvar, then re-check both
            // the queues and the unblock flags *after* registering, so a
            // concurrent push or flag flip cannot be missed (senders read
            // `waiters` after bumping `queued`; flag writers notify
            // unconditionally through the gate).
            let gate = mailbox.gate.lock().expect("mailbox gate poisoned");
            mailbox.waiters.fetch_add(1, Ordering::SeqCst);
            let wake_now =
                mailbox.queued.load(Ordering::SeqCst) > 0 || self.unblock_reason().is_some();
            if !wake_now {
                drop(
                    mailbox
                        .arrived
                        .wait(gate)
                        .expect("mailbox gate poisoned in wait"),
                );
            }
            mailbox.waiters.fetch_sub(1, Ordering::SeqCst);
            if let Some(env) = mailbox.take_next() {
                return Ok(env);
            }
            if let Some(err) = self.unblock_reason() {
                return Err(err);
            }
            // Spurious wakeup or a racing pop: go around again.
        }
    }

    /// Blocking receive **with** arrival-time accounting: advances the
    /// rank's clock to `max(now, arrival)`. Convenience for substrate tests
    /// and simple protocols; vendor libraries use [`Endpoint::recv_raw`]
    /// plus their own matching.
    pub fn recv_raw_blocking(&self, ctx: &RankCtx) -> SimResult<Envelope> {
        let env = self.recv_raw()?;
        let arrival = ctx.arrival_time(&env);
        ctx.advance_to(arrival);
        ctx.count_recv(env.len());
        Ok(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::noise::NoiseModel;
    use crate::rank::RankCtx;
    use std::sync::Arc as StdArc;
    use std::time::Duration;

    fn two_rank_setup() -> (Fabric, Vec<Endpoint>, StdArc<ClusterSpec>) {
        let spec = StdArc::new(ClusterSpec::builder().nodes(1).ranks_per_node(2).build());
        let (fabric, eps) = Fabric::new(&spec);
        (fabric, eps, spec)
    }

    fn ctx_for(rank: usize, spec: &StdArc<ClusterSpec>, ep: Endpoint) -> RankCtx {
        RankCtx::new(
            rank,
            spec.clone(),
            ep,
            NoiseModel::disabled().stream_for_rank(rank),
        )
    }

    #[test]
    fn send_and_receive_round_trip() {
        let (_fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let ctx1 = ctx_for(1, &spec, ep1);
        ctx0.endpoint()
            .send_raw(1, 42, 7, Bytes::from_static(b"hello"), &ctx0)
            .unwrap();
        let env = ctx1.endpoint().recv_raw_blocking(&ctx1).unwrap();
        assert_eq!(env.src, 0);
        assert_eq!(env.ctx_id, 42);
        assert_eq!(env.tag, 7);
        assert_eq!(&env.payload[..], b"hello");
        // Receiver clock advanced by at least the link alpha.
        assert!(ctx1.now() >= spec.link_between(0, 1).alpha);
    }

    #[test]
    fn fifo_per_pair() {
        let (_fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let ctx1 = ctx_for(1, &spec, ep1);
        for i in 0..16u8 {
            ctx0.endpoint()
                .send_raw(1, 0, 0, Bytes::from(vec![i]), &ctx0)
                .unwrap();
        }
        for i in 0..16u8 {
            let env = ctx1.endpoint().recv_raw_blocking(&ctx1).unwrap();
            assert_eq!(env.payload[0], i);
            assert_eq!(env.seq, i as u64);
        }
    }

    #[test]
    fn cross_stripe_sends_merge_in_send_order() {
        // Senders 0..4 land on different stripes of rank 5's mailbox; a
        // single-threaded interleaved schedule must still be observed in
        // exact global send order (the arrival-stamp merge).
        let spec = StdArc::new(ClusterSpec::builder().nodes(1).ranks_per_node(6).build());
        let (fabric, eps) = Fabric::with_stripes(&spec, 4);
        assert_eq!(fabric.stripes(), 4);
        let mut ctxs: Vec<RankCtx> = eps
            .into_iter()
            .enumerate()
            .map(|(r, ep)| ctx_for(r, &spec, ep))
            .collect();
        let receiver = ctxs.pop().unwrap();
        let schedule: Vec<usize> = vec![0, 3, 1, 4, 2, 0, 4, 1, 3, 2, 2, 0];
        for (i, &src) in schedule.iter().enumerate() {
            ctxs[src]
                .endpoint()
                .send_raw(5, 0, 0, Bytes::from(vec![i as u8]), &ctxs[src])
                .unwrap();
        }
        // poll_raw path: stamp-merged one at a time.
        for i in 0..6u8 {
            let env = receiver.endpoint().poll_raw().unwrap().unwrap();
            assert_eq!(env.payload[0], i, "poll order broke at {i}");
            assert_eq!(env.src, schedule[i as usize]);
        }
        // drain path: the rest arrives merged in one batch.
        let mut rest = Vec::new();
        assert_eq!(receiver.endpoint().drain_raw_into(&mut rest).unwrap(), 6);
        for (k, env) in rest.iter().enumerate() {
            assert_eq!(env.payload[0] as usize, 6 + k, "drain order broke");
        }
    }

    #[test]
    fn single_stripe_fabric_still_works() {
        let spec = StdArc::new(ClusterSpec::builder().nodes(1).ranks_per_node(2).build());
        let (fabric, mut eps) = Fabric::with_stripes(&spec, 1);
        assert_eq!(fabric.stripes(), 1);
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let ctx1 = ctx_for(1, &spec, ep1);
        for i in 0..4u8 {
            ctx0.endpoint()
                .send_raw(1, 0, 0, Bytes::from(vec![i]), &ctx0)
                .unwrap();
        }
        for i in 0..4u8 {
            assert_eq!(ctx1.endpoint().recv_raw().unwrap().payload[0], i);
        }
    }

    #[test]
    fn concurrent_incast_preserves_per_pair_fifo() {
        // Many sender threads hammer one destination across stripes; the
        // receiver must see every message, each source in send order.
        let nsenders = 8usize;
        let per_sender = 100u64;
        let spec = StdArc::new(
            ClusterSpec::builder()
                .nodes(1)
                .ranks_per_node(nsenders + 1)
                .build(),
        );
        let (_fabric, eps) = Fabric::with_stripes(&spec, 4);
        let mut ctxs: Vec<RankCtx> = eps
            .into_iter()
            .enumerate()
            .map(|(r, ep)| ctx_for(r, &spec, ep))
            .collect();
        let receiver = ctxs.pop().unwrap();
        std::thread::scope(|s| {
            for ctx in ctxs {
                s.spawn(move || {
                    for i in 0..per_sender {
                        ctx.endpoint()
                            .send_raw(nsenders, 0, 0, Bytes::from(i.to_le_bytes().to_vec()), &ctx)
                            .unwrap();
                    }
                });
            }
            let mut last: Vec<Option<u64>> = vec![None; nsenders];
            for _ in 0..(nsenders as u64 * per_sender) {
                let env = receiver.endpoint().recv_raw().unwrap();
                let i = u64::from_le_bytes(env.payload[..8].try_into().unwrap());
                if let Some(prev) = last[env.src] {
                    assert!(i > prev, "src {} overtook: {} after {}", env.src, i, prev);
                }
                last[env.src] = Some(i);
            }
            for (src, seen) in last.iter().enumerate() {
                assert_eq!(*seen, Some(per_sender - 1), "src {src} incomplete");
            }
        });
    }

    #[test]
    fn send_to_out_of_range_rank_errors() {
        let (_fabric, mut eps, spec) = two_rank_setup();
        let _ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let err = ctx0
            .endpoint()
            .send_raw(9, 0, 0, Bytes::new(), &ctx0)
            .unwrap_err();
        assert_eq!(err, SimError::NoSuchRank { rank: 9, nranks: 2 });
    }

    #[test]
    fn send_to_failed_rank_errors() {
        let (fabric, mut eps, spec) = two_rank_setup();
        let _ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        fabric.fail_rank(1);
        assert!(fabric.is_failed(1));
        assert_eq!(fabric.failed_ranks(), vec![1]);
        let err = ctx0
            .endpoint()
            .send_raw(1, 0, 0, Bytes::new(), &ctx0)
            .unwrap_err();
        assert_eq!(err, SimError::PeerFailed { rank: 1 });
    }

    #[test]
    fn blocked_recv_unblocks_on_shutdown() {
        let (fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let _ep0 = eps.pop().unwrap();
        let ctx1 = ctx_for(1, &spec, ep1);
        let handle = std::thread::spawn({
            let fabric = fabric.clone();
            move || {
                std::thread::sleep(Duration::from_millis(5));
                fabric.shutdown();
            }
        });
        let err = ctx1.endpoint().recv_raw().unwrap_err();
        assert_eq!(err, SimError::Disconnected);
        handle.join().unwrap();
    }

    #[test]
    fn blocked_recv_sees_peer_failure_when_detection_enabled() {
        let (fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let _ep0 = eps.pop().unwrap();
        let ctx1 = ctx_for(1, &spec, ep1);
        fabric.enable_failure_detection();
        let handle = std::thread::spawn({
            let fabric = fabric.clone();
            move || {
                std::thread::sleep(Duration::from_millis(5));
                fabric.fail_rank(0);
            }
        });
        let err = ctx1.endpoint().recv_raw().unwrap_err();
        assert_eq!(err, SimError::PeerFailed { rank: 0 });
        handle.join().unwrap();
    }

    #[test]
    fn queued_messages_delivered_before_shutdown_error() {
        let (fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let ctx1 = ctx_for(1, &spec, ep1);
        ctx0.endpoint()
            .send_raw(1, 0, 0, Bytes::from_static(b"last"), &ctx0)
            .unwrap();
        fabric.shutdown();
        // The queued message still comes out; only then does the receiver
        // observe the shutdown.
        let env = ctx1.endpoint().recv_raw().unwrap();
        assert_eq!(&env.payload[..], b"last");
        assert_eq!(
            ctx1.endpoint().recv_raw().unwrap_err(),
            SimError::Disconnected
        );
    }

    #[test]
    fn poll_raw_is_nonblocking() {
        let (_fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let ctx1 = ctx_for(1, &spec, ep1);
        assert!(ctx1.endpoint().poll_raw().unwrap().is_none());
        ctx0.endpoint()
            .send_raw(1, 0, 0, Bytes::from_static(b"x"), &ctx0)
            .unwrap();
        // Mailbox push is synchronous, so the message is immediately visible.
        assert!(ctx1.endpoint().poll_raw().unwrap().is_some());
    }

    #[test]
    fn drain_collects_everything_in_order() {
        let (_fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let ctx1 = ctx_for(1, &spec, ep1);
        for i in 0..10u8 {
            ctx0.endpoint()
                .send_raw(1, 0, i as i32, Bytes::from(vec![i]), &ctx0)
                .unwrap();
        }
        let mut buf = Vec::new();
        let n = ctx1.endpoint().drain_raw_into(&mut buf).unwrap();
        assert_eq!(n, 10);
        assert_eq!(buf.len(), 10);
        for (i, env) in buf.iter().enumerate() {
            assert_eq!(env.payload[0] as usize, i);
        }
        // Queue is now empty.
        assert_eq!(ctx1.endpoint().drain_raw_into(&mut buf).unwrap(), 0);
        assert!(ctx1.endpoint().poll_raw().unwrap().is_none());
    }

    #[test]
    fn small_payloads_ride_inline() {
        // The ≤64 B fast path: the payload handed to the receiver is the
        // inline representation — no heap allocation was retained.
        let (_fabric, mut eps, spec) = two_rank_setup();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let ctx0 = ctx_for(0, &spec, ep0);
        let ctx1 = ctx_for(1, &spec, ep1);
        ctx0.endpoint()
            .send_raw(1, 0, 0, Bytes::copy_from_slice(&[9u8; 64]), &ctx0)
            .unwrap();
        let env = ctx1.endpoint().recv_raw_blocking(&ctx1).unwrap();
        assert!(env.payload.is_inline());
        assert_eq!(env.payload.len(), 64);
    }
}
