//! The scenario-matrix program factory.
//!
//! [`stool::scenario`] keeps application choice as a plain token so the
//! matrix spec stays data; this module is where tokens become programs.
//! The mapping mirrors the paper's workload split: the session smoke
//! programs (`ring`, `sleepy`) from `stool::programs` and the §5
//! evaluation applications (`wave`, `comd`) from `mpi-apps`.
//!
//! `payload` is the per-app size knob: ring payload doubles, wave grid
//! points, CoMD lattice edge. `steps` is always the safe-point count.

use mpi_apps::{CoMdMini, WaveMpi};
use simnet::VirtualTime;
use stool::programs::{RingPings, SleepyProgram};
use stool::{MpiProgram, ScenarioSpec};

/// Instantiate the program a scenario row names, or explain why the token
/// is unknown. Keep this in sync with the token list documented on
/// [`ScenarioSpec::app`] and in `docs/scenarios.md`.
pub fn app_for(spec: &ScenarioSpec) -> Result<Box<dyn MpiProgram>, String> {
    match spec.app.as_str() {
        "ring" => Ok(Box::new(RingPings {
            rounds: spec.steps,
            payload: spec.payload as usize,
        })),
        "sleepy" => Ok(Box::new(SleepyProgram {
            steps: spec.steps,
            nap: VirtualTime::from_micros(50),
        })),
        "wave" => Ok(Box::new(WaveMpi {
            npoints: spec.payload as usize,
            nsteps: spec.steps,
            ..WaveMpi::default()
        })),
        "comd" => Ok(Box::new(CoMdMini {
            nx: spec.payload as usize,
            nsteps: spec.steps,
            ..CoMdMini::default()
        })),
        other => Err(format!(
            "scenario '{}': unknown app token '{other}' (expected ring, sleepy, wave or comd)",
            spec.name
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_documented_token_resolves() {
        for token in ["ring", "sleepy", "wave", "comd"] {
            let mut spec = ScenarioSpec::named("t");
            spec.app = token.into();
            let program = app_for(&spec).unwrap();
            assert!(!program.name().is_empty());
        }
        let mut spec = ScenarioSpec::named("t");
        spec.app = "lammps".into();
        let err = app_for(&spec)
            .err()
            .expect("unknown token must be rejected");
        assert!(err.contains("unknown app token"));
    }
}
