//! The deterministic RNG driving case generation, and the rejection marker
//! used by `prop_assume!`.

/// Marker returned (via `?`-less early return) when a case is discarded.
#[derive(Debug, Clone, Copy)]
pub struct Reject;

/// SplitMix64: tiny, fast, and plenty for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test's name so each property replays
    /// the same case sequence run-to-run.
    pub fn deterministic(name: &str) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // fnv offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("alpha");
        let mut b = TestRng::deterministic("alpha");
        let mut c = TestRng::deterministic("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
