//! ABI version identification.

/// Version of the standard ABI implemented by a library.
///
/// The paper targets the ABI "to be standardized in MPI-5"; we version the
/// simulated ABI as 1.0 with the MPI level it corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct AbiVersion {
    /// ABI major version. Incompatible encoding changes bump this.
    pub major: u32,
    /// ABI minor version. Backward-compatible additions bump this.
    pub minor: u32,
}

impl AbiVersion {
    /// The ABI version this crate defines.
    pub const CURRENT: AbiVersion = AbiVersion { major: 1, minor: 0 };

    /// The MPI standard level the ABI belongs to.
    pub const MPI_STANDARD: (u32, u32) = (5, 0);

    /// Whether a library exposing `self` can serve a binary compiled
    /// against `required` (same major, at-least minor).
    pub fn supports(self, required: AbiVersion) -> bool {
        self.major == required.major && self.minor >= required.minor
    }
}

impl std::fmt::Display for AbiVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.major, self.minor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_rules() {
        let v10 = AbiVersion { major: 1, minor: 0 };
        let v11 = AbiVersion { major: 1, minor: 1 };
        let v20 = AbiVersion { major: 2, minor: 0 };
        assert!(v11.supports(v10), "newer minor serves older binaries");
        assert!(
            !v10.supports(v11),
            "older minor cannot serve newer binaries"
        );
        assert!(!v20.supports(v10), "major break is incompatible");
        assert!(v10.supports(v10));
    }

    #[test]
    fn display() {
        assert_eq!(AbiVersion::CURRENT.to_string(), "1.0");
    }
}
