//! Small built-in programs: smoke-test workloads and doc examples.
//!
//! The paper's evaluation workloads (OSU micro-benchmarks, CoMD, wave_mpi)
//! live in the `mpi-apps` crate; these are minimal programs used by the
//! session tests and documentation.

use mpi_abi::{Handle, ReduceOp};
use simnet::VirtualTime;

use crate::error::StoolResult;
use crate::program::{AppCtx, MpiProgram};

/// A ring exchange repeated for a number of rounds, with a checkpoint safe
/// point between rounds. Each rank accumulates what it receives into
/// `mem["ring.sum"]`; at the end, the global sum lands in
/// `mem["ring.total"]`.
pub struct RingPings {
    /// Number of ring rounds.
    pub rounds: u64,
    /// Payload doubles per message.
    pub payload: usize,
}

impl MpiProgram for RingPings {
    fn name(&self) -> &'static str {
        "ring-pings"
    }

    fn run(&self, app: &mut AppCtx<'_>) -> StoolResult<()> {
        let me = app.rank() as i32;
        let n = app.nranks() as i32;
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        app.mem.f64s_mut("ring.sum", 1);
        for step in app.resume_step()..self.rounds {
            if app.checkpoint_point(step)?.is_stop() {
                return Ok(());
            }
            let acc = app.mem.f64s("ring.sum").expect("segment exists")[0];
            let payload = vec![acc + me as f64 + step as f64; self.payload.max(1)];
            let mut incoming = vec![0.0; self.payload.max(1)];
            let mut p = app.pmpi();
            p.sendrecv_f64s(
                &payload,
                next,
                11,
                &mut incoming,
                prev,
                11,
                Handle::COMM_WORLD,
            )?;
            app.mem.f64s_mut("ring.sum", 1)[0] += incoming[0];
            app.compute(VirtualTime::from_micros(5));
        }
        let sum = app.mem.f64s("ring.sum").expect("segment exists")[0];
        let total = app
            .pmpi()
            .allreduce_f64(sum, ReduceOp::Sum, Handle::COMM_WORLD)?;
        app.mem.set_f64("ring.total", total);
        Ok(())
    }
}

/// A program that does nothing but sleep in virtual time — used to test
/// checkpoint windows (the Fig. 6 pattern).
pub struct SleepyProgram {
    /// Steps to take.
    pub steps: u64,
    /// Virtual sleep per step.
    pub nap: VirtualTime,
}

impl MpiProgram for SleepyProgram {
    fn name(&self) -> &'static str {
        "sleepy"
    }

    fn run(&self, app: &mut AppCtx<'_>) -> StoolResult<()> {
        for step in app.resume_step()..self.steps {
            if app.checkpoint_point(step)?.is_stop() {
                return Ok(());
            }
            app.sleep(self.nap);
            app.mem.set_u64("sleepy.steps_done", step + 1);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Checkpointer, Session};
    use dmtcp_sim::coordinator::CkptMode;
    use muk::Vendor;
    use simnet::ClusterSpec;

    fn small_cluster() -> ClusterSpec {
        ClusterSpec::builder().nodes(2).ranks_per_node(2).build()
    }

    #[test]
    fn ring_completes_on_all_stack_shapes() {
        let program = RingPings {
            rounds: 5,
            payload: 8,
        };
        for vendor in [Vendor::Mpich, Vendor::OpenMpi] {
            for ckpt in [Checkpointer::None, Checkpointer::mana()] {
                let session = Session::builder()
                    .cluster(small_cluster())
                    .vendor(vendor)
                    .checkpointer(ckpt)
                    .build()
                    .unwrap();
                let out = session.launch(&program).unwrap();
                let memories = out.memories().unwrap();
                let total0 = memories[0].get_f64("ring.total").unwrap();
                // All ranks agree on the total.
                for m in memories {
                    assert_eq!(m.get_f64("ring.total"), Some(total0));
                }
            }
        }
    }

    #[test]
    fn checkpoint_stop_and_cross_vendor_restore() {
        let program = RingPings {
            rounds: 9,
            payload: 4,
        };
        // Uninterrupted reference (any vendor: the dataflow is p2p only,
        // plus one deterministic allreduce at the end).
        let reference = Session::builder()
            .cluster(small_cluster())
            .vendor(Vendor::OpenMpi)
            .checkpointer(Checkpointer::mana())
            .build()
            .unwrap()
            .launch(&program)
            .unwrap();
        let expect = reference.memories().unwrap()[0]
            .get_f64("ring.total")
            .unwrap();

        // Launch under Open MPI, stop at step 4.
        let launch = Session::builder()
            .cluster(small_cluster())
            .vendor(Vendor::OpenMpi)
            .checkpointer(Checkpointer::mana())
            .checkpoint_at_step(4, CkptMode::Stop)
            .build()
            .unwrap();
        let out = launch.launch(&program).unwrap();
        assert!(!out.is_completed());
        let image = out.into_image().unwrap();
        assert_eq!(image.vendor_hint, "Open MPI");

        // Restore under MPICH.
        let restore = Session::builder()
            .cluster(small_cluster())
            .vendor(Vendor::Mpich)
            .checkpointer(Checkpointer::mana())
            .build()
            .unwrap();
        let done = restore.restore(&image, &program).unwrap();
        let got = done.memories().unwrap()[0].get_f64("ring.total").unwrap();
        assert_eq!(
            got, expect,
            "cross-vendor restart must finish the same computation"
        );
    }

    #[test]
    fn checkpoint_continue_keeps_running() {
        let program = SleepyProgram {
            steps: 6,
            nap: VirtualTime::from_millis(1),
        };
        let session = Session::builder()
            .cluster(small_cluster())
            .vendor(Vendor::Mpich)
            .checkpointer(Checkpointer::mana())
            .checkpoint_at_step(2, CkptMode::Continue)
            .build()
            .unwrap();
        let out = session.launch(&program).unwrap();
        assert!(out.is_completed(), "Continue mode must not stop the world");
        let memories = out.memories().unwrap();
        assert_eq!(memories[0].get_u64("sleepy.steps_done"), Some(6));
    }

    #[test]
    fn policy_without_checkpointer_rejected() {
        let err = Session::builder()
            .cluster(small_cluster())
            .checkpoint_at_step(1, CkptMode::Stop)
            .build()
            .unwrap_err();
        assert!(matches!(err, crate::error::StoolError::Config(_)));
    }

    #[test]
    fn restore_needs_matching_world_size() {
        let program = SleepyProgram {
            steps: 4,
            nap: VirtualTime::from_micros(1),
        };
        let session = Session::builder()
            .cluster(small_cluster())
            .vendor(Vendor::Mpich)
            .checkpointer(Checkpointer::mana())
            .checkpoint_at_step(1, CkptMode::Stop)
            .build()
            .unwrap();
        let image = session.launch(&program).unwrap().into_image().unwrap();
        let bad = Session::builder()
            .cluster(ClusterSpec::builder().nodes(1).ranks_per_node(2).build())
            .vendor(Vendor::Mpich)
            .checkpointer(Checkpointer::mana())
            .build()
            .unwrap();
        let err = bad.restore(&image, &program).unwrap_err();
        assert!(matches!(err, crate::error::StoolError::Restore(_)));
    }
}
