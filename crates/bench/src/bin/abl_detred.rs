//! Ablation: deterministic (canonical rank-ordered) reductions.
//!
//! Vendor MPI libraries associate floating-point reductions differently
//! (recursive doubling vs Rabenseifner vs ring), so the same
//! `MPI_Allreduce` returns different final bits under the two libraries —
//! which also means a computation checkpointed under one vendor and
//! restarted under the other can diverge in its reduction outputs. The
//! shim's deterministic mode gathers contributions and folds them in
//! world-rank order instead; this ablation measures what that costs and
//! demonstrates what it buys.
//!
//! Usage: `abl_detred`.

use mpi_abi::{Handle, ReduceOp};
use simnet::{ClusterSpec, VirtualTime};
use stool::{AppCtx, MpiProgram, Session, StoolResult, Vendor};

/// Sums an adversarial vector (magnitudes spread over many decades, so
/// association matters) `iters` times and records a bit-exact fingerprint
/// and the elapsed time.
struct ReduceBench {
    elems: usize,
    iters: usize,
}

impl MpiProgram for ReduceBench {
    fn name(&self) -> &'static str {
        "detred-ablation"
    }

    fn run(&self, app: &mut AppCtx<'_>) -> StoolResult<()> {
        // Pseudo-random contributions spread over ~12 decades of
        // magnitude and both signs: summing values of very different
        // exponents rounds differently under every association order, so
        // any two reduction trees disagree in the last bits of at least
        // some elements.
        let mut state = (app.rank() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mine: Vec<f64> = (0..self.elems)
            .map(|_| {
                let r = next();
                let mantissa = (r >> 12) as f64 / (1u64 << 52) as f64; // [0, 1)
                let exp = ((r >> 4) % 41) as i32 - 20; // 10^-20 .. 10^20
                let sign = if r & 1 == 0 { 1.0 } else { -1.0 };
                sign * mantissa * 10f64.powi(exp)
            })
            .collect();
        let t0 = app.now();
        let mut out = vec![0.0f64; self.elems];
        for _ in 0..self.iters {
            let mut recv = vec![0u8; self.elems * 8];
            let send: Vec<u8> = mine.iter().flat_map(|v| v.to_le_bytes()).collect();
            app.mpi().allreduce(
                &send,
                &mut recv,
                mpi_abi::Datatype::Double.handle(),
                ReduceOp::Sum.handle(),
                Handle::COMM_WORLD,
            )?;
            for (o, c) in out.iter_mut().zip(recv.chunks_exact(8)) {
                *o = f64::from_le_bytes(c.try_into().expect("8 bytes"));
            }
        }
        let dt = app.now() - t0;
        // Fingerprint of every element's exact bits.
        let fp = out
            .iter()
            .fold(0u64, |acc, v| acc.rotate_left(7) ^ v.to_bits());
        app.mem.set_u64("detred.fingerprint", fp);
        app.mem
            .set_f64("detred.us_per_call", dt.as_micros_f64() / self.iters as f64);
        Ok(())
    }
}

fn run(vendor: Vendor, det: bool, bench: &ReduceBench) -> (u64, f64) {
    let mut b = Session::builder()
        .cluster(ClusterSpec::discovery())
        .vendor(vendor);
    if det {
        b = b.deterministic_reductions();
    }
    let out = b.build().expect("session").launch(bench).expect("launch");
    let mem = &out.memories().expect("completed")[0];
    (
        mem.get_u64("detred.fingerprint").expect("fingerprint"),
        mem.get_f64("detred.us_per_call").expect("time"),
    )
}

fn main() {
    println!("# Ablation: canonical rank-ordered reductions (48 ranks, f64 sum over ~12 decades of magnitude)");
    println!(
        "{:>8} {:>12} {:>22} {:>22} {:>14}",
        "elems", "mode", "MPICH fingerprint", "OMPI fingerprint", "agree?"
    );
    for elems in [1usize, 64, 1024] {
        let bench = ReduceBench { elems, iters: 10 };
        for det in [false, true] {
            let (bits_m, us_m) = run(Vendor::Mpich, det, &bench);
            let (bits_o, us_o) = run(Vendor::OpenMpi, det, &bench);
            println!(
                "{:>8} {:>12} {:>22} {:>22} {:>14} ({:.1} / {:.1} us/call)",
                elems,
                if det { "canonical" } else { "vendor" },
                format!("{bits_m:#018x}"),
                format!("{bits_o:#018x}"),
                if bits_m == bits_o {
                    "BITWISE"
                } else {
                    "differs"
                },
                us_m,
                us_o,
            );
        }
    }
    println!("# vendor algorithms disagree in the last bits; the canonical fold agrees exactly,");
    println!("# at the cost of a gather+bcast (visible in the us/call columns).");
    let _ = VirtualTime::ZERO; // keep the import for doc parity with sibling ablations
}
