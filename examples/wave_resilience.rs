//! Resilience for a long-running solver: periodic checkpoints + recovery.
//!
//! The 1-D wave equation solver (the paper's `wave_mpi` workload) runs with
//! a checkpoint taken mid-run. We then simulate a job kill and recover from
//! the saved image — under the *other* MPI library — verifying the solution
//! against the analytic standing wave both times.
//!
//! ```text
//! cargo run --release --example wave_resilience
//! ```

use mpi_stool::apps::WaveMpi;
use mpi_stool::simnet::ClusterSpec;
use mpi_stool::stool::{Checkpointer, CkptMode, Session, Vendor};

fn main() {
    let solver = WaveMpi {
        npoints: 720,
        nsteps: 400,
        gather_final: true,
        ..WaveMpi::default()
    };
    let cluster = ClusterSpec::builder().nodes(3).ranks_per_node(2).build();

    // Run 1: uninterrupted, under MPICH.
    let clean = Session::builder()
        .cluster(cluster.clone())
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .build()
        .expect("session")
        .launch(&solver)
        .expect("run");
    let clean_mem = &clean.memories().expect("completed")[0];
    let clean_err = clean_mem.get_f64("wave.err").expect("error recorded");
    println!("uninterrupted (MPICH):      L2 error vs analytic = {clean_err:.3e}");

    // Run 2: same solver, checkpoint-and-stop at step 200 ("the allocation
    // ended"), then recover under Open MPI and finish.
    let image = Session::builder()
        .cluster(cluster.clone())
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .checkpoint_at_step(200, CkptMode::Stop)
        .build()
        .expect("session")
        .launch(&solver)
        .expect("run")
        .into_image()
        .expect("checkpoint-stopped");
    println!(
        "checkpoint at step 200:     {} bytes across {} ranks",
        image.total_bytes(),
        image.nranks()
    );

    let recovered = Session::builder()
        .cluster(cluster)
        .vendor(Vendor::OpenMpi)
        .checkpointer(Checkpointer::mana())
        .build()
        .expect("session")
        .restore(&image, &solver)
        .expect("recover");
    let rec_mem = &recovered.memories().expect("completed")[0];
    let rec_err = rec_mem.get_f64("wave.err").expect("error recorded");
    println!("recovered (Open MPI):       L2 error vs analytic = {rec_err:.3e}");

    // The recovered solution must be the bitwise-same field.
    let a = clean_mem.f64s("wave.final").expect("gathered field");
    let b = rec_mem.f64s("wave.final").expect("gathered field");
    assert_eq!(a.len(), b.len());
    assert!(
        a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
        "recovered field must be bitwise identical"
    );
    println!("\nrecovered field is bitwise identical to the uninterrupted run ✓");
}
