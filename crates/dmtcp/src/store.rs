//! The asynchronous delta-checkpoint store: epoch chains of content-hashed
//! blocks.
//!
//! `WorldImage::save_dir` writes every rank's full image on the rank's
//! critical path, so checkpoint latency scales with total image size even
//! when almost nothing changed since the previous epoch. This module is the
//! layer between the coordinator and the filesystem that removes both
//! costs:
//!
//! * **Asynchrony** — a [`StoreWriter`] is attached to the coordinator as
//!   an [`crate::coordinator::ImageSink`]. At the final rendezvous barrier
//!   the round leader hands the complete set of [`RankImage`]s to the
//!   writer's bounded queue (the double buffer) and every rank resumes
//!   computing; a background thread performs the chunking, hashing and I/O.
//! * **Deltas** — each section of each rank image is chunked into blocks
//!   with *content-defined* boundaries (Gear rolling hash, FastCDC-style
//!   min/max bounds), identified by a 128-bit content hash. An epoch
//!   writes only the blocks that are not already present in the current
//!   chain; unchanged blocks are *references* to the epoch that first
//!   wrote them. Content-defined boundaries make dedup robust to
//!   insertions: when a rank's arrays grow or shrink between epochs (atom
//!   migration, appended diagnostics), only the blocks near the edit
//!   change, not every block downstream of the shift.
//!
//! # On-disk chain format
//!
//! ```text
//! store_dir/
//!   epoch_000001/            # a FULL epoch (chain base)
//!     blocks.bin             #   concatenated new blocks, referenced by offset
//!     manifest.bin           #   checksummed manifest (see below)
//!   epoch_000002/            # a DELTA epoch
//!     blocks.bin             #   only the blocks that changed
//!     manifest.bin
//!   epoch_000003.tmp/        # an interrupted commit (ignored, cleaned up)
//! ```
//!
//! The manifest lists, for every rank and section, the ordered block
//! references `(content key, source epoch, offset, stored length, raw
//! length, CRC32, codec)` that reconstruct the section. A manifest is
//! self-contained: restart loads exactly one manifest and then walks the
//! chain only to fetch block bytes from the `blocks.bin` files it
//! references. Every block is CRC32-checked on read, so corruption is
//! reported as the exact `(epoch, offset)` that rotted — never silently
//! loaded. Commits are crash-safe: an epoch is assembled in an
//! `epoch_NNNNNN.tmp` directory and atomically renamed into place, so a
//! torn write can never be half-parsed. An epoch whose manifest *did*
//! rot on disk is quarantined at open (renamed to `epoch_NNNNNN.bad`)
//! and the store falls back to the newest readable epoch, so one broken
//! head never makes the whole chain unrestorable.
//!
//! # Block compression and dirty-segment tracking
//!
//! Manifest **v2** adds two cost reducers, both per-block/per-section and
//! both off the ranks' critical path:
//!
//! * **Compression** ([`Compression::Lz4`], the default): each newly
//!   written block is stored under the codec that wins for its bytes —
//!   raw, LZ4, or byte-shuffled LZ4 (the classic 8-stride shuffle filter,
//!   which groups the slowly-varying high bytes of `f64` lattice data
//!   into long runs LZ4 can fold). The codec byte travels in the block
//!   reference; v1 chains (raw-only) still decode.
//! * **Dirty-segment tracking** ([`StoreConfig::dirty_tracking`]): image
//!   sections may carry a producer generation stamp
//!   ([`crate::image::RankImage::put_section_hinted`], fed by
//!   [`crate::memory::Memory::generation`]). A section whose stamp has
//!   not moved since the previous commit of this handle is re-referenced
//!   wholesale — no chunking, no hashing, not a single byte read — which
//!   turns the per-epoch hash cost from O(image) into O(changed state).
//!   The hint is advice, not trust-the-caller: it is only honored for
//!   the section (same rank, same name, same length) cached from the
//!   immediately preceding commit, never across reopen or a full base.
//!
//! # Retention and GC
//!
//! After [`StoreConfig::max_chain`] consecutive deltas the next epoch is
//! written as a fresh **full base**, bounding how long any restart chain
//! can grow. After each commit, epochs beyond the newest
//! [`StoreConfig::retain_epochs`] restorable epochs are deleted — except
//! those still referenced by a retained manifest (a delta keeps its base
//! alive), so every retained epoch stays restorable.
//!
//! # Cross-vendor restart
//!
//! The chain stores vendor-neutral [`RankImage`]s, so the paper's headline
//! scenario holds end to end: checkpoint epochs under the MPICH engine,
//! kill the world, reopen the chain and restart the reconstructed
//! [`WorldImage`] under the Open MPI engine through the Mukautuva shim.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::io::{Read, Write as IoWrite};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};

use simnet::telemetry::Telemetry;

use crate::codec::{crc32, fnv1a, fnv1a_seeded, CodecError, Reader, Writer};
use crate::coordinator::ImageSink;
use crate::image::{ImageError, RankImage, WorldImage};
use crate::tier::{
    fetch_sealed_epoch, sealed_epochs, ObjectTier, SharedTier, TierConfig, TierError, TierRuntime,
    TierStats,
};

const MANIFEST_MAGIC: u64 = 0x434B_5054_4348_4E31; // "CKPTCHN1"
/// The legacy (PR 2) manifest version: raw blocks, 40-byte references.
const MANIFEST_V1: u64 = 1;
/// Current manifest version: per-block codec byte + raw length, and a
/// `bytes_hashed` header field recording what the commit actually hashed.
const MANIFEST_V2: u64 = 2;
/// Bytes of one block reference on disk, per manifest version.
const BLOCK_REC_V1: usize = 40;
const BLOCK_REC_V2: usize = 45;
/// Minimum bytes a rank header (rank, world, epoch, nsections) consumes.
const RANK_REC_MIN: usize = 32;
/// Minimum bytes a section (name length prefix + nblocks) consumes.
const SECTION_REC_MIN: usize = 16;
/// Blocks shorter than this are never worth a compression attempt.
const MIN_COMPRESS_LEN: usize = 64;

/// Per-block compression applied to newly written blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compression {
    /// Store raw block bytes (the v1 behavior).
    None,
    /// Per block, keep the smallest of: raw, LZ4, byte-shuffled LZ4
    /// (the shuffle transposes the block's 8-aligned prefix — the `f64`
    /// shape — and passes the tail through; both candidates are tried
    /// for every block ≥ 64 bytes, on the background writer's thread).
    /// The choice is recorded in the block reference, so mixed chains
    /// decode.
    #[default]
    Lz4,
}

/// Which manifest format commits write. Decoding always accepts both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ManifestFormat {
    /// The legacy PR 2 format: raw blocks only, no codec byte. A
    /// compatibility knob (it forces [`Compression::None`] and disables
    /// dirty tracking) kept so tests and mixed-version deployments can
    /// produce chains for older readers.
    V1,
    /// The current format: compressed blocks, hashed-bytes accounting.
    #[default]
    V2,
}

/// Tunables of the delta store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Target mean block size for content-defined chunking (bytes);
    /// actual blocks stay within `[block_size/4, 4*block_size]`. Smaller
    /// blocks find more unchanged data; larger blocks mean less manifest
    /// overhead.
    pub block_size: usize,
    /// Keep this many of the newest restorable epochs; older epochs are
    /// garbage-collected unless a retained manifest still references them.
    pub retain_epochs: usize,
    /// Maximum consecutive delta epochs before a fresh full base is
    /// written (bounds restart chain length).
    pub max_chain: usize,
    /// Threads used to chunk and hash rank images in parallel during a
    /// commit.
    pub writer_threads: usize,
    /// Submit queue depth of the background writer (the double buffer):
    /// ranks block on submit only when this many epochs are already
    /// waiting.
    pub queue_depth: usize,
    /// Per-block compression of newly written blocks.
    pub compression: Compression,
    /// Honor clean-segment generation hints: a hinted section whose
    /// stamp did not move since the previous commit is re-referenced
    /// without being chunked or hashed.
    pub dirty_tracking: bool,
    /// Manifest format written by commits ([`ManifestFormat::V1`] is a
    /// compatibility knob; both formats always decode).
    pub format: ManifestFormat,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            block_size: 4096,
            retain_epochs: 4,
            max_chain: 8,
            writer_threads: 2,
            queue_depth: 2,
            compression: Compression::default(),
            dirty_tracking: true,
            format: ManifestFormat::default(),
        }
    }
}

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// The operation ("create", "read", "rename", ...).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The OS error, stringified (keeps the error cloneable).
        msg: String,
    },
    /// An epoch manifest failed to decode (truncated or corrupted).
    Manifest {
        /// The epoch whose manifest broke.
        epoch: u64,
        /// The codec-level cause.
        source: CodecError,
    },
    /// A block's CRC32 did not match its manifest entry.
    BlockCorrupt {
        /// The epoch being loaded.
        epoch: u64,
        /// The epoch whose `blocks.bin` holds the rotten block.
        src_epoch: u64,
        /// Byte offset of the block within that file.
        offset: u64,
        /// The rank whose section was being reconstructed.
        rank: usize,
        /// The section name.
        section: String,
    },
    /// A referenced epoch directory does not exist (GC'd or never written).
    MissingEpoch {
        /// The epoch that is gone.
        epoch: u64,
    },
    /// A submitted world image is malformed (mixed epochs, sparse ranks).
    InconsistentImage(String),
    /// The store holds no epochs.
    Empty,
    /// The background writer was shut down.
    Closed,
    /// A remote-tier operation failed (upload, listing, or a fetched
    /// object that failed its seal verification).
    Tier(TierError),
    /// A tier operation was requested but no tier is attached.
    NoTier,
    /// The store directory is claimed by a different tenant: two tenants
    /// (or a tenant and an untagged session) pointed at one chain
    /// directory, which would silently interleave their epochs.
    TenantMismatch {
        /// The chain directory in dispute.
        dir: PathBuf,
        /// The tenant that tried to open the store (empty = untagged).
        expected: String,
        /// The tenant recorded in the directory's `TENANT` marker.
        found: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, msg } => write!(f, "{op} {}: {msg}", path.display()),
            StoreError::Manifest { epoch, source } => {
                write!(f, "epoch {epoch} manifest: {source}")
            }
            StoreError::BlockCorrupt {
                epoch,
                src_epoch,
                offset,
                rank,
                section,
            } => write!(
                f,
                "epoch {epoch}, rank {rank}, section {section}: block at \
                 epoch {src_epoch} offset {offset} failed its CRC32 check"
            ),
            StoreError::MissingEpoch { epoch } => {
                write!(f, "referenced epoch {epoch} is missing from the chain")
            }
            StoreError::InconsistentImage(m) => write!(f, "inconsistent world image: {m}"),
            StoreError::Empty => write!(f, "checkpoint store holds no epochs"),
            StoreError::Closed => write!(f, "checkpoint store writer is shut down"),
            StoreError::Tier(e) => write!(f, "remote tier: {e}"),
            StoreError::NoTier => write!(f, "no remote tier attached to the store"),
            StoreError::TenantMismatch {
                dir,
                expected,
                found,
            } => write!(
                f,
                "store {} is claimed by tenant {found:?}, not {expected:?}: \
                 distinct tenants must not share a chain directory",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Manifest { source, .. } => Some(source),
            StoreError::Tier(source) => Some(source),
            _ => None,
        }
    }
}

impl From<TierError> for StoreError {
    fn from(e: TierError) -> StoreError {
        StoreError::Tier(e)
    }
}

impl StoreError {
    fn io(op: &'static str, path: &Path, e: std::io::Error) -> StoreError {
        StoreError::Io {
            op,
            path: path.to_path_buf(),
            msg: e.to_string(),
        }
    }

    /// Fold into the image-layer error type (threaded through
    /// `CkptError::Image` by the coordinator).
    pub fn into_image_error(self, epoch: u64) -> ImageError {
        ImageError::Store {
            epoch,
            msg: self.to_string(),
        }
    }
}

/// 128-bit content identity of a block: two differently-seeded FNV-1a
/// streams. A key collision would dedup distinct content (the manifest
/// would reference the older block, whose bytes pass their own CRC), so
/// the collision risk is *accepted*, not detected — acceptable because
/// the streams disagree on any single-byte difference and the joint
/// collision odds at simulation scales are negligible.
type BlockKey = (u64, u64);

/// How a block's bytes are stored on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockCodec {
    /// Raw bytes (always the case in v1 chains).
    Raw,
    /// LZ4 block compression.
    Lz4,
    /// 8-stride byte shuffle, then LZ4 (the `f64` filter).
    ShuffleLz4,
}

impl BlockCodec {
    fn to_u8(self) -> u8 {
        match self {
            BlockCodec::Raw => 0,
            BlockCodec::Lz4 => 1,
            BlockCodec::ShuffleLz4 => 2,
        }
    }

    fn from_u8(b: u8) -> Result<BlockCodec, CodecError> {
        match b {
            0 => Ok(BlockCodec::Raw),
            1 => Ok(BlockCodec::Lz4),
            2 => Ok(BlockCodec::ShuffleLz4),
            other => Err(CodecError::LengthOutOfBounds(other as u64)),
        }
    }
}

/// Where a block's bytes live on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockLoc {
    /// The epoch whose `blocks.bin` holds the bytes.
    epoch: u64,
    /// Byte offset within that file.
    offset: u64,
    /// Stored (possibly compressed) length in bytes.
    len: u32,
    /// Uncompressed length in bytes (`== len` for raw blocks).
    raw_len: u32,
    /// CRC32 of the *stored* bytes — corruption is detected before any
    /// decompression is attempted.
    crc: u32,
    /// How the stored bytes encode the raw bytes.
    codec: BlockCodec,
}

/// One chunked block of a section, before dedup placement.
struct ChunkRec {
    key: BlockKey,
    /// CRC32 of the raw chunk (valid as the stored CRC only when the
    /// block lands uncompressed).
    crc: u32,
    start: usize,
    len: usize,
}

/// A section's ordered block references inside a manifest.
type SectionRefs = (String, Vec<(BlockKey, BlockLoc)>);

/// One rank's chunked sections, as produced by the writer pool. A `None`
/// chunk list marks a section skipped by dirty tracking (re-referenced
/// from the previous commit instead of re-chunked).
type RankChunks = Vec<(String, Option<Vec<ChunkRec>>)>;

/// In-memory form of one epoch's manifest.
struct Manifest {
    epoch: u64,
    full: bool,
    vendor_hint: String,
    /// Bytes of section payload this commit actually chunked and hashed
    /// (v1 manifests, which predate dirty tracking, report the full
    /// payload here).
    bytes_hashed: u64,
    /// Per rank: the `RankImage` header plus its sections' block refs.
    ranks: Vec<(usize, usize, u64, Vec<SectionRefs>)>,
}

impl Manifest {
    fn encode(&self, format: ManifestFormat) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(MANIFEST_MAGIC);
        w.u64(match format {
            ManifestFormat::V1 => MANIFEST_V1,
            ManifestFormat::V2 => MANIFEST_V2,
        });
        w.u64(self.epoch);
        w.u8(self.full as u8);
        w.string(&self.vendor_hint);
        if format == ManifestFormat::V2 {
            w.u64(self.bytes_hashed);
        }
        w.u64(self.ranks.len() as u64);
        for (rank, nranks, epoch, sections) in &self.ranks {
            w.u64(*rank as u64);
            w.u64(*nranks as u64);
            w.u64(*epoch);
            w.u64(sections.len() as u64);
            for (name, blocks) in sections {
                w.string(name);
                w.u64(blocks.len() as u64);
                for (key, loc) in blocks {
                    w.u64(key.0);
                    w.u64(key.1);
                    w.u64(loc.epoch);
                    w.u64(loc.offset);
                    w.u32(loc.len);
                    if format == ManifestFormat::V2 {
                        w.u32(loc.raw_len);
                    } else {
                        debug_assert_eq!(
                            loc.codec,
                            BlockCodec::Raw,
                            "v1 manifests cannot reference compressed blocks"
                        );
                    }
                    w.u32(loc.crc);
                    if format == ManifestFormat::V2 {
                        w.u8(loc.codec.to_u8());
                    }
                }
            }
        }
        w.finish()
    }

    /// Decode either manifest version. Every count field is clamped
    /// against the bytes actually remaining in the buffer (each record
    /// has a known minimum size), so a corrupted or hostile count can
    /// never drive a multi-gigabyte `Vec::with_capacity` — it returns
    /// [`CodecError::LengthOutOfBounds`] instead of aborting the process.
    fn decode(buf: &[u8]) -> Result<Manifest, CodecError> {
        let mut r = Reader::checked(buf)?;
        r.expect_magic(MANIFEST_MAGIC)?;
        let version = r.u64()?;
        if version != MANIFEST_V1 && version != MANIFEST_V2 {
            return Err(CodecError::BadMagic {
                expected: MANIFEST_V2,
                found: version,
            });
        }
        let epoch = r.u64()?;
        let full = r.u8()? != 0;
        let vendor_hint = r.string()?;
        let mut bytes_hashed = if version == MANIFEST_V2 { r.u64()? } else { 0 };
        let block_rec = if version == MANIFEST_V2 {
            BLOCK_REC_V2
        } else {
            BLOCK_REC_V1
        };
        let clamp = |count: u64, rec_min: usize, remaining: usize| -> Result<usize, CodecError> {
            if (count as u128) * (rec_min as u128) > remaining as u128 {
                return Err(CodecError::LengthOutOfBounds(count));
            }
            Ok(count as usize)
        };
        let nranks = r.u64()?;
        let nranks = clamp(nranks, RANK_REC_MIN, r.remaining())?;
        let mut ranks = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let rank = r.u64()? as usize;
            let world = r.u64()? as usize;
            let rank_epoch = r.u64()?;
            let nsections = r.u64()?;
            let nsections = clamp(nsections, SECTION_REC_MIN, r.remaining())?;
            let mut sections = Vec::with_capacity(nsections);
            for _ in 0..nsections {
                let name = r.string()?;
                let nblocks = r.u64()?;
                let nblocks = clamp(nblocks, block_rec, r.remaining())?;
                let mut blocks = Vec::with_capacity(nblocks);
                for _ in 0..nblocks {
                    let key = (r.u64()?, r.u64()?);
                    let src_epoch = r.u64()?;
                    let offset = r.u64()?;
                    let len = r.u32()?;
                    let (raw_len, crc, codec) = if version == MANIFEST_V2 {
                        let raw_len = r.u32()?;
                        let crc = r.u32()?;
                        let codec = BlockCodec::from_u8(r.u8()?)?;
                        (raw_len, crc, codec)
                    } else {
                        (len, r.u32()?, BlockCodec::Raw)
                    };
                    blocks.push((
                        key,
                        BlockLoc {
                            epoch: src_epoch,
                            offset,
                            len,
                            raw_len,
                            crc,
                            codec,
                        },
                    ));
                    if version == MANIFEST_V1 {
                        // v1 commits always hashed every referenced byte.
                        bytes_hashed += raw_len as u64;
                    }
                }
                sections.push((name, blocks));
            }
            ranks.push((rank, world, rank_epoch, sections));
        }
        Ok(Manifest {
            epoch,
            full,
            vendor_hint,
            bytes_hashed,
            ranks,
        })
    }
}

/// 8-stride byte shuffle (the classic HDF5/Blosc filter): lane `k` of
/// every 8-byte word is grouped contiguously, so the slowly-varying high
/// bytes of `f64` data become long near-constant runs LZ4 can fold.
/// Content-defined chunk boundaries are rarely 8-aligned, so the filter
/// transposes the 8-aligned prefix and passes the `< 8`-byte tail
/// through raw — both directions derive the split from the length alone.
fn shuffle8(data: &[u8]) -> Vec<u8> {
    let words = data.len() / 8;
    let cut = words * 8;
    let mut out = vec![0u8; data.len()];
    for (i, &b) in data[..cut].iter().enumerate() {
        out[(i % 8) * words + i / 8] = b;
    }
    out[cut..].copy_from_slice(&data[cut..]);
    out
}

/// Inverse of [`shuffle8`].
fn unshuffle8(data: &[u8]) -> Vec<u8> {
    let words = data.len() / 8;
    let cut = words * 8;
    let mut out = vec![0u8; data.len()];
    for (i, o) in out[..cut].iter_mut().enumerate() {
        *o = data[(i % 8) * words + i / 8];
    }
    out[cut..].copy_from_slice(&data[cut..]);
    out
}

/// Pick the smallest stored form of a raw block under the configured
/// compression. Returns the codec and, for compressed codecs, the stored
/// bytes (`None` means "store raw"). Deterministic per content.
fn encode_block(raw: &[u8], compression: Compression) -> (BlockCodec, Option<Vec<u8>>) {
    if compression == Compression::None || raw.len() < MIN_COMPRESS_LEN {
        return (BlockCodec::Raw, None);
    }
    let mut best = (BlockCodec::Raw, None);
    let mut best_len = raw.len();
    let lz = lz4_flex::compress(raw);
    if lz.len() < best_len {
        best_len = lz.len();
        best = (BlockCodec::Lz4, Some(lz));
    }
    let sh = lz4_flex::compress(&shuffle8(raw));
    if sh.len() < best_len {
        best = (BlockCodec::ShuffleLz4, Some(sh));
    }
    best
}

/// Decode one stored block back to its raw bytes. The stored slice has
/// already passed its CRC, so any failure here means the manifest and
/// the block bytes disagree — reported as corruption by the caller.
fn decode_block<'a>(stored: &'a [u8], loc: &BlockLoc) -> Option<Cow<'a, [u8]>> {
    match loc.codec {
        BlockCodec::Raw => (loc.raw_len == loc.len).then_some(Cow::Borrowed(stored)),
        BlockCodec::Lz4 => {
            let raw = lz4_flex::decompress(stored, loc.raw_len as usize).ok()?;
            (raw.len() == loc.raw_len as usize).then_some(Cow::Owned(raw))
        }
        BlockCodec::ShuffleLz4 => {
            let shuffled = lz4_flex::decompress(stored, loc.raw_len as usize).ok()?;
            (shuffled.len() == loc.raw_len as usize).then(|| Cow::Owned(unshuffle8(&shuffled)))
        }
    }
}

/// What one committed epoch cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochStats {
    /// The chain sequence number assigned to the commit.
    pub epoch: u64,
    /// Whether it was written as a full base (vs a delta).
    pub full: bool,
    /// Logical image payload (what a full-image write would cost).
    pub image_bytes: u64,
    /// Bytes actually written to disk (new blocks, post-compression, +
    /// manifest).
    pub bytes_written: u64,
    /// Bytes of section payload the commit chunked and hashed. With
    /// dirty tracking, clean hinted sections are re-referenced without
    /// being read, so this falls below `image_bytes`.
    pub bytes_hashed: u64,
    /// Uncompressed size of the newly written blocks — what the epoch
    /// would have put on disk (excluding the manifest) without
    /// compression.
    pub new_block_raw_bytes: u64,
    /// Blocks referenced by the epoch in total.
    pub blocks_total: u64,
    /// Blocks newly written by the epoch.
    pub blocks_new: u64,
}

/// What one scrub pass did (see [`DeltaStore::scrub`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Quarantined epochs re-fetched from the tier, verified, and
    /// reinstated in the local chain.
    pub healed: Vec<u64>,
    /// Stale `.bad` directories removed because a healthy live epoch of
    /// the same number already exists (a later commit reused the number,
    /// or an earlier heal already ran).
    pub cleaned: Vec<u64>,
    /// Quarantined epochs the tier could not supply (no seal, or the
    /// tier copy failed verification): their `.bad` directories are left
    /// in place for forensics.
    pub missing: Vec<u64>,
    /// Live epochs whose manifests were verified readable.
    pub verified: usize,
}

impl ScrubReport {
    /// Whether the pass changed nothing on disk (the idempotence
    /// property: scrubbing a healthy chain, or scrubbing twice, is a
    /// no-op).
    pub fn is_noop(&self) -> bool {
        self.healed.is_empty() && self.cleaned.is_empty()
    }
}

/// The refs one hinted section resolved to at the previous commit of
/// this handle, keyed by the producer's generation stamp.
struct SectionCache {
    generation: u64,
    raw_len: usize,
    refs: Vec<(BlockKey, BlockLoc)>,
}

/// One store's attachment to a tier shipper runtime: the runtime may be
/// private to this store (the classic [`DeltaStore::attach_tier`] path,
/// lane 0 of a runtime nobody else sees) or shared by many tenants'
/// stores ([`DeltaStore::attach_shared_tier`]), in which case `lane`
/// scopes this store's queue/durable-set/sticky-error and `ns` prefixes
/// its keys in the tier.
struct TierAttachment {
    runtime: Arc<TierRuntime>,
    lane: usize,
    ns: String,
}

/// The synchronous store core: chunking, dedup, chain layout, GC, restore.
/// Wrap it in a [`StoreWriter`] to take it off the ranks' critical path.
pub struct DeltaStore {
    dir: PathBuf,
    config: StoreConfig,
    /// Committed epochs, ascending.
    epochs: Vec<u64>,
    /// Consecutive delta epochs since the last full base.
    chain_len: usize,
    /// Content index of the chain head: every block the latest epoch
    /// references, so the next commit can dedup against the live image.
    index: HashMap<BlockKey, BlockLoc>,
    /// Dirty tracking: per `(rank, section)`, the hinted generation and
    /// block refs of the previous commit. A section whose hint matches
    /// is re-referenced without chunking or hashing. Run-local — never
    /// persisted, cleared by full bases and pruned with GC.
    section_cache: HashMap<(usize, String), SectionCache>,
    /// Epochs whose manifests were unreadable at open and were renamed
    /// aside to `epoch_NNNNNN.bad` so restart could fall back.
    quarantined: Vec<u64>,
    /// Stats of the commits performed by this handle.
    stats: Vec<EpochStats>,
    /// The remote second tier, when attached: this store's lane in a
    /// (possibly shared) shipper runtime, plus its key namespace.
    tier: Option<TierAttachment>,
    /// Attached flight recorder: commits, GC decisions and quarantines
    /// land on its store lane.
    telemetry: Option<Arc<Telemetry>>,
}

impl DeltaStore {
    /// Open (or initialize) a store directory with default tunables.
    pub fn open(dir: impl Into<PathBuf>) -> Result<DeltaStore, StoreError> {
        DeltaStore::open_with(dir, StoreConfig::default())
    }

    /// Open (or initialize) a store directory. Leftover `*.tmp` epoch
    /// directories from interrupted commits are removed; committed epochs
    /// are discovered and the chain head's content index is rebuilt so
    /// subsequent commits continue the delta chain.
    ///
    /// A chain head whose manifest is structurally broken (fails to
    /// decode, or the `manifest.bin` file is missing — e.g. half-written
    /// by a pre-atomic-commit writer) is **quarantined**: the epoch
    /// directory is renamed to `epoch_NNNNNN.bad` (preserved for
    /// forensics, invisible to the chain) and the open falls back to the
    /// newest *readable* epoch — restart proceeds from older state
    /// instead of failing outright. Quarantined epochs are listed by
    /// [`DeltaStore::quarantined`]. Transient I/O failures (permissions,
    /// fd exhaustion) are returned as errors, never quarantined.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        config: StoreConfig,
    ) -> Result<DeltaStore, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::io("create dir", &dir, e))?;
        let mut epochs = Vec::new();
        let entries = std::fs::read_dir(&dir).map_err(|e| StoreError::io("read dir", &dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io("read dir", &dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name.strip_prefix("epoch_") {
                if let Some(stem) = rest.strip_suffix(".tmp") {
                    // An interrupted commit: never renamed, safe to drop.
                    if stem.chars().all(|c| c.is_ascii_digit()) {
                        std::fs::remove_dir_all(entry.path())
                            .map_err(|e| StoreError::io("remove tmp", &entry.path(), e))?;
                    }
                } else if rest.chars().all(|c| c.is_ascii_digit()) {
                    if let Ok(e) = rest.parse::<u64>() {
                        epochs.push(e);
                    }
                }
                // `epoch_NNNNNN.bad` (quarantined earlier) is ignored.
            }
        }
        epochs.sort_unstable();
        // The v1 format predates both compression and hashed-bytes
        // accounting; writing it forces the matching legacy behavior.
        let config = if config.format == ManifestFormat::V1 {
            StoreConfig {
                compression: Compression::None,
                dirty_tracking: false,
                ..config
            }
        } else {
            config
        };
        let mut store = DeltaStore {
            dir,
            config: StoreConfig {
                block_size: config.block_size.max(1),
                retain_epochs: config.retain_epochs.max(1),
                writer_threads: config.writer_threads.max(1),
                queue_depth: config.queue_depth.max(1),
                ..config
            },
            epochs,
            chain_len: 0,
            index: HashMap::new(),
            section_cache: HashMap::new(),
            quarantined: Vec::new(),
            stats: Vec::new(),
            tier: None,
            telemetry: None,
        };
        store.rebuild_head_state()?;
        Ok(store)
    }

    /// Attach a flight recorder. Commit/GC/quarantine events flow onto
    /// its store lane; an attached tier runtime inherits it for its
    /// ship/seal events.
    pub fn attach_telemetry(&mut self, tel: Arc<Telemetry>) {
        if let Some(tier) = &self.tier {
            tier.runtime.attach_telemetry(tier.lane, tel.clone());
        }
        self.telemetry = Some(tel);
    }

    /// Emit one event on the store lane, stamped with the recorder's
    /// observed virtual-clock high-water mark (the store writer runs on
    /// a background thread with no virtual clock of its own).
    fn emit(&self, kind: simnet::telemetry::EventKind, a: u64, b: u64, c: u64) {
        if let Some(tel) = &self.telemetry {
            tel.emit(tel.store_lane(), kind, tel.observed_now(), a, b, c);
        }
    }

    /// Like [`DeltaStore::open_with`], with a remote second tier attached
    /// (see [`DeltaStore::attach_tier`]): local epochs missing from the
    /// tier are queued for upload, and a chain whose newest epochs are
    /// missing or corrupt locally is transparently hydrated from the
    /// tier — including the extreme case of an empty (deleted) local
    /// store directory and a remote-only chain.
    pub fn open_with_tier(
        dir: impl Into<PathBuf>,
        config: StoreConfig,
        tier: Arc<dyn ObjectTier>,
        tier_config: TierConfig,
    ) -> Result<DeltaStore, StoreError> {
        let mut store = DeltaStore::open_with(dir, config)?;
        store.attach_tier(tier, tier_config)?;
        Ok(store)
    }

    /// Head repair + content-index rebuild: quarantine unreadable heads
    /// until a manifest decodes (or the chain is empty), then rebuild
    /// the dedup index and chain length from the surviving head.
    /// Quarantine is reserved for *structural* damage — a manifest that
    /// fails to decode, or an epoch directory missing its manifest file
    /// (a pre-atomic-commit torn write). A transient I/O failure
    /// (permissions, fd exhaustion, a flaky network mount) propagates as
    /// an error instead: renaming a healthy newest epoch aside over a
    /// hiccup would silently discard committed state.
    ///
    /// Also run after tier hydration and scrubbing, both of which can
    /// change which epoch is the chain head.
    fn rebuild_head_state(&mut self) -> Result<(), StoreError> {
        self.index.clear();
        self.section_cache.clear();
        self.chain_len = 0;
        let store = self;
        while let Some(&latest) = store.epochs.last() {
            let manifest = match store.read_manifest(latest) {
                Ok(m) => m,
                Err(StoreError::Manifest { .. }) => {
                    store.quarantine(latest)?;
                    continue;
                }
                Err(StoreError::MissingEpoch { .. }) => {
                    // The directory vanished under us: drop it from the
                    // view, nothing on disk to rename.
                    store.epochs.retain(|&e| e != latest);
                    continue;
                }
                Err(err) => {
                    if store
                        .epoch_dir(latest)
                        .join("manifest.bin")
                        .try_exists()
                        .map_err(|e| {
                            StoreError::io("stat", &store.epoch_dir(latest).join("manifest.bin"), e)
                        })?
                    {
                        // The file is there but unreadable right now:
                        // surface the I/O error, do not destroy state.
                        return Err(err);
                    }
                    store.quarantine(latest)?;
                    continue;
                }
            };
            for (_, _, _, sections) in &manifest.ranks {
                for (_, blocks) in sections {
                    for &(key, loc) in blocks {
                        store.index.insert(key, loc);
                    }
                }
            }
            if store.config.format == ManifestFormat::V1 {
                // A v1 writer over a v2 chain head: compressed blocks in
                // the dedup index would let a delta reference a codec a
                // v1 manifest cannot express (its decoder would hand the
                // LZ4 bitstream back as section content). Dedup only
                // against blocks v1 can reference.
                store.index.retain(|_, loc| loc.codec == BlockCodec::Raw);
            }
            // Chain length = epochs since the newest full base. An
            // unreadable *older* manifest leaves the head restorable
            // (manifests are self-contained) but the chain length
            // unknowable: pin it to `max_chain` so the next commit
            // starts a fresh full base instead of extending a chain of
            // unknown depth.
            store.chain_len = 0;
            for &e in store.epochs.iter().rev() {
                let full = if e == latest {
                    manifest.full
                } else {
                    match store.read_manifest(e) {
                        Ok(m) => m.full,
                        Err(_) => {
                            store.chain_len = store.config.max_chain;
                            break;
                        }
                    }
                };
                if full {
                    break;
                }
                store.chain_len += 1;
            }
            break;
        }
        Ok(())
    }

    /// Rename an epoch whose manifest cannot be read to
    /// `epoch_NNNNNN.bad` and drop it from the chain view.
    fn quarantine(&mut self, epoch: u64) -> Result<(), StoreError> {
        let from = self.epoch_dir(epoch);
        let to = self.dir.join(format!("epoch_{epoch:06}.bad"));
        // A stale `.bad` from an earlier quarantine of the same epoch
        // number must not block the rename.
        if to.exists() {
            std::fs::remove_dir_all(&to).map_err(|e| StoreError::io("remove bad", &to, e))?;
        }
        match std::fs::rename(&from, &to) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::io("quarantine", &from, e)),
        }
        self.epochs.retain(|&e| e != epoch);
        self.quarantined.push(epoch);
        self.emit(simnet::telemetry::EventKind::Quarantine, epoch, 0, 0);
        Ok(())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The tunables in force.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Committed epochs, ascending (restorable ones after GC).
    pub fn epochs(&self) -> &[u64] {
        &self.epochs
    }

    /// The newest committed epoch.
    pub fn latest(&self) -> Option<u64> {
        self.epochs.last().copied()
    }

    /// Epochs whose manifests were unreadable at open and were renamed
    /// aside (`epoch_NNNNNN.bad`) so the chain could fall back to older
    /// state.
    pub fn quarantined(&self) -> &[u64] {
        &self.quarantined
    }

    /// Stats of the commits performed through this handle, in order.
    pub fn stats(&self) -> &[EpochStats] {
        &self.stats
    }

    // -----------------------------------------------------------------
    // The remote second tier
    // -----------------------------------------------------------------

    /// Attach a remote tier and spawn its background shipper.
    ///
    /// Reconciles both directions in one tier sweep: local epochs whose
    /// content the tier does not durably hold are queued for upload, and
    /// epochs the restore target needs but the local chain is missing
    /// (a behind or deleted local store) hydrate down (see
    /// [`DeltaStore::hydrate_from_tier`]). A seal only counts as durable
    /// for a *locally present* epoch when its recorded manifest CRC
    /// matches the local manifest: after a quarantine the chain reuses
    /// epoch numbers, and a stale seal left by the quarantined
    /// predecessor must neither let GC delete the only copy of the
    /// current content nor let a remote-only restore resurrect the stale
    /// state — mismatched epochs are re-shipped (the upload overwrites
    /// the tier objects, seal last).
    ///
    /// From here on every commit is queued for upload after its local
    /// rename, and retention GC refuses to delete any local epoch whose
    /// upload is not yet durable.
    ///
    /// Returns the epochs hydrated from the tier, ascending.
    pub fn attach_tier(
        &mut self,
        tier: Arc<dyn ObjectTier>,
        config: TierConfig,
    ) -> Result<Vec<u64>, StoreError> {
        let runtime = Arc::new(TierRuntime::spawn(tier, config));
        self.attach_runtime(runtime, String::new())
    }

    /// Attach this store as one tenant lane of a [`SharedTier`]: epochs
    /// ship through the shared shipper thread under `ns`-prefixed keys
    /// (see [`crate::tier::tenant_namespace`]), with this store's own
    /// queue, durable set, and sticky error. Reconcile/hydrate semantics
    /// are exactly [`DeltaStore::attach_tier`]'s, scoped to the
    /// namespace.
    pub fn attach_shared_tier(
        &mut self,
        shared: &SharedTier,
        ns: &str,
    ) -> Result<Vec<u64>, StoreError> {
        self.attach_runtime(shared.runtime().clone(), ns.to_string())
    }

    /// The shared attach engine: reconcile against the tier under `ns`,
    /// register a lane, hydrate, queue the unshipped backlog.
    fn attach_runtime(
        &mut self,
        runtime: Arc<TierRuntime>,
        ns: String,
    ) -> Result<Vec<u64>, StoreError> {
        let tier = runtime.tier.clone();
        let config = runtime.config;
        let seals = crate::tier::sealed_seals(&*tier, config, &ns)?;
        let mut durable: BTreeSet<u64> = BTreeSet::new();
        for (&epoch, seal) in &seals {
            let manifest_path = self.epoch_dir(epoch).join("manifest.bin");
            if manifest_path.is_file() {
                let local = Self::read_file(&manifest_path)?;
                if local.len() as u64 == seal.manifest_len && crc32(&local) == seal.manifest_crc {
                    durable.insert(epoch);
                }
                // Mismatch: the tier holds a different epoch under this
                // number (quarantine + reuse). Not durable — re-shipped
                // below.
            } else {
                // No local copy: the tier copy is the (only) truth.
                durable.insert(epoch);
            }
        }
        let sealed: BTreeSet<u64> = seals.keys().copied().collect();
        let lane = runtime.add_lane(self.dir.clone(), ns.clone(), durable.clone());
        if let Some(tel) = &self.telemetry {
            runtime.attach_telemetry(lane, tel.clone());
        }
        self.tier = Some(TierAttachment { runtime, lane, ns });
        let att = self.tier.as_ref().expect("tier just attached");
        let ns = att.ns.clone();
        let hydrated = self.hydrate_with(&*tier, config, &ns, &sealed)?;
        let att = self.tier.as_ref().expect("tier just attached");
        for &e in &self.epochs {
            if !durable.contains(&e) {
                att.runtime.enqueue(att.lane, e);
            }
        }
        Ok(hydrated)
    }

    /// Whether a remote tier is attached.
    pub fn has_tier(&self) -> bool {
        self.tier.is_some()
    }

    /// Wait until every queued epoch upload is durable in the tier.
    /// Returns the shipper's sticky error, if any; trivially succeeds
    /// with no tier attached.
    pub fn tier_flush(&self) -> Result<(), StoreError> {
        match &self.tier {
            Some(t) => t.runtime.flush(t.lane).map_err(StoreError::Tier),
            None => Ok(()),
        }
    }

    /// Epochs whose upload is durable (their seal is in the tier).
    pub fn tier_durable(&self) -> Vec<u64> {
        self.tier
            .as_ref()
            .map(|t| t.runtime.durable(t.lane).into_iter().collect())
            .unwrap_or_default()
    }

    /// Shipping statistics, if a tier is attached.
    pub fn tier_stats(&self) -> Option<TierStats> {
        self.tier.as_ref().map(|t| t.runtime.stats(t.lane))
    }

    /// A cloneable live view of the shipper's statistics, if a tier is
    /// attached. Survives the store moving into a background writer
    /// thread ([`StoreWriter::from_store`]), which is how a session keeps
    /// reporting tier stats in its telemetry snapshot.
    pub fn tier_stats_handle(&self) -> Option<crate::tier::TierStatsHandle> {
        self.tier.as_ref().map(|t| t.runtime.stats_handle(t.lane))
    }

    /// This store's lane's sticky shipper error, if it has failed.
    pub fn tier_error(&self) -> Option<TierError> {
        self.tier.as_ref().and_then(|t| t.runtime.error(t.lane))
    }

    /// Install one verified epoch's bytes as a local epoch directory,
    /// atomically (tmp dir + rename), replacing any existing directory
    /// of that number.
    fn install_epoch(&self, epoch: u64, blocks: &[u8], manifest: &[u8]) -> Result<(), StoreError> {
        let tmp = self.dir.join(format!("epoch_{epoch:06}.tmp"));
        if tmp.exists() {
            std::fs::remove_dir_all(&tmp).map_err(|e| StoreError::io("remove tmp", &tmp, e))?;
        }
        std::fs::create_dir_all(&tmp).map_err(|e| StoreError::io("create tmp", &tmp, e))?;
        for (name, data) in [("blocks.bin", blocks), ("manifest.bin", manifest)] {
            let path = tmp.join(name);
            let mut f =
                std::fs::File::create(&path).map_err(|e| StoreError::io("create", &path, e))?;
            f.write_all(data)
                .map_err(|e| StoreError::io("write", &path, e))?;
            f.sync_all().map_err(|e| StoreError::io("sync", &path, e))?;
        }
        let final_dir = self.epoch_dir(epoch);
        if final_dir.exists() {
            std::fs::remove_dir_all(&final_dir)
                .map_err(|e| StoreError::io("remove stale epoch", &final_dir, e))?;
        }
        std::fs::rename(&tmp, &final_dir).map_err(|e| StoreError::io("rename", &final_dir, e))
    }

    /// After an epoch is reinstated locally, drop its stale `.bad` twin
    /// (if any) and its quarantine listing, and splice it into the
    /// chain view.
    fn adopt_epoch(&mut self, epoch: u64) -> Result<(), StoreError> {
        let bad = self.dir.join(format!("epoch_{epoch:06}.bad"));
        if bad.exists() {
            std::fs::remove_dir_all(&bad).map_err(|e| StoreError::io("remove bad", &bad, e))?;
        }
        self.quarantined.retain(|&q| q != epoch);
        if !self.epochs.contains(&epoch) {
            self.epochs.push(epoch);
            self.epochs.sort_unstable();
        }
        Ok(())
    }

    /// Hydrate the chain from the attached tier: determine the restore
    /// target (the newer of the local and tier chain heads), and
    /// download every epoch that target's manifest references but the
    /// local chain is missing — verified against its seal — then rebuild
    /// the head state. Covers both directions of damage: a local chain
    /// that is behind or entirely gone (remote-only restore pulls the
    /// tier head plus its bases), and a current local head whose *base*
    /// epochs were lost (partial disk damage pulls just the bases back).
    /// Epochs already present locally are left untouched.
    ///
    /// Returns the epochs installed, ascending.
    pub fn hydrate_from_tier(&mut self) -> Result<Vec<u64>, StoreError> {
        let att = self.tier.as_ref().ok_or(StoreError::NoTier)?;
        let tier = att.runtime.tier.clone();
        let config = att.runtime.config;
        let ns = att.ns.clone();
        let sealed = sealed_epochs(&*tier, config, &ns)?;
        self.hydrate_with(&*tier, config, &ns, &sealed)
    }

    /// [`DeltaStore::hydrate_from_tier`] against an explicit tier handle
    /// and a pre-listed seal set (so attach does one sweep, not two).
    fn hydrate_with(
        &mut self,
        tier: &dyn ObjectTier,
        config: TierConfig,
        ns: &str,
        sealed: &BTreeSet<u64>,
    ) -> Result<Vec<u64>, StoreError> {
        let tier_head = sealed.last().copied();
        let local_head = self.latest();
        // The restore target: the newer of the two heads.
        let Some(target) = local_head.max(tier_head) else {
            return Ok(Vec::new());
        };
        // Pulling a *new* head down is all-or-nothing (installing a head
        // whose bases the tier cannot supply would advertise a chain
        // that cannot restore); repairing bases under a current local
        // head is best-effort (skipping leaves the chain no worse).
        let pulling_new_head = local_head.is_none_or(|l| target > l);
        let mut fetched_target: Option<(Vec<u8>, Vec<u8>)> = None;
        let manifest_buf = if self.epoch_dir(target).is_dir() {
            Self::read_file(&self.epoch_dir(target).join("manifest.bin"))?
        } else {
            let pair = fetch_sealed_epoch(tier, config, ns, target)?;
            let buf = pair.1.clone();
            fetched_target = Some(pair);
            buf
        };
        let manifest = Manifest::decode(&manifest_buf).map_err(|source| StoreError::Manifest {
            epoch: target,
            source,
        })?;
        // The target plus every epoch whose blocks it references:
        // exactly the set a restore of the target will read.
        let mut needed: BTreeSet<u64> = [target].into();
        for (_, _, _, sections) in &manifest.ranks {
            for (_, blocks) in sections {
                for (_, loc) in blocks {
                    needed.insert(loc.epoch);
                }
            }
        }
        let mut installed = Vec::new();
        for &epoch in &needed {
            if self.epoch_dir(epoch).is_dir() {
                continue;
            }
            if !sealed.contains(&epoch) {
                if pulling_new_head {
                    return Err(StoreError::MissingEpoch { epoch });
                }
                // The tier cannot supply it and the local chain did not
                // get worse: leave the gap for load-time reporting.
                continue;
            }
            let (blocks, manifest) = match fetched_target.take() {
                Some(pair) if epoch == target => pair,
                other => {
                    fetched_target = other;
                    fetch_sealed_epoch(tier, config, ns, epoch)?
                }
            };
            self.install_epoch(epoch, &blocks, &manifest)?;
            self.adopt_epoch(epoch)?;
            installed.push(epoch);
        }
        if !installed.is_empty() {
            self.rebuild_head_state()?;
        }
        Ok(installed)
    }

    /// Scrub the quarantine: heal `.bad` epochs from the attached tier.
    ///
    /// For every `epoch_NNNNNN.bad` directory on disk (and every epoch
    /// this handle quarantined at open):
    ///
    /// * if a healthy live epoch of the same number exists (a later
    ///   commit reused the number), the stale `.bad` directory is
    ///   removed (`cleaned`);
    /// * otherwise the epoch is fetched from the tier, verified against
    ///   its seal CRCs and its manifest decode, installed atomically,
    ///   and the `.bad` directory dropped (`healed`);
    /// * if the tier has no verifiable copy, the `.bad` directory is
    ///   left in place for forensics (`missing`).
    ///
    /// Every remaining live epoch's manifest is then verified readable
    /// (`verified`); a live epoch that fails is healed from the tier the
    /// same way. Scrubbing is idempotent: a healthy chain is a verified
    /// no-op, and a second pass after a heal finds nothing to do.
    pub fn scrub(&mut self) -> Result<ScrubReport, StoreError> {
        let att = self.tier.as_ref().ok_or(StoreError::NoTier)?;
        let tier = att.runtime.tier.clone();
        let config = att.runtime.config;
        let ns = att.ns.clone();
        self.scrub_with(&*tier, config, &ns)
    }

    /// The scrub pass against an explicit tier handle (what
    /// [`crate::tier::Scrubber`] calls; [`DeltaStore::scrub`] uses the
    /// attached tier).
    pub(crate) fn scrub_with(
        &mut self,
        tier: &dyn ObjectTier,
        config: TierConfig,
        ns: &str,
    ) -> Result<ScrubReport, StoreError> {
        let mut report = ScrubReport::default();
        // Candidates: every .bad directory on disk (durable evidence of
        // past quarantines) plus this handle's own quarantine list.
        let mut candidates: BTreeSet<u64> = self.quarantined.iter().copied().collect();
        let entries =
            std::fs::read_dir(&self.dir).map_err(|e| StoreError::io("read dir", &self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io("read dir", &self.dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name
                .strip_prefix("epoch_")
                .and_then(|r| r.strip_suffix(".bad"))
            {
                if stem.chars().all(|c| c.is_ascii_digit()) {
                    if let Ok(e) = stem.parse::<u64>() {
                        candidates.insert(e);
                    }
                }
            }
        }
        // One tier sweep serves the whole pass (quarantine healing and
        // live-chain repair both consult it).
        let sealed = sealed_epochs(tier, config, ns)?;
        for &epoch in &candidates {
            let live_ok = self.epoch_dir(epoch).is_dir() && self.read_manifest(epoch).is_ok();
            if live_ok {
                self.adopt_epoch(epoch)?;
                report.cleaned.push(epoch);
                continue;
            }
            if !sealed.contains(&epoch) {
                report.missing.push(epoch);
                continue;
            }
            match fetch_sealed_epoch(tier, config, ns, epoch) {
                Ok((blocks, manifest_buf)) => {
                    // Verify the manifest decodes before trusting the
                    // tier copy over the quarantined one.
                    if Manifest::decode(&manifest_buf).is_err() {
                        report.missing.push(epoch);
                        continue;
                    }
                    self.install_epoch(epoch, &blocks, &manifest_buf)?;
                    self.adopt_epoch(epoch)?;
                    report.healed.push(epoch);
                }
                Err(TierError::NotFound { .. } | TierError::Corrupt { .. }) => {
                    report.missing.push(epoch);
                }
                Err(e) => return Err(StoreError::Tier(e)),
            }
        }
        // Verify the live chain; heal in place anything that rotted
        // since open (an older epoch's manifest, say).
        for epoch in self.epochs.clone() {
            match self.read_manifest(epoch) {
                Ok(_) => report.verified += 1,
                Err(StoreError::Manifest { .. } | StoreError::MissingEpoch { .. }) => {
                    if !sealed.contains(&epoch) {
                        report.missing.push(epoch);
                        continue;
                    }
                    match fetch_sealed_epoch(tier, config, ns, epoch) {
                        Ok((blocks, manifest_buf)) if Manifest::decode(&manifest_buf).is_ok() => {
                            self.install_epoch(epoch, &blocks, &manifest_buf)?;
                            report.healed.push(epoch);
                        }
                        Ok(_) | Err(TierError::NotFound { .. } | TierError::Corrupt { .. }) => {
                            report.missing.push(epoch);
                        }
                        Err(e) => return Err(StoreError::Tier(e)),
                    }
                }
                Err(e) => return Err(e),
            }
        }
        if !report.healed.is_empty() {
            report.healed.sort_unstable();
            report.healed.dedup();
            self.rebuild_head_state()?;
        }
        Ok(report)
    }

    fn epoch_dir(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("epoch_{epoch:06}"))
    }

    fn read_file(path: &Path) -> Result<Vec<u8>, StoreError> {
        let mut buf = Vec::new();
        std::fs::File::open(path)
            .map_err(|e| StoreError::io("open", path, e))?
            .read_to_end(&mut buf)
            .map_err(|e| StoreError::io("read", path, e))?;
        Ok(buf)
    }

    fn read_manifest(&self, epoch: u64) -> Result<Manifest, StoreError> {
        let dir = self.epoch_dir(epoch);
        if !dir.is_dir() {
            return Err(StoreError::MissingEpoch { epoch });
        }
        let buf = Self::read_file(&dir.join("manifest.bin"))?;
        Manifest::decode(&buf).map_err(|source| StoreError::Manifest { epoch, source })
    }

    /// The Gear table for content-defined chunking: one pseudorandom u64
    /// per byte value (splitmix64 of the byte).
    fn gear_table() -> &'static [u64; 256] {
        static TABLE: std::sync::OnceLock<[u64; 256]> = std::sync::OnceLock::new();
        TABLE.get_or_init(|| {
            let mut t = [0u64; 256];
            for (i, e) in t.iter_mut().enumerate() {
                let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *e = z ^ (z >> 31);
            }
            t
        })
    }

    /// Cut one section into content-defined chunks (Gear rolling hash,
    /// FastCDC-style bounds): boundaries follow the *content*, so an
    /// insertion or deletion early in a section shifts block boundaries
    /// only locally and the unchanged tail still dedups — exactly the
    /// shape of a rank whose arrays grow or shrink between epochs (e.g.
    /// atom migration). `avg` is the target mean chunk size; actual chunks
    /// stay within [avg/4, 4*avg].
    fn cut_points(data: &[u8], avg: usize) -> Vec<(usize, usize)> {
        let gear = Self::gear_table();
        let mask = (avg.next_power_of_two() as u64).wrapping_sub(1);
        let min = (avg / 4).max(1);
        let max = avg * 4;
        let mut cuts = Vec::with_capacity(data.len() / avg + 1);
        let mut start = 0;
        while start < data.len() {
            let mut h: u64 = 0;
            let hard_end = (start + max).min(data.len());
            let mut end = hard_end;
            let scan_from = (start + min).min(data.len());
            // Warm the rolling hash over the minimum region, then look
            // for a content-defined boundary.
            for (i, &b) in data[start..hard_end].iter().enumerate() {
                h = (h << 1).wrapping_add(gear[b as usize]);
                if start + i + 1 >= scan_from && h & mask == 0 {
                    end = start + i + 1;
                    break;
                }
            }
            cuts.push((start, end - start));
            start = end;
        }
        cuts
    }

    /// Chunk one rank image's sections into hashed, CRC'd block records.
    /// Sections named in `skip` (clean per their generation hints) are
    /// passed through unchunked — not a byte of them is read here.
    fn chunk_rank(img: &RankImage, block_size: usize, skip: &HashSet<String>) -> RankChunks {
        img.sections()
            .map(|(name, data)| {
                if skip.contains(name) {
                    return (name.to_string(), None);
                }
                let recs = Self::cut_points(data, block_size)
                    .into_iter()
                    .map(|(start, len)| {
                        let chunk = &data[start..start + len];
                        ChunkRec {
                            key: (fnv1a(chunk), fnv1a_seeded(0x5EED, chunk)),
                            crc: crc32(chunk),
                            start,
                            len,
                        }
                    })
                    .collect();
                (name.to_string(), Some(recs))
            })
            .collect()
    }

    /// Commit one epoch: write a full base or a delta against the chain
    /// head, atomically (temp directory + rename), then garbage-collect.
    ///
    /// The chain assigns its own monotonic sequence number (the manifest
    /// epoch and directory name); the coordinator-assigned epochs inside
    /// the [`RankImage`]s are preserved verbatim. The two diverge exactly
    /// when one chain spans several runs — coordinator epochs restart at 1
    /// after every restore, the chain keeps counting.
    pub fn commit(&mut self, image: &WorldImage) -> Result<EpochStats, StoreError> {
        // Validate the image: dense ranks, one consistent image epoch.
        if image.ranks.is_empty() {
            return Err(StoreError::InconsistentImage("no ranks".into()));
        }
        let img_epoch = image.ranks[0].epoch;
        for (i, r) in image.ranks.iter().enumerate() {
            if r.rank != i {
                return Err(StoreError::InconsistentImage(format!(
                    "slot {i} holds rank {}",
                    r.rank
                )));
            }
            if r.epoch != img_epoch {
                return Err(StoreError::InconsistentImage(format!(
                    "rank {i} is epoch {}, rank 0 is epoch {img_epoch}",
                    r.epoch
                )));
            }
            if r.nranks != image.ranks.len() {
                return Err(StoreError::InconsistentImage(format!(
                    "rank {i} claims a {}-rank world, image has {}",
                    r.nranks,
                    image.ranks.len()
                )));
            }
        }
        let epoch = self.epochs.last().map_or(1, |&l| l + 1);

        let full = self.epochs.is_empty() || self.chain_len >= self.config.max_chain;
        if full {
            // A base references nothing older: dedup only within itself,
            // and no previous-commit section refs may be reused.
            self.index.clear();
            self.section_cache.clear();
        }

        // Dirty tracking: a hinted section whose generation stamp (and
        // length) matches what this handle cached at the previous commit
        // is provably unchanged — plan to re-reference it wholesale.
        let skips: Vec<HashSet<String>> = image
            .ranks
            .iter()
            .map(|img| {
                let mut skip = HashSet::new();
                if self.config.dirty_tracking {
                    for (name, data) in img.sections() {
                        let hint = img.section_hint(name);
                        let cache = self.section_cache.get(&(img.rank, name.to_string()));
                        if let (Some(generation), Some(cache)) = (hint, cache) {
                            if cache.generation == generation && cache.raw_len == data.len() {
                                skip.insert(name.to_string());
                            }
                        }
                    }
                }
                skip
            })
            .collect();

        // Chunk + hash every dirty section, fanned out over the writer
        // pool (the CPU-heavy part; dedup placement below stays
        // deterministic).
        let block_size = self.config.block_size;
        let threads = self.config.writer_threads.min(image.ranks.len()).max(1);
        let chunked: Vec<RankChunks> = if threads <= 1 {
            image
                .ranks
                .iter()
                .zip(&skips)
                .map(|(r, skip)| Self::chunk_rank(r, block_size, skip))
                .collect()
        } else {
            let per = image.ranks.len().div_ceil(threads);
            let mut parts: Vec<Vec<RankChunks>> = std::thread::scope(|s| {
                let handles: Vec<_> = image
                    .ranks
                    .chunks(per)
                    .zip(skips.chunks(per))
                    .map(|(slice, skip_slice)| {
                        s.spawn(move || {
                            slice
                                .iter()
                                .zip(skip_slice)
                                .map(|(r, skip)| Self::chunk_rank(r, block_size, skip))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("chunker thread"))
                    .collect()
            });
            let mut all = Vec::with_capacity(image.ranks.len());
            for part in parts.drain(..) {
                all.extend(part);
            }
            all
        };

        // Deterministic dedup placement: walk ranks/sections/blocks in
        // order, appending unseen content (under its winning codec) to
        // this epoch's blocks file; skipped sections re-reference their
        // previous refs untouched.
        let mut blocks_buf: Vec<u8> = Vec::new();
        let mut blocks_total = 0u64;
        let mut blocks_new = 0u64;
        let mut bytes_hashed = 0u64;
        let mut new_block_raw_bytes = 0u64;
        let mut new_cache: HashMap<(usize, String), SectionCache> = HashMap::new();
        let mut ranks_manifest = Vec::with_capacity(image.ranks.len());
        for (img, sections) in image.ranks.iter().zip(chunked) {
            let mut section_refs: Vec<SectionRefs> = Vec::with_capacity(sections.len());
            for (name, recs) in sections {
                let data = img.section(&name).expect("section exists");
                let refs = match recs {
                    None => {
                        // Clean per its hint: reuse the previous refs.
                        let cache = self
                            .section_cache
                            .get(&(img.rank, name.clone()))
                            .expect("skip plan implies a cache entry");
                        blocks_total += cache.refs.len() as u64;
                        cache.refs.clone()
                    }
                    Some(recs) => {
                        bytes_hashed += data.len() as u64;
                        let mut refs = Vec::with_capacity(recs.len());
                        for rec in recs {
                            blocks_total += 1;
                            let loc = match self.index.get(&rec.key) {
                                Some(&loc) => loc,
                                None => {
                                    let raw = &data[rec.start..rec.start + rec.len];
                                    let (codec, stored) =
                                        encode_block(raw, self.config.compression);
                                    let (stored_bytes, crc): (&[u8], u32) = match &stored {
                                        Some(c) => (c, crc32(c)),
                                        None => (raw, rec.crc),
                                    };
                                    let loc = BlockLoc {
                                        epoch,
                                        offset: blocks_buf.len() as u64,
                                        len: stored_bytes.len() as u32,
                                        raw_len: rec.len as u32,
                                        crc,
                                        codec,
                                    };
                                    blocks_buf.extend_from_slice(stored_bytes);
                                    self.index.insert(rec.key, loc);
                                    blocks_new += 1;
                                    new_block_raw_bytes += rec.len as u64;
                                    loc
                                }
                            };
                            refs.push((rec.key, loc));
                        }
                        refs
                    }
                };
                if let Some(generation) = img.section_hint(&name) {
                    new_cache.insert(
                        (img.rank, name.clone()),
                        SectionCache {
                            generation,
                            raw_len: data.len(),
                            refs: refs.clone(),
                        },
                    );
                }
                section_refs.push((name, refs));
            }
            ranks_manifest.push((img.rank, img.nranks, img.epoch, section_refs));
        }

        let manifest = Manifest {
            epoch,
            full,
            vendor_hint: image.vendor_hint.clone(),
            bytes_hashed,
            ranks: ranks_manifest,
        };
        let manifest_buf = manifest.encode(self.config.format);

        // Crash-safe commit: assemble in a temp dir, rename into place.
        let tmp = self.dir.join(format!("epoch_{epoch:06}.tmp"));
        if tmp.exists() {
            std::fs::remove_dir_all(&tmp).map_err(|e| StoreError::io("remove tmp", &tmp, e))?;
        }
        std::fs::create_dir_all(&tmp).map_err(|e| StoreError::io("create tmp", &tmp, e))?;
        let write = |name: &str, data: &[u8]| -> Result<(), StoreError> {
            let path = tmp.join(name);
            let mut f =
                std::fs::File::create(&path).map_err(|e| StoreError::io("create", &path, e))?;
            f.write_all(data)
                .map_err(|e| StoreError::io("write", &path, e))?;
            f.sync_all().map_err(|e| StoreError::io("sync", &path, e))
        };
        write("blocks.bin", &blocks_buf)?;
        write("manifest.bin", &manifest_buf)?;
        let final_dir = self.epoch_dir(epoch);
        std::fs::rename(&tmp, &final_dir).map_err(|e| StoreError::io("rename", &final_dir, e))?;

        self.epochs.push(epoch);
        self.chain_len = if full { 0 } else { self.chain_len + 1 };
        self.section_cache = new_cache;
        // Queue the sealed epoch for upload before GC runs: the epoch is
        // undurable until its seal lands, so the guard below keeps it
        // (and everything it references) on local disk meanwhile.
        if let Some(tier) = &self.tier {
            tier.runtime.enqueue(tier.lane, epoch);
        }
        self.gc();

        let stats = EpochStats {
            epoch,
            full,
            image_bytes: image.total_bytes() as u64,
            bytes_written: (blocks_buf.len() + manifest_buf.len()) as u64,
            bytes_hashed,
            new_block_raw_bytes,
            blocks_total,
            blocks_new,
        };
        self.stats.push(stats);
        self.emit(
            simnet::telemetry::EventKind::StoreCommit,
            epoch,
            full as u64,
            blocks_new,
        );
        if let Some(tel) = &self.telemetry {
            tel.metrics().counter("store.commits").incr();
            tel.metrics()
                .histogram("store.commit_bytes")
                .observe(stats.bytes_written);
        }
        Ok(stats)
    }

    /// Retention: keep the newest `retain_epochs` epochs plus everything
    /// their manifests still reference (a delta keeps its base alive),
    /// delete the rest.
    ///
    /// Housekeeping failures are non-fatal: the epoch just committed is
    /// already durable, so a stale directory that cannot be read or
    /// removed right now stays listed and is retried on the next commit —
    /// GC must never tear down a run whose checkpoints are all intact.
    fn gc(&mut self) {
        if self.epochs.len() <= self.config.retain_epochs {
            return;
        }
        let kept: Vec<u64> = self.epochs[self.epochs.len() - self.config.retain_epochs..].to_vec();
        let mut live: BTreeSet<u64> = kept.iter().copied().collect();
        // Upload-durability guard: with a tier attached, an epoch whose
        // upload is not yet sealed remotely is the *only* copy of its
        // state — retention must not race a slow (or failed) shipper
        // into deleting it. Undurable epochs count as live; they become
        // collectable on the first GC after their seal lands.
        let mut guarded = 0u64;
        if let Some(tier) = &self.tier {
            let durable = tier.runtime.durable(tier.lane);
            for &e in &self.epochs {
                if !durable.contains(&e) && live.insert(e) {
                    guarded += 1;
                }
            }
        }
        // Every retained epoch (retention window *and* undurable-guard
        // survivors) keeps the epochs its manifest references alive — a
        // delta keeps its base restorable locally.
        let roots: Vec<u64> = live.iter().copied().collect();
        for e in roots {
            match self.read_manifest(e) {
                Ok(manifest) => {
                    for (_, _, _, sections) in &manifest.ranks {
                        for (_, blocks) in sections {
                            for (_, loc) in blocks {
                                live.insert(loc.epoch);
                            }
                        }
                    }
                }
                // Can't prove what this manifest references: skip GC
                // entirely rather than risk deleting a live base.
                Err(_) => return,
            }
        }
        let dir = self.dir.clone();
        let before = self.epochs.len();
        self.epochs.retain(|e| {
            if live.contains(e) {
                return true;
            }
            match std::fs::remove_dir_all(dir.join(format!("epoch_{e:06}"))) {
                Ok(()) => false,
                Err(err) if err.kind() == std::io::ErrorKind::NotFound => false,
                // Deletion failed: keep it listed so the view matches the
                // disk and the next commit retries.
                Err(_) => true,
            }
        });
        self.emit(
            simnet::telemetry::EventKind::GcDecision,
            (before - self.epochs.len()) as u64,
            self.epochs.len() as u64,
            guarded,
        );
        // Prune the dedup index of blocks whose epochs are gone; without
        // this, a later commit could reference a deleted epoch and
        // produce a manifest that cannot be restored. The section cache
        // holds the same kind of refs and gets the same treatment.
        let alive: BTreeSet<u64> = self.epochs.iter().copied().collect();
        self.index.retain(|_, loc| alive.contains(&loc.epoch));
        self.section_cache
            .retain(|_, c| c.refs.iter().all(|(_, loc)| alive.contains(&loc.epoch)));
    }

    /// Reconstruct the newest epoch's world image.
    pub fn load_latest(&self) -> Result<WorldImage, StoreError> {
        let epoch = self.latest().ok_or(StoreError::Empty)?;
        self.load_epoch(epoch)
    }

    /// Reconstruct one epoch's world image by walking the chain: read its
    /// manifest, fetch every referenced block (CRC32-verified) from the
    /// epochs that wrote it, and reassemble the rank sections.
    pub fn load_epoch(&self, epoch: u64) -> Result<WorldImage, StoreError> {
        let manifest = self.read_manifest(epoch)?;
        let mut files: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut ranks = Vec::with_capacity(manifest.ranks.len());
        for (slot, (rank, nranks, rank_epoch, sections)) in manifest.ranks.iter().enumerate() {
            if *rank != slot {
                return Err(StoreError::InconsistentImage(format!(
                    "manifest slot {slot} holds rank {rank}"
                )));
            }
            let mut img = RankImage::new(*rank, *nranks, *rank_epoch);
            for (name, blocks) in sections {
                let total: usize = blocks.iter().map(|(_, l)| l.raw_len as usize).sum();
                let mut data = Vec::with_capacity(total);
                for (_, loc) in blocks {
                    let file = match files.entry(loc.epoch) {
                        std::collections::hash_map::Entry::Occupied(e) => &*e.into_mut(),
                        std::collections::hash_map::Entry::Vacant(v) => {
                            let dir = self.epoch_dir(loc.epoch);
                            if !dir.is_dir() {
                                return Err(StoreError::MissingEpoch { epoch: loc.epoch });
                            }
                            &*v.insert(Self::read_file(&dir.join("blocks.bin"))?)
                        }
                    };
                    let start = loc.offset as usize;
                    let end = start + loc.len as usize;
                    let corrupt = || StoreError::BlockCorrupt {
                        epoch,
                        src_epoch: loc.epoch,
                        offset: loc.offset,
                        rank: *rank,
                        section: name.clone(),
                    };
                    let slice = file.get(start..end).ok_or_else(corrupt)?;
                    // CRC the stored bytes first, then decode them: a
                    // decode failure after a CRC pass means the manifest
                    // itself disagrees with the block — still corruption,
                    // localized to the same (epoch, offset).
                    if crc32(slice) != loc.crc {
                        return Err(corrupt());
                    }
                    let raw = decode_block(slice, loc).ok_or_else(corrupt)?;
                    data.extend_from_slice(&raw);
                }
                img.put_section(name, data);
            }
            ranks.push(img);
        }
        Ok(WorldImage::new(manifest.vendor_hint, ranks))
    }

    /// Recompute per-epoch stats from the on-disk manifests (usable after
    /// a reopen, when [`DeltaStore::stats`] is empty). `bytes_written`
    /// counts the epoch's own files; `image_bytes` is the logical payload
    /// its manifest reconstructs.
    pub fn epoch_stats_on_disk(&self) -> Result<Vec<EpochStats>, StoreError> {
        let mut out = Vec::with_capacity(self.epochs.len());
        for &epoch in &self.epochs {
            let manifest = self.read_manifest(epoch)?;
            let dir = self.epoch_dir(epoch);
            let mut stats = EpochStats {
                epoch,
                full: manifest.full,
                image_bytes: 0,
                bytes_written: 0,
                bytes_hashed: manifest.bytes_hashed,
                new_block_raw_bytes: 0,
                blocks_total: 0,
                blocks_new: 0,
            };
            // A section may reference the same own-epoch block many times
            // (intra-epoch dedup); "new" counts distinct written blocks.
            let mut own: BTreeMap<u64, u64> = BTreeMap::new();
            for (_, _, _, sections) in &manifest.ranks {
                for (_, blocks) in sections {
                    for (_, loc) in blocks {
                        stats.blocks_total += 1;
                        stats.image_bytes += loc.raw_len as u64;
                        if loc.epoch == epoch {
                            own.insert(loc.offset, loc.raw_len as u64);
                        }
                    }
                }
            }
            stats.blocks_new = own.len() as u64;
            stats.new_block_raw_bytes = own.values().sum();
            for name in ["blocks.bin", "manifest.bin"] {
                let path = dir.join(name);
                let meta =
                    std::fs::metadata(&path).map_err(|e| StoreError::io("stat", &path, e))?;
                stats.bytes_written += meta.len();
            }
            out.push(stats);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// The background writer
// ---------------------------------------------------------------------------

/// Per-tenant admission limits on the shared writer: how much a tenant
/// may have waiting (epochs and bytes) before its *own* submits block.
/// Quotas isolate, they never share: a tenant over budget waits on its
/// own backlog draining while every other tenant's submits proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum queued (not yet finished) epochs; a submit beyond this
    /// blocks. At least 1 is always allowed.
    pub max_queue: usize,
    /// Maximum bytes of world images queued or mid-commit. A single
    /// image larger than the budget is admitted when the lane is empty
    /// (otherwise it could never ship at all).
    pub max_inflight_bytes: u64,
}

impl Default for TenantQuota {
    fn default() -> TenantQuota {
        TenantQuota {
            max_queue: StoreConfig::default().queue_depth,
            max_inflight_bytes: u64::MAX,
        }
    }
}

struct MuxLane {
    queue: VecDeque<WorldImage>,
    /// Bytes of every queued image plus the one mid-commit.
    queued_bytes: u64,
    in_flight: bool,
    error: Option<StoreError>,
    stats: Vec<EpochStats>,
    quota: TenantQuota,
    /// Submits that had to block on this lane's own quota.
    quota_waits: u64,
}

struct MuxState {
    lanes: Vec<MuxLane>,
    closed: bool,
    /// Round-robin cursor over lanes, so one tenant's burst cannot
    /// starve the others of the single committer thread.
    rr: usize,
    /// Test hook: while held, the committer dispatches nothing, letting
    /// tests fill quotas deterministically.
    held: bool,
}

struct MuxShared {
    state: Mutex<MuxState>,
    cv: Condvar,
}

/// The multi-tenant asynchronous face of the store: ONE background
/// committer thread owns every tenant's [`DeltaStore`] and drains their
/// bounded submit queues fair-share round-robin. Per lane, everything is
/// scoped to the tenant: its queue, its [`TenantQuota`] backpressure,
/// its sticky error, its [`EpochStats`]. The single-store
/// [`StoreWriter`] is a one-lane wrapper over this.
pub struct SharedStoreWriter {
    shared: Arc<MuxShared>,
    worker: Mutex<Option<std::thread::JoinHandle<Vec<DeltaStore>>>>,
}

impl SharedStoreWriter {
    /// Spawn the committer over one store per lane, in lane order.
    pub fn spawn_stores(stores: Vec<(DeltaStore, TenantQuota)>) -> SharedStoreWriter {
        let mut owned = Vec::with_capacity(stores.len());
        let mut lanes = Vec::with_capacity(stores.len());
        for (store, quota) in stores {
            owned.push(store);
            lanes.push(MuxLane {
                queue: VecDeque::new(),
                queued_bytes: 0,
                in_flight: false,
                error: None,
                stats: Vec::new(),
                quota,
                quota_waits: 0,
            });
        }
        let shared = Arc::new(MuxShared {
            state: Mutex::new(MuxState {
                lanes,
                closed: false,
                rr: 0,
                held: false,
            }),
            cv: Condvar::new(),
        });
        let worker_shared = shared.clone();
        let worker = std::thread::Builder::new()
            .name("ckpt-store-writer".into())
            .spawn(move || Self::committer(owned, worker_shared))
            .expect("spawn store writer");
        SharedStoreWriter {
            shared,
            worker: Mutex::new(Some(worker)),
        }
    }

    /// The committer thread: fair-share drain of every lane.
    fn committer(mut stores: Vec<DeltaStore>, shared: Arc<MuxShared>) -> Vec<DeltaStore> {
        loop {
            let (lane, image) = {
                let mut st = shared.state.lock().expect("writer lock");
                'wait: loop {
                    if !st.held {
                        let n = st.lanes.len();
                        for i in 0..n {
                            let idx = (st.rr + i) % n.max(1);
                            if let Some(img) = st.lanes[idx].queue.pop_front() {
                                st.lanes[idx].in_flight = true;
                                st.rr = (idx + 1) % n;
                                break 'wait (idx, img);
                            }
                        }
                        if st.closed {
                            return stores;
                        }
                    }
                    st = shared.cv.wait(st).expect("writer wait");
                }
            };
            // A queue slot just freed: wake blocked submitters early
            // (their bytes stay accounted until the commit finishes).
            shared.cv.notify_all();
            let image_bytes = image.total_bytes() as u64;
            let result = stores[lane].commit(&image);
            if result.is_err() {
                // A failing sink is a flight-recorder incident: record it
                // before the error goes sticky so the session's crash
                // dump explains the red run.
                if let Some(tel) = &stores[lane].telemetry {
                    let epoch = image.ranks.first().map_or(0, |r| r.epoch);
                    tel.emit(
                        tel.store_lane(),
                        simnet::telemetry::EventKind::SinkError,
                        tel.observed_now(),
                        epoch,
                        0,
                        0,
                    );
                    tel.note_incident();
                }
            }
            let mut st = shared.state.lock().expect("writer lock");
            let l = &mut st.lanes[lane];
            l.in_flight = false;
            l.queued_bytes = l.queued_bytes.saturating_sub(image_bytes);
            match result {
                Ok(s) => l.stats.push(s),
                Err(e) => {
                    l.error.get_or_insert(e);
                }
            }
            shared.cv.notify_all();
        }
    }

    /// How many lanes (tenants) this writer multiplexes.
    pub fn lanes(&self) -> usize {
        self.shared.state.lock().expect("writer lock").lanes.len()
    }

    /// Hand one epoch's world image to the background committer on
    /// `lane`. Blocks only while THIS lane is over its [`TenantQuota`]
    /// (queued epochs or in-flight bytes); a neighbor's backlog never
    /// blocks it. The lane's sticky error is returned to the caller and
    /// every later submitter.
    pub fn submit(&self, lane: usize, image: WorldImage) -> Result<(), StoreError> {
        let bytes = image.total_bytes() as u64;
        let mut st = self.shared.state.lock().expect("writer lock");
        let mut waited = false;
        loop {
            if let Some(e) = &st.lanes[lane].error {
                return Err(e.clone());
            }
            if st.closed {
                return Err(StoreError::Closed);
            }
            if !Self::over_quota(&st.lanes[lane], bytes) {
                let l = &mut st.lanes[lane];
                l.queue.push_back(image);
                l.queued_bytes += bytes;
                self.shared.cv.notify_all();
                return Ok(());
            }
            if !waited {
                waited = true;
                st.lanes[lane].quota_waits += 1;
            }
            st = self.shared.cv.wait(st).expect("writer wait");
        }
    }

    fn over_quota(lane: &MuxLane, incoming_bytes: u64) -> bool {
        let pending = lane.queued_bytes;
        lane.queue.len() >= lane.quota.max_queue.max(1)
            || (pending > 0
                && pending.saturating_add(incoming_bytes) > lane.quota.max_inflight_bytes)
    }

    /// Whether a submit of `bytes` on `lane` would block right now
    /// (quota probe for tests and admission-aware schedulers).
    pub fn would_block(&self, lane: usize, bytes: u64) -> bool {
        let st = self.shared.state.lock().expect("writer lock");
        Self::over_quota(&st.lanes[lane], bytes)
    }

    /// Submits that had to block on `lane`'s quota so far.
    pub fn quota_waits(&self, lane: usize) -> u64 {
        self.shared.state.lock().expect("writer lock").lanes[lane].quota_waits
    }

    /// Test hook: stop dispatching commits (current one finishes) until
    /// [`SharedStoreWriter::release_commits`], so tests can fill a
    /// lane's quota deterministically.
    pub fn hold_commits(&self) {
        self.shared.state.lock().expect("writer lock").held = true;
    }

    /// Resume dispatching after [`SharedStoreWriter::hold_commits`].
    pub fn release_commits(&self) {
        let mut st = self.shared.state.lock().expect("writer lock");
        st.held = false;
        self.shared.cv.notify_all();
    }

    /// Wait until every epoch submitted on `lane` is durably committed
    /// (or the lane failed). Returns the lane's sticky error, if any.
    pub fn flush_lane(&self, lane: usize) -> Result<(), StoreError> {
        let mut st = self.shared.state.lock().expect("writer lock");
        while (!st.lanes[lane].queue.is_empty() || st.lanes[lane].in_flight)
            && st.lanes[lane].error.is_none()
        {
            st = self.shared.cv.wait(st).expect("writer wait");
        }
        match &st.lanes[lane].error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Stats of the epochs committed on `lane` so far, in commit order.
    pub fn lane_stats(&self, lane: usize) -> Vec<EpochStats> {
        self.shared.state.lock().expect("writer lock").lanes[lane]
            .stats
            .clone()
    }

    /// The lane's sticky error, if its commits have failed.
    pub fn lane_error(&self, lane: usize) -> Option<StoreError> {
        self.shared.state.lock().expect("writer lock").lanes[lane]
            .error
            .clone()
    }

    /// Close every queue, drain them, join the committer and hand back
    /// the underlying stores in lane order. Lanes with a sticky error
    /// return their store too — the chain on disk is still the restart
    /// source; read the error first via
    /// [`SharedStoreWriter::lane_error`].
    pub fn finish(self) -> Result<Vec<DeltaStore>, StoreError> {
        self.shutdown().ok_or(StoreError::Closed)
    }

    /// Mark closed and join the worker; idempotent.
    fn shutdown(&self) -> Option<Vec<DeltaStore>> {
        {
            let mut st = self.shared.state.lock().expect("writer lock");
            st.closed = true;
            st.held = false;
            self.shared.cv.notify_all();
        }
        let handle = self.worker.lock().expect("worker lock").take()?;
        Some(handle.join().expect("store writer thread"))
    }
}

impl Drop for SharedStoreWriter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One tenant's [`ImageSink`] face of a [`SharedStoreWriter`]: what the
/// tenant's coordinator attaches, so its rendezvous hands epochs to its
/// own lane of the shared committer.
pub struct TenantSink {
    writer: Arc<SharedStoreWriter>,
    lane: usize,
}

impl TenantSink {
    /// The sink for `lane` of `writer`.
    pub fn new(writer: Arc<SharedStoreWriter>, lane: usize) -> TenantSink {
        TenantSink { writer, lane }
    }
}

impl ImageSink for TenantSink {
    fn submit(&self, image: WorldImage) -> Result<(), ImageError> {
        let epoch = image.ranks.first().map(|r| r.epoch).unwrap_or(0);
        self.writer
            .submit(self.lane, image)
            .map_err(|e| e.into_image_error(epoch))
    }
}

/// The asynchronous face of a single store: a background thread owns a
/// [`DeltaStore`] and drains a bounded submit queue. Attach it to the
/// coordinator ([`crate::coordinator::Coordinator::attach_sink`]) and the
/// round leader hands each completed epoch over inside the rendezvous —
/// the ranks resume while chunking, hashing and I/O proceed here.
///
/// Backpressure is the double buffer: a submit blocks only when
/// [`StoreConfig::queue_depth`] epochs are already waiting, which bounds
/// memory at `queue_depth + 1` in-flight world images.
///
/// Since the multi-tenant redesign this is a one-lane
/// [`SharedStoreWriter`]: same thread name, same queue semantics, one
/// tenant.
pub struct StoreWriter {
    inner: SharedStoreWriter,
}

impl StoreWriter {
    /// Open the store at `dir` and spawn the background writer.
    pub fn spawn(dir: impl Into<PathBuf>, config: StoreConfig) -> Result<StoreWriter, StoreError> {
        let store = DeltaStore::open_with(dir, config)?;
        Ok(StoreWriter::from_store(store))
    }

    /// Like [`StoreWriter::spawn`], with a remote second tier attached:
    /// the underlying store queues every committed epoch for upload and
    /// hydrates a behind (or empty) local chain from the tier at open.
    pub fn spawn_with_tier(
        dir: impl Into<PathBuf>,
        config: StoreConfig,
        tier: Arc<dyn ObjectTier>,
        tier_config: TierConfig,
    ) -> Result<StoreWriter, StoreError> {
        let store = DeltaStore::open_with_tier(dir, config, tier, tier_config)?;
        Ok(StoreWriter::from_store(store))
    }

    /// Spawn the background writer around a store the caller opened (and
    /// possibly configured — e.g. attached a flight recorder to) itself.
    pub fn from_store(store: DeltaStore) -> StoreWriter {
        let quota = TenantQuota {
            max_queue: store.config.queue_depth,
            max_inflight_bytes: u64::MAX,
        };
        StoreWriter {
            inner: SharedStoreWriter::spawn_stores(vec![(store, quota)]),
        }
    }

    /// Hand one epoch's world image to the background writer. Blocks only
    /// while the bounded queue is full (backpressure); a sticky writer
    /// error is returned to the caller and every later submitter.
    pub fn submit(&self, image: WorldImage) -> Result<(), StoreError> {
        self.inner.submit(0, image)
    }

    /// Wait until every submitted epoch is durably committed (or the
    /// writer failed). Returns the sticky error, if any.
    pub fn flush(&self) -> Result<(), StoreError> {
        self.inner.flush_lane(0)
    }

    /// Stats of the epochs committed so far, in commit order.
    pub fn stats(&self) -> Vec<EpochStats> {
        self.inner.lane_stats(0)
    }

    /// Close the queue, drain it, join the worker and hand back the
    /// underlying [`DeltaStore`] (e.g. to restart from the chain).
    pub fn finish(self) -> Result<(DeltaStore, Vec<EpochStats>), StoreError> {
        self.flush()?;
        let mut stores = self.inner.finish()?;
        let store = stores.pop().ok_or(StoreError::Closed)?;
        let stats = store.stats.clone();
        Ok((store, stats))
    }
}

impl ImageSink for StoreWriter {
    fn submit(&self, image: WorldImage) -> Result<(), ImageError> {
        let epoch = image.ranks.first().map(|r| r.epoch).unwrap_or(0);
        StoreWriter::submit(self, image).map_err(|e| e.into_image_error(epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "stool_store_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Deterministic pseudorandom bytes (xorshift64*): realistic content
    /// that does not collapse under intra-epoch dedup the way constant
    /// runs would.
    fn fill_bytes(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
            })
            .collect()
    }

    fn image(epoch: u64, nranks: usize, fill: u8, static_len: usize) -> WorldImage {
        let ranks = (0..nranks)
            .map(|r| {
                let mut img = RankImage::new(r, nranks, epoch);
                // "static" depends only on the rank: unchanged across
                // epochs. "hot" depends on `fill`: changes when it does.
                img.put_section("static", fill_bytes(r as u64 + 1, static_len));
                img.put_section("hot", fill_bytes((fill as u64) << 8 | r as u64, 600));
                img
            })
            .collect();
        WorldImage::new("MPICH".to_string(), ranks)
    }

    fn small_cfg() -> StoreConfig {
        StoreConfig {
            block_size: 128,
            retain_epochs: 3,
            max_chain: 4,
            writer_threads: 2,
            queue_depth: 2,
            ..StoreConfig::default()
        }
    }

    #[test]
    fn full_then_delta_roundtrip() {
        let dir = tmp_dir("rt");
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        let img1 = image(1, 3, 0x11, 3000);
        let img2 = image(2, 3, 0x22, 3000);
        let s1 = store.commit(&img1).unwrap();
        let s2 = store.commit(&img2).unwrap();
        assert!(s1.full && !s2.full);
        // The static sections dedup: the delta writes far fewer bytes.
        assert!(
            s2.bytes_written < s1.bytes_written / 2,
            "delta {} vs full {}",
            s2.bytes_written,
            s1.bytes_written
        );
        assert!(s2.blocks_new < s2.blocks_total);
        assert_eq!(store.load_epoch(1).unwrap(), img1);
        assert_eq!(store.load_epoch(2).unwrap(), img2);
        assert_eq!(store.load_latest().unwrap(), img2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn identical_epoch_writes_almost_nothing() {
        let dir = tmp_dir("ident");
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        let img1 = image(1, 2, 0x33, 4000);
        let mut img2 = image(2, 2, 0x33, 4000);
        img2.vendor_hint = "Open MPI".to_string();
        let s1 = store.commit(&img1).unwrap();
        let s2 = store.commit(&img2).unwrap();
        assert_eq!(s2.blocks_new, 0, "no content changed");
        assert!(
            s2.bytes_written < s1.bytes_written / 3,
            "manifest-only delta {} vs full {}",
            s2.bytes_written,
            s1.bytes_written
        );
        let back = store.load_epoch(2).unwrap();
        assert_eq!(back, img2);
        assert_eq!(back.vendor_hint, "Open MPI");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chain_rolls_over_to_full_base() {
        let dir = tmp_dir("roll");
        let cfg = StoreConfig {
            max_chain: 2,
            retain_epochs: 10,
            ..small_cfg()
        };
        let mut store = DeltaStore::open_with(&dir, cfg).unwrap();
        let mut fulls = Vec::new();
        for e in 1..=6 {
            let s = store.commit(&image(e, 2, e as u8, 500)).unwrap();
            fulls.push(s.full);
        }
        // Base, two deltas, base, two deltas.
        assert_eq!(fulls, vec![true, false, false, true, false, false]);
        for e in 1..=6 {
            assert_eq!(store.load_epoch(e).unwrap(), image(e, 2, e as u8, 500));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_retains_restorable_epochs_and_their_bases() {
        let dir = tmp_dir("gc");
        let cfg = StoreConfig {
            retain_epochs: 2,
            max_chain: 8,
            ..small_cfg()
        };
        let mut store = DeltaStore::open_with(&dir, cfg).unwrap();
        for e in 1..=5 {
            store.commit(&image(e, 2, e as u8, 500)).unwrap();
        }
        // Epoch 1 is the base of the whole chain: it must survive GC even
        // though only {4, 5} are in the retention window.
        let kept = store.epochs().to_vec();
        assert!(kept.contains(&1), "base retained: {kept:?}");
        assert!(kept.contains(&4) && kept.contains(&5));
        assert!(
            !kept.contains(&2) || !kept.contains(&3),
            "middle GC'd: {kept:?}"
        );
        // Everything still advertised is restorable.
        for &e in store.epochs() {
            store.load_epoch(e).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recurring_content_after_gc_is_rewritten_not_dangled() {
        // Regression: content A -> B -> A with aggressive retention. After
        // GC deletes epoch 1, the dedup index must not hand epoch 3 a
        // reference into the deleted epoch — the recurring content has to
        // be rewritten so the committed epoch stays restorable.
        let dir = tmp_dir("regc");
        let cfg = StoreConfig {
            retain_epochs: 1,
            max_chain: 8,
            ..small_cfg()
        };
        let mut store = DeltaStore::open_with(&dir, cfg).unwrap();
        let a1 = image(1, 2, 0xA0, 900);
        let b = image(2, 2, 0xB1, 900);
        let mut a2 = image(3, 2, 0xA0, 900);
        // Fully distinct content in the middle epoch: change "static" too.
        let b = {
            let mut img = b;
            for r in img.ranks.iter_mut() {
                let flipped: Vec<u8> = r.section("static").unwrap().iter().map(|x| !x).collect();
                r.put_section("static", flipped);
            }
            img
        };
        a2.ranks.iter_mut().for_each(|r| r.epoch = 3);
        store.commit(&a1).unwrap();
        store.commit(&b).unwrap();
        assert_eq!(store.epochs(), &[2], "epoch 1 GC'd");
        let s3 = store.commit(&a2).unwrap();
        assert!(s3.blocks_new > 0, "recurring content must be rewritten");
        assert_eq!(store.load_epoch(3).unwrap(), a2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_block_detected_by_crc() {
        let dir = tmp_dir("crc");
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        store.commit(&image(1, 2, 0x44, 800)).unwrap();
        let blocks = dir.join("epoch_000001").join("blocks.bin");
        let mut buf = std::fs::read(&blocks).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x01;
        std::fs::write(&blocks, &buf).unwrap();
        match store.load_epoch(1) {
            Err(StoreError::BlockCorrupt {
                epoch: 1,
                src_epoch: 1,
                ..
            }) => {}
            other => panic!("expected BlockCorrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_detected_by_checksum() {
        let dir = tmp_dir("man");
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        store.commit(&image(1, 2, 0x55, 300)).unwrap();
        let path = dir.join("epoch_000001").join("manifest.bin");
        let mut buf = std::fs::read(&path).unwrap();
        buf[10] ^= 0xFF;
        std::fs::write(&path, &buf).unwrap();
        assert!(matches!(
            store.load_epoch(1),
            Err(StoreError::Manifest { epoch: 1, .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_continues_the_delta_chain() {
        let dir = tmp_dir("reopen");
        {
            let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
            store.commit(&image(1, 2, 0x66, 1500)).unwrap();
            store.commit(&image(2, 2, 0x67, 1500)).unwrap();
        }
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        assert_eq!(store.epochs(), &[1, 2]);
        let s3 = store.commit(&image(3, 2, 0x68, 1500)).unwrap();
        assert!(!s3.full, "reopened chain continues as deltas");
        assert!(s3.blocks_new < s3.blocks_total, "dedup vs reopened index");
        assert_eq!(store.load_epoch(3).unwrap(), image(3, 2, 0x68, 1500));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_commit_is_cleaned_on_open() {
        let dir = tmp_dir("torn");
        {
            let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
            store.commit(&image(1, 2, 0x70, 400)).unwrap();
        }
        // Simulate a crash mid-commit: a temp epoch dir that never renamed.
        let torn = dir.join("epoch_000002.tmp");
        std::fs::create_dir_all(&torn).unwrap();
        std::fs::write(torn.join("blocks.bin"), b"half").unwrap();
        let store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        assert_eq!(store.epochs(), &[1], "torn epoch invisible");
        assert!(!torn.exists(), "torn tmp dir removed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inconsistent_images_rejected_and_chain_owns_its_sequence() {
        let dir = tmp_dir("mono");
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        // Coordinator epochs restart across runs; the chain sequence keeps
        // counting regardless of what the images claim.
        let s1 = store.commit(&image(5, 2, 0x71, 100)).unwrap();
        let s2 = store.commit(&image(1, 2, 0x72, 100)).unwrap();
        assert_eq!((s1.epoch, s2.epoch), (1, 2));
        assert_eq!(store.load_epoch(2).unwrap().ranks[0].epoch, 1);
        let mut bad = image(6, 2, 0x73, 100);
        bad.ranks[1].epoch = 7;
        assert!(matches!(
            store.commit(&bad),
            Err(StoreError::InconsistentImage(_))
        ));
        let mut sparse = image(6, 2, 0x74, 100);
        sparse.ranks.swap(0, 1);
        assert!(matches!(
            store.commit(&sparse),
            Err(StoreError::InconsistentImage(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_pool_commits_in_background_and_flushes() {
        let dir = tmp_dir("writer");
        let writer = StoreWriter::spawn(&dir, small_cfg()).unwrap();
        for e in 1..=3 {
            writer.submit(image(e, 3, e as u8, 1200)).unwrap();
        }
        writer.flush().unwrap();
        let stats = writer.stats();
        assert_eq!(stats.len(), 3);
        assert!(stats[0].full && !stats[1].full && !stats[2].full);
        let (store, _) = writer.finish().unwrap();
        assert_eq!(store.load_latest().unwrap(), image(3, 3, 3, 1200));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_error_is_sticky_for_submitters() {
        let dir = tmp_dir("sticky");
        let writer = StoreWriter::spawn(&dir, small_cfg()).unwrap();
        writer.submit(image(1, 2, 0x11, 100)).unwrap();
        writer.flush().unwrap();
        // A malformed image fails in the background...
        let mut bad = image(2, 2, 0x12, 100);
        bad.ranks[1].epoch = 9;
        writer.submit(bad).unwrap();
        writer.flush().unwrap_err();
        // ...and every later submit sees the same error.
        let err = writer.submit(image(3, 2, 0x13, 100)).unwrap_err();
        assert!(matches!(err, StoreError::InconsistentImage(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cut_points_cover_and_respect_bounds() {
        for len in [0usize, 1, 31, 128, 5000] {
            let data = fill_bytes(len as u64 + 7, len);
            let cuts = DeltaStore::cut_points(&data, 64);
            let total: usize = cuts.iter().map(|(_, l)| l).sum();
            assert_eq!(total, len, "cuts must tile the section");
            let mut pos = 0;
            for &(start, l) in &cuts {
                assert_eq!(start, pos, "cuts must be contiguous");
                assert!((1..=64 * 4).contains(&l), "bounds violated: {l}");
                pos += l;
            }
        }
    }

    #[test]
    fn content_defined_chunking_survives_insertions() {
        // Insert bytes near the front of a section: with content-defined
        // boundaries the unchanged tail still dedups, which fixed-offset
        // blocks could never do.
        let tail = fill_bytes(42, 8000);
        let mut v1 = fill_bytes(7, 512);
        v1.extend_from_slice(&tail);
        let mut v2 = fill_bytes(9, 700); // different, longer prefix
        v2.extend_from_slice(&tail);
        let make = |epoch: u64, data: &[u8]| {
            let mut img = RankImage::new(0, 1, epoch);
            img.put_section("grown", data.to_vec());
            WorldImage::new("MPICH".to_string(), vec![img])
        };
        let dir = tmp_dir("cdc");
        let cfg = StoreConfig {
            block_size: 256,
            ..small_cfg()
        };
        let mut store = DeltaStore::open_with(&dir, cfg).unwrap();
        let s1 = store.commit(&make(1, &v1)).unwrap();
        let s2 = store.commit(&make(2, &v2)).unwrap();
        assert!(
            s2.bytes_written * 3 < s1.bytes_written,
            "shifted tail must dedup: delta {} vs full {}",
            s2.bytes_written,
            s1.bytes_written
        );
        assert_eq!(store.load_epoch(2).unwrap(), make(2, &v2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Like [`image`], with generation hints attached to the memory-like
    /// sections: "static" is stamped per rank and never moves, "hot" is
    /// stamped from `fill` so it moves whenever the content does.
    fn hinted_image(epoch: u64, nranks: usize, fill: u8, static_len: usize) -> WorldImage {
        let ranks = (0..nranks)
            .map(|r| {
                let mut img = RankImage::new(r, nranks, epoch);
                img.put_section_hinted("static", fill_bytes(r as u64 + 1, static_len), 1);
                img.put_section_hinted(
                    "hot",
                    fill_bytes((fill as u64) << 8 | r as u64, 600),
                    100 + fill as u64,
                );
                img
            })
            .collect();
        WorldImage::new("MPICH".to_string(), ranks)
    }

    /// Low-entropy but non-constant content: compresses well under LZ4
    /// without collapsing into one deduped block the way constant runs
    /// would.
    fn compressible_image(epoch: u64, nranks: usize, fill: u8, len: usize) -> WorldImage {
        let ranks = (0..nranks)
            .map(|r| {
                let mut img = RankImage::new(r, nranks, epoch);
                // f64-shaped: slowly varying words whose high lanes are
                // near-constant (what the shuffle filter exists for).
                let words = len / 8;
                let mut data = Vec::with_capacity(words * 8);
                for i in 0..words {
                    let v = 0x3FF0_0000_0000_0000u64
                        | ((r as u64) << 32)
                        | ((i as u64).wrapping_mul(fill as u64 + 3) & 0xFFFF);
                    data.extend_from_slice(&v.to_le_bytes());
                }
                img.put_section("lattice", data);
                img
            })
            .collect();
        WorldImage::new("MPICH".to_string(), ranks)
    }

    #[test]
    fn compression_shrinks_disk_bytes_and_roundtrips() {
        let dir = tmp_dir("comp");
        let cfg = StoreConfig {
            block_size: 512,
            ..small_cfg()
        };
        let mut store = DeltaStore::open_with(&dir, cfg).unwrap();
        let img = compressible_image(1, 2, 0x11, 16_384);
        let s = store.commit(&img).unwrap();
        assert!(
            s.bytes_written < s.new_block_raw_bytes,
            "compressed epoch ({} B) must undercut its raw payload ({} B)",
            s.bytes_written,
            s.new_block_raw_bytes
        );
        assert_eq!(store.load_epoch(1).unwrap(), img, "bit-identical reload");

        // The same content stored uncompressed is strictly larger on disk.
        let dir_raw = tmp_dir("comp_raw");
        let raw_cfg = StoreConfig {
            compression: Compression::None,
            ..cfg
        };
        let mut raw_store = DeltaStore::open_with(&dir_raw, raw_cfg).unwrap();
        let s_raw = raw_store.commit(&img).unwrap();
        assert!(s.bytes_written < s_raw.bytes_written);
        assert_eq!(s.new_block_raw_bytes, s_raw.new_block_raw_bytes);
        assert_eq!(raw_store.load_epoch(1).unwrap(), img);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir_raw).unwrap();
    }

    #[test]
    fn incompressible_blocks_stay_raw() {
        // Pseudorandom content defeats LZ4; the store must fall back to
        // raw blocks rather than grow the chain.
        let dir = tmp_dir("incomp");
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        let img = image(1, 2, 0x42, 4000);
        let s = store.commit(&img).unwrap();
        let blocks_len = std::fs::metadata(dir.join("epoch_000001").join("blocks.bin"))
            .unwrap()
            .len();
        assert_eq!(
            blocks_len, s.new_block_raw_bytes,
            "raw fallback stores exactly the raw bytes"
        );
        assert_eq!(store.load_epoch(1).unwrap(), img);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dirty_tracking_skips_hashing_clean_sections() {
        let dir = tmp_dir("dirty");
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        let img1 = hinted_image(1, 3, 0x11, 4000);
        let s1 = store.commit(&img1).unwrap();
        // The full base hashes everything, hints or not.
        assert_eq!(s1.bytes_hashed, img1.total_bytes() as u64);

        // Same static stamp, moved hot stamp: only "hot" is hashed.
        let img2 = hinted_image(2, 3, 0x22, 4000);
        let s2 = store.commit(&img2).unwrap();
        let hot_bytes: u64 = img2
            .ranks
            .iter()
            .map(|r| r.section("hot").unwrap().len() as u64)
            .sum();
        assert_eq!(
            s2.bytes_hashed, hot_bytes,
            "clean static sections must not be hashed"
        );
        assert!(s2.bytes_hashed * 2 < img2.total_bytes() as u64);
        // Skipping must not change what lands on disk or reloads.
        assert_eq!(store.load_epoch(2).unwrap(), img2);

        // The same epochs with dirty tracking off hash every byte but
        // write the identical delta (dedup finds the same unchanged
        // blocks the hints prove unchanged).
        let dir_full = tmp_dir("dirty_off");
        let cfg_full = StoreConfig {
            dirty_tracking: false,
            ..small_cfg()
        };
        let mut full_store = DeltaStore::open_with(&dir_full, cfg_full).unwrap();
        let f1 = full_store.commit(&img1).unwrap();
        let f2 = full_store.commit(&img2).unwrap();
        assert_eq!(f2.bytes_hashed, img2.total_bytes() as u64);
        assert_eq!(f1.bytes_written, s1.bytes_written);
        assert_eq!(f2.bytes_written, s2.bytes_written);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir_full).unwrap();
    }

    #[test]
    fn stale_or_missing_hints_are_rehashed_not_trusted() {
        let dir = tmp_dir("hints");
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        store.commit(&hinted_image(1, 2, 0x11, 2000)).unwrap();

        // A moved stamp on unchanged content re-hashes it (and dedup
        // still finds it unchanged). The "hot" sections keep both their
        // stamps and their content, so they are legitimately skipped.
        let mut img2 = hinted_image(2, 2, 0x11, 2000);
        for r in img2.ranks.iter_mut() {
            let data = r.section("static").unwrap().to_vec();
            r.put_section_hinted("static", data, 999);
        }
        let static_bytes = |img: &WorldImage| -> u64 {
            img.ranks
                .iter()
                .map(|r| r.section("static").unwrap().len() as u64)
                .sum()
        };
        let s2 = store.commit(&img2).unwrap();
        assert_eq!(
            s2.bytes_hashed,
            static_bytes(&img2),
            "moved stamp re-hashes, clean hot sections skip"
        );
        assert_eq!(s2.blocks_new, 0, "content unchanged, dedup still wins");

        // A matching stamp with a different *length* is not trusted.
        let mut img3 = hinted_image(3, 2, 0x11, 2000);
        for r in img3.ranks.iter_mut() {
            let mut data = r.section("static").unwrap().to_vec();
            data.extend_from_slice(b"grown");
            r.put_section_hinted("static", data, 999);
        }
        let s3 = store.commit(&img3).unwrap();
        assert_eq!(s3.bytes_hashed, static_bytes(&img3));
        assert_eq!(store.load_epoch(3).unwrap(), img3);

        // Unhinted sections (a reloaded image carries no hints) always
        // hash fully.
        let reloaded = store.load_epoch(3).unwrap();
        let s4 = store.commit(&reloaded).unwrap();
        assert_eq!(s4.bytes_hashed, reloaded.total_bytes() as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dirty_tracking_never_reuses_across_a_full_base() {
        let dir = tmp_dir("dirty_base");
        let cfg = StoreConfig {
            max_chain: 1,
            retain_epochs: 10,
            ..small_cfg()
        };
        let mut store = DeltaStore::open_with(&dir, cfg).unwrap();
        store.commit(&hinted_image(1, 2, 0x11, 1500)).unwrap(); // base
        store.commit(&hinted_image(2, 2, 0x22, 1500)).unwrap(); // delta
        let s3 = store.commit(&hinted_image(3, 2, 0x33, 1500)).unwrap(); // base again
        assert!(s3.full);
        assert_eq!(
            s3.bytes_hashed,
            hinted_image(3, 2, 0x33, 1500).total_bytes() as u64,
            "a full base re-hashes everything: it may reference nothing older"
        );
        for e in 1..=3 {
            assert_eq!(
                store.load_epoch(e).unwrap(),
                hinted_image(e, 2, (e as u8) * 0x11, 1500)
            );
        }
        // A full base is self-contained: it references nothing older, so
        // it must still load after every earlier epoch is gone.
        for e in 1..=2 {
            std::fs::remove_dir_all(dir.join(format!("epoch_{e:06}"))).unwrap();
        }
        assert_eq!(store.load_epoch(3).unwrap(), hinted_image(3, 2, 0x33, 1500));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_chain_writes_and_new_reader_decodes_it() {
        let dir = tmp_dir("v1");
        let v1_cfg = StoreConfig {
            format: ManifestFormat::V1,
            ..small_cfg()
        };
        {
            let mut store = DeltaStore::open_with(&dir, v1_cfg).unwrap();
            // The compat knob forces legacy behavior.
            assert_eq!(store.config().compression, Compression::None);
            assert!(!store.config().dirty_tracking);
            store.commit(&hinted_image(1, 2, 0x11, 2000)).unwrap();
            let s2 = store.commit(&hinted_image(2, 2, 0x22, 2000)).unwrap();
            assert_eq!(
                s2.bytes_hashed,
                hinted_image(2, 2, 0x22, 2000).total_bytes() as u64
            );
        }
        // A current-config store opens the v1 chain, reads it, and
        // extends it with v2 epochs in one mixed chain.
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        assert_eq!(store.epochs(), &[1, 2]);
        assert_eq!(store.load_epoch(1).unwrap(), hinted_image(1, 2, 0x11, 2000));
        assert_eq!(store.load_epoch(2).unwrap(), hinted_image(2, 2, 0x22, 2000));
        let disk = store.epoch_stats_on_disk().unwrap();
        assert_eq!(
            disk[1].bytes_hashed, disk[1].image_bytes,
            "v1 manifests report the full-hash cost"
        );
        let s3 = store.commit(&hinted_image(3, 2, 0x33, 2000)).unwrap();
        assert!(!s3.full, "the mixed chain continues as deltas");
        assert_eq!(store.load_epoch(3).unwrap(), hinted_image(3, 2, 0x33, 2000));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_head_is_quarantined_and_chain_falls_back() {
        let dir = tmp_dir("quar");
        let cfg = StoreConfig {
            retain_epochs: 10,
            ..small_cfg()
        };
        {
            let mut store = DeltaStore::open_with(&dir, cfg).unwrap();
            for e in 1..=3 {
                store.commit(&image(e, 2, e as u8, 1000)).unwrap();
            }
        }
        // Rot the head's manifest.
        let head_manifest = dir.join("epoch_000003").join("manifest.bin");
        let mut buf = std::fs::read(&head_manifest).unwrap();
        buf[20] ^= 0xFF;
        std::fs::write(&head_manifest, &buf).unwrap();

        let mut store = DeltaStore::open_with(&dir, cfg).unwrap();
        assert_eq!(store.quarantined(), &[3]);
        assert_eq!(store.epochs(), &[1, 2], "chain fell back to epoch 2");
        assert!(dir.join("epoch_000003.bad").is_dir(), "head kept aside");
        assert!(!dir.join("epoch_000003").exists());
        assert_eq!(store.load_latest().unwrap(), image(2, 2, 2, 1000));
        // The chain continues — and reuses the quarantined head's number.
        let s = store.commit(&image(3, 2, 9, 1000)).unwrap();
        assert_eq!(s.epoch, 3);
        assert_eq!(store.load_latest().unwrap(), image(3, 2, 9, 1000));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_writer_over_v2_head_never_references_compressed_blocks() {
        // Regression: opening a compressed (v2) chain with the V1 compat
        // format rebuilds the dedup index from the v2 head. Without
        // filtering, a v1 delta could reference an Lz4 block — a codec a
        // v1 manifest cannot express, which a reader would hand back as
        // raw section content (silent corruption). The v1 commit must
        // rewrite such content instead.
        let dir = tmp_dir("v1_over_v2");
        let img1 = compressible_image(1, 2, 0x11, 8192);
        let img2 = compressible_image(2, 2, 0x11, 8192);
        {
            let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
            let s1 = store.commit(&img1).unwrap();
            assert!(
                s1.bytes_written < s1.new_block_raw_bytes,
                "precondition: the v2 head holds compressed blocks"
            );
        }
        let v1_cfg = StoreConfig {
            format: ManifestFormat::V1,
            ..small_cfg()
        };
        let mut store = DeltaStore::open_with(&dir, v1_cfg).unwrap();
        let s2 = store.commit(&img2).unwrap();
        assert!(
            s2.blocks_new > 0,
            "identical content must be rewritten raw, not deduped into Lz4 refs"
        );
        assert_eq!(store.load_epoch(2).unwrap(), img2, "bit-identical reload");
        // And the mixed chain still reads under the current config.
        let store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        assert_eq!(store.load_epoch(1).unwrap(), img1);
        assert_eq!(store.load_epoch(2).unwrap(), img2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_file_quarantines_but_io_failure_propagates() {
        let dir = tmp_dir("quar_io");
        {
            let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
            store.commit(&image(1, 2, 1, 500)).unwrap();
            store.commit(&image(2, 2, 2, 500)).unwrap();
        }
        // manifest.bin present but unreadable (it is a directory →
        // EISDIR): a transient-I/O-shaped failure must propagate, not
        // rename the newest committed epoch aside.
        let head_manifest = dir.join("epoch_000002").join("manifest.bin");
        std::fs::remove_file(&head_manifest).unwrap();
        std::fs::create_dir(&head_manifest).unwrap();
        match DeltaStore::open_with(&dir, small_cfg()) {
            Err(StoreError::Io { .. }) => {}
            other => panic!("expected an I/O error, got {:?}", other.map(|_| "store")),
        }
        assert!(
            dir.join("epoch_000002").is_dir(),
            "healthy-looking epoch must not be quarantined on I/O failure"
        );

        // manifest.bin *gone* from an existing epoch dir is structural
        // (a torn pre-atomic write): quarantine and fall back.
        std::fs::remove_dir(&head_manifest).unwrap();
        let store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        assert_eq!(store.quarantined(), &[2]);
        assert_eq!(store.load_latest().unwrap(), image(1, 2, 1, 500));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fully_rotted_store_quarantines_every_epoch_and_reports_empty() {
        let dir = tmp_dir("quar_all");
        {
            let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
            store.commit(&image(1, 2, 1, 500)).unwrap();
            store.commit(&image(2, 2, 2, 500)).unwrap();
        }
        for e in 1..=2 {
            std::fs::write(
                dir.join(format!("epoch_{e:06}")).join("manifest.bin"),
                b"garbage",
            )
            .unwrap();
        }
        let store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        assert_eq!(store.quarantined(), &[2, 1], "newest first");
        assert!(store.epochs().is_empty());
        assert!(matches!(store.load_latest(), Err(StoreError::Empty)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn huge_counts_with_valid_checksum_reject_without_allocating() {
        // The FNV trailer is not collision-proof: a systematically
        // corrupted (or hostile) manifest can carry a valid checksum and
        // absurd counts. Every count must be clamped against the bytes
        // that actually remain — the old `1 << 32` bound let a ~160 GiB
        // Vec::with_capacity abort the process.
        let huge_at = |field: usize| {
            let mut w = Writer::new();
            w.u64(MANIFEST_MAGIC);
            w.u64(MANIFEST_V2);
            w.u64(1); // epoch
            w.u8(1); // full
            w.string("MPICH");
            w.u64(0); // bytes_hashed
            let counts = [1u64, 1, 1]; // nranks, nsections, nblocks
            w.u64(if field == 0 { u64::MAX / 64 } else { counts[0] });
            w.u64(0); // rank
            w.u64(1); // world
            w.u64(1); // rank epoch
            w.u64(if field == 1 { 1 << 40 } else { counts[1] });
            w.string("memory");
            w.u64(if field == 2 { 1 << 31 } else { counts[2] });
            w.finish()
        };
        for field in 0..3 {
            match Manifest::decode(&huge_at(field)) {
                Err(CodecError::LengthOutOfBounds(_)) => {}
                Err(other) => panic!("field {field}: expected LengthOutOfBounds, got {other:?}"),
                Ok(_) => panic!("field {field}: hostile manifest decoded"),
            }
        }
    }

    #[test]
    fn manifest_truncated_at_every_offset_errors_never_panics() {
        let dir = tmp_dir("trunc");
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        store.commit(&hinted_image(1, 2, 0x11, 600)).unwrap();
        let buf = std::fs::read(dir.join("epoch_000001").join("manifest.bin")).unwrap();
        Manifest::decode(&buf).expect("intact manifest decodes");
        for cut in 0..buf.len() {
            assert!(
                Manifest::decode(&buf[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_commit_cleanup_continues_chain_with_correct_length() {
        // A crash mid-commit leaves `epoch_NNNNNN.tmp`; reopening must
        // clean it, keep the committed chain, and continue the delta
        // chain with the right length (the next commit is a delta, and
        // the base rollover still happens at the configured depth).
        let dir = tmp_dir("torn_chain");
        let cfg = StoreConfig {
            max_chain: 3,
            retain_epochs: 10,
            ..small_cfg()
        };
        {
            let mut store = DeltaStore::open_with(&dir, cfg).unwrap();
            store.commit(&image(1, 2, 1, 800)).unwrap(); // base, chain_len 0
            store.commit(&image(2, 2, 2, 800)).unwrap(); // delta, chain_len 1
        }
        let torn = dir.join("epoch_000003.tmp");
        std::fs::create_dir_all(&torn).unwrap();
        std::fs::write(torn.join("blocks.bin"), b"half a block").unwrap();

        let mut store = DeltaStore::open_with(&dir, cfg).unwrap();
        assert!(!torn.exists(), "torn tmp dir removed");
        assert_eq!(store.epochs(), &[1, 2]);
        let s3 = store.commit(&image(3, 2, 3, 800)).unwrap(); // chain_len 2
        let s4 = store.commit(&image(4, 2, 4, 800)).unwrap(); // chain_len 3
        let s5 = store.commit(&image(5, 2, 5, 800)).unwrap(); // rollover
        assert!(!s3.full && !s4.full, "reopened chain continues as deltas");
        assert!(s5.full, "base rollover at max_chain across the reopen");
        for e in 1..=5 {
            assert_eq!(store.load_epoch(e).unwrap(), image(e, 2, e as u8, 800));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_stats_on_disk_match_live_stats() {
        let dir = tmp_dir("stats");
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        for e in 1..=3 {
            store.commit(&hinted_image(e, 2, e as u8, 900)).unwrap();
        }
        let disk = store.epoch_stats_on_disk().unwrap();
        assert_eq!(disk.len(), store.stats().len());
        for (d, l) in disk.iter().zip(store.stats()) {
            assert_eq!(d.epoch, l.epoch);
            assert_eq!(d.full, l.full);
            assert_eq!(d.blocks_total, l.blocks_total);
            assert_eq!(d.blocks_new, l.blocks_new);
            assert_eq!(d.image_bytes, l.image_bytes);
            assert_eq!(d.bytes_written, l.bytes_written);
            assert_eq!(
                d.bytes_hashed, l.bytes_hashed,
                "manifest records the hash cost"
            );
            assert_eq!(d.new_block_raw_bytes, l.new_block_raw_bytes);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // -----------------------------------------------------------------
    // Corruption fuzz: decode must *return* errors, never panic or
    // allocate absurdly, on any mangled input.
    // -----------------------------------------------------------------

    /// A representative in-memory manifest (both formats), encoded
    /// without touching disk.
    fn sample_manifest_buf(format: ManifestFormat) -> Vec<u8> {
        let block = |e: u64, off: u64, codec: BlockCodec| {
            (
                (0x1111 + off, 0x2222 + off),
                BlockLoc {
                    epoch: e,
                    offset: off,
                    len: 96,
                    raw_len: if codec == BlockCodec::Raw { 96 } else { 128 },
                    crc: 0xDEAD_BEEF,
                    codec,
                },
            )
        };
        let codec = |i: u64| match (format, i % 3) {
            (ManifestFormat::V1, _) => BlockCodec::Raw,
            (_, 0) => BlockCodec::Raw,
            (_, 1) => BlockCodec::Lz4,
            _ => BlockCodec::ShuffleLz4,
        };
        let manifest = Manifest {
            epoch: 9,
            full: false,
            vendor_hint: "Open MPI".to_string(),
            bytes_hashed: 4096,
            ranks: (0..3usize)
                .map(|r| {
                    (
                        r,
                        3,
                        9u64,
                        vec![
                            (
                                "memory/u".to_string(),
                                (0..4).map(|i| block(9 - i % 2, i * 96, codec(i))).collect(),
                            ),
                            (
                                "meta".to_string(),
                                vec![block(9, 1000 + r as u64, BlockCodec::Raw)],
                            ),
                        ],
                    )
                })
                .collect(),
        };
        manifest.encode(format)
    }

    proptest::proptest! {
        #[test]
        fn flipped_manifest_bytes_always_error(
            pos in 0usize..10_000,
            xor in 1u8..=255,
            v1 in proptest::prelude::any::<bool>(),
        ) {
            let format = if v1 { ManifestFormat::V1 } else { ManifestFormat::V2 };
            let mut buf = sample_manifest_buf(format);
            let pos = pos % buf.len();
            buf[pos] ^= xor;
            // Any single-byte flip breaks the FNV trailer (or the
            // trailer itself): decode must report it, never panic.
            proptest::prop_assert!(Manifest::decode(&buf).is_err());
        }

        #[test]
        fn truncated_or_padded_manifests_never_panic(
            cut in 0usize..10_000,
            tail in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..64),
            v1 in proptest::prelude::any::<bool>(),
        ) {
            let format = if v1 { ManifestFormat::V1 } else { ManifestFormat::V2 };
            let mut buf = sample_manifest_buf(format);
            buf.truncate(cut % (buf.len() + 1));
            buf.extend_from_slice(&tail);
            // Outcome may be Ok only for the untouched buffer; all that
            // is *required* is no panic and no absurd allocation.
            let _ = Manifest::decode(&buf);
        }

        #[test]
        fn random_garbage_manifests_never_panic(
            data in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..512),
        ) {
            // An accidental FNV-trailer match on random bytes is a
            // ~2^-64 event: random garbage must always be rejected.
            proptest::prop_assert!(Manifest::decode(&data).is_err());
        }
    }
}
