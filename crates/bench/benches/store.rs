//! Criterion: the delta-checkpoint store — full-base vs delta bytes
//! written, commit/load throughput, and the sync vs async checkpoint
//! latency the store buys on the wave/CoMD workloads.
//!
//! As a side effect (in both `cargo bench` and `--test` smoke mode) this
//! bench emits `BENCH_ckpt.json` in the working directory so CI records
//! the perf trajectory: per-workload full vs delta bytes, and the
//! virtual-time makespan with synchronous image writes vs the async store.

use criterion::{criterion_group, criterion_main, Criterion};
use dmtcp_sim::store::{DeltaStore, StoreConfig};
use dmtcp_sim::WorldImage;
use mpi_apps::{CoMdMini, WaveMpi};
use simnet::ClusterSpec;
use stool::{Checkpointer, MpiProgram, Session, StoreError, Vendor};

fn bench_cluster() -> ClusterSpec {
    ClusterSpec::builder().nodes(2).ranks_per_node(3).build()
}

fn store_cfg() -> StoreConfig {
    StoreConfig {
        block_size: 1024,
        retain_epochs: 32,
        max_chain: 16,
        ..StoreConfig::default()
    }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stool_bench_store_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct WorkloadRow {
    name: &'static str,
    epochs: usize,
    full_bytes: u64,
    delta_bytes_avg: u64,
    image_bytes: u64,
    sync_makespan_s: f64,
    async_makespan_s: f64,
}

/// Run one workload with periodic checkpoints, sync (no store) and async
/// (delta store), and measure what each epoch wrote.
fn measure_workload(
    name: &'static str,
    program: &dyn MpiProgram,
    every: u64,
) -> Result<WorkloadRow, StoreError> {
    let run = |store_dir: Option<&std::path::Path>| {
        let mut builder = Session::builder()
            .cluster(bench_cluster())
            .vendor(Vendor::Mpich)
            .checkpointer(Checkpointer::mana())
            .checkpoint_every(every);
        if let Some(dir) = store_dir {
            builder = builder.checkpoint_store_with(dir, store_cfg());
        }
        let session = builder.build().expect("session");
        session.launch(program).expect("launch")
    };

    let sync_out = run(None);
    let dir = tmp_dir(name);
    let async_out = run(Some(&dir));

    let store = DeltaStore::open_with(&dir, store_cfg())?;
    let stats = store.epoch_stats_on_disk()?;
    let full: Vec<_> = stats.iter().filter(|s| s.full).collect();
    let deltas: Vec<_> = stats.iter().filter(|s| !s.full).collect();
    let delta_bytes_avg = if deltas.is_empty() {
        0
    } else {
        deltas.iter().map(|s| s.bytes_written).sum::<u64>() / deltas.len() as u64
    };
    let row = WorkloadRow {
        name,
        epochs: stats.len(),
        full_bytes: full.first().map(|s| s.bytes_written).unwrap_or(0),
        delta_bytes_avg,
        image_bytes: stats.last().map(|s| s.image_bytes).unwrap_or(0),
        sync_makespan_s: sync_out.makespan().as_secs_f64(),
        async_makespan_s: async_out.makespan().as_secs_f64(),
    };
    std::fs::remove_dir_all(&dir).ok();
    Ok(row)
}

fn emit_json(rows: &[WorkloadRow]) {
    let mut json = String::from("{\n  \"bench\": \"ckpt_store\",\n  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"epochs\": {}, \"full_base_bytes\": {}, \
             \"delta_bytes_avg\": {}, \"image_bytes\": {}, \
             \"sync_makespan_s\": {:.9}, \"async_makespan_s\": {:.9}}}{}\n",
            r.name,
            r.epochs,
            r.full_bytes,
            r.delta_bytes_avg,
            r.image_bytes,
            r.sync_makespan_s,
            r.async_makespan_s,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    // Land at the workspace root regardless of the bench CWD, so CI picks
    // one stable path up.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_ckpt.json");
    std::fs::write(path, json).expect("write BENCH_ckpt.json");
}

/// Produce a realistic multi-epoch image sequence from a wave run (used by
/// the commit/load throughput benches).
fn wave_image(step: u64) -> WorldImage {
    let program = WaveMpi {
        npoints: 20_000,
        nsteps: 40,
        gather_final: false,
        ..WaveMpi::default()
    };
    Session::builder()
        .cluster(bench_cluster())
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .checkpoint_at_step(step, dmtcp_sim::CkptMode::Stop)
        .build()
        .unwrap()
        .launch(&program)
        .unwrap()
        .into_image()
        .unwrap()
}

fn store_benches(c: &mut Criterion) {
    // The measured rows (also what BENCH_ckpt.json records).
    let wave = WaveMpi {
        npoints: 20_000,
        nsteps: 40,
        gather_final: false,
        ..WaveMpi::default()
    };
    let comd = CoMdMini {
        nsteps: 24,
        ..CoMdMini::default()
    };
    let rows = vec![
        measure_workload("wave_mpi", &wave, 8).expect("wave row"),
        measure_workload("CoMD", &comd, 6).expect("comd row"),
    ];
    for r in &rows {
        println!(
            "store/{}: {} epochs, full base {} B, avg delta {} B ({:.2}x less), \
             image {} B, makespan sync {:.6} s vs async {:.6} s",
            r.name,
            r.epochs,
            r.full_bytes,
            r.delta_bytes_avg,
            r.full_bytes as f64 / r.delta_bytes_avg.max(1) as f64,
            r.image_bytes,
            r.sync_makespan_s,
            r.async_makespan_s,
        );
    }
    emit_json(&rows);

    // Wall-clock throughput of the store primitives on real images.
    let img1 = wave_image(10);
    let img2 = wave_image(20);
    let mut group = c.benchmark_group("ckpt_store");
    group.sample_size(10);
    group.bench_function("commit_full", |b| {
        b.iter(|| {
            let dir = tmp_dir("commit_full");
            let mut store = DeltaStore::open_with(&dir, store_cfg()).unwrap();
            let s = store.commit(&img1).unwrap();
            std::fs::remove_dir_all(&dir).ok();
            s.bytes_written
        });
    });
    group.bench_function("commit_delta", |b| {
        b.iter(|| {
            let dir = tmp_dir("commit_delta");
            let mut store = DeltaStore::open_with(&dir, store_cfg()).unwrap();
            store.commit(&img1).unwrap();
            let s = store.commit(&img2).unwrap();
            std::fs::remove_dir_all(&dir).ok();
            s.bytes_written
        });
    });
    {
        let dir = tmp_dir("load");
        let mut store = DeltaStore::open_with(&dir, store_cfg()).unwrap();
        store.commit(&img1).unwrap();
        store.commit(&img2).unwrap();
        group.bench_function("load_latest_from_chain", |b| {
            b.iter(|| store.load_latest().unwrap().total_bytes());
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group!(benches, store_benches);
criterion_main!(benches);
