//! Typed convenience layer over the standard ABI.
//!
//! The ABI moves raw little-endian bytes (as a C ABI does); applications
//! prefer typed slices. [`Pmpi`] is a thin, zero-magic adapter — every
//! method lowers to exactly one ABI call, so interposition layers see the
//! same call stream the raw interface would produce.

use bytes::Bytes;
use mpi_abi::{AbiResult, AbiStatus, Datatype, Handle, MpiAbi, ReduceOp};

/// Convert a f64 slice to wire bytes.
pub fn f64s_to_bytes(xs: &[f64]) -> Vec<u8> {
    xs.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Convert wire bytes to f64s (panics on length mismatch — caller sizes
/// buffers from element counts).
pub fn bytes_to_f64s(b: &[u8], out: &mut [f64]) {
    assert_eq!(b.len(), out.len() * 8, "byte/element length mismatch");
    for (chunk, slot) in b.chunks_exact(8).zip(out.iter_mut()) {
        *slot = f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    }
}

/// Convert a u64 slice to wire bytes.
pub fn u64s_to_bytes(xs: &[u64]) -> Vec<u8> {
    xs.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Typed MPI operations over any ABI implementation.
pub struct Pmpi<'a> {
    mpi: &'a mut dyn MpiAbi,
}

impl<'a> Pmpi<'a> {
    /// Wrap an ABI handle.
    pub fn new(mpi: &'a mut dyn MpiAbi) -> Pmpi<'a> {
        Pmpi { mpi }
    }

    /// The raw ABI (escape hatch).
    pub fn raw(&mut self) -> &mut dyn MpiAbi {
        self.mpi
    }

    /// World size of a communicator.
    pub fn size(&mut self, comm: Handle) -> AbiResult<usize> {
        Ok(self.mpi.comm_size(comm)? as usize)
    }

    /// Rank within a communicator.
    pub fn rank(&mut self, comm: Handle) -> AbiResult<usize> {
        Ok(self.mpi.comm_rank(comm)? as usize)
    }

    /// Virtual wall clock in seconds.
    pub fn wtime(&mut self) -> f64 {
        self.mpi.wtime()
    }

    /// Blocking typed send.
    pub fn send_f64s(&mut self, data: &[f64], dest: i32, tag: i32, comm: Handle) -> AbiResult<()> {
        self.mpi.send(
            &f64s_to_bytes(data),
            Datatype::Double.handle(),
            dest,
            tag,
            comm,
        )
    }

    /// Blocking typed receive (exact length).
    pub fn recv_f64s(
        &mut self,
        out: &mut [f64],
        src: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<AbiStatus> {
        let mut buf = vec![0u8; out.len() * 8];
        let st = self
            .mpi
            .recv(&mut buf, Datatype::Double.handle(), src, tag, comm)?;
        bytes_to_f64s(
            &buf[..st.count_bytes as usize],
            &mut out[..st.count_bytes as usize / 8],
        );
        Ok(st)
    }

    /// Combined typed exchange.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv_f64s(
        &mut self,
        send: &[f64],
        dest: i32,
        sendtag: i32,
        recv: &mut [f64],
        src: i32,
        recvtag: i32,
        comm: Handle,
    ) -> AbiResult<AbiStatus> {
        let mut buf = vec![0u8; recv.len() * 8];
        let st = self.mpi.sendrecv(
            &f64s_to_bytes(send),
            dest,
            sendtag,
            &mut buf,
            src,
            recvtag,
            Datatype::Double.handle(),
            comm,
        )?;
        bytes_to_f64s(
            &buf[..st.count_bytes as usize],
            &mut recv[..st.count_bytes as usize / 8],
        );
        Ok(st)
    }

    /// Nonblocking typed send.
    pub fn isend_f64s(
        &mut self,
        data: &[f64],
        dest: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<Handle> {
        self.mpi.isend(
            &f64s_to_bytes(data),
            Datatype::Double.handle(),
            dest,
            tag,
            comm,
        )
    }

    /// Nonblocking typed receive of up to `max_elems` doubles.
    pub fn irecv_f64s(
        &mut self,
        max_elems: usize,
        src: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<Handle> {
        self.mpi
            .irecv(max_elems * 8, Datatype::Double.handle(), src, tag, comm)
    }

    /// Wait and decode a typed receive payload (empty for sends).
    pub fn wait_f64s(&mut self, req: Handle) -> AbiResult<(AbiStatus, Vec<f64>)> {
        let (st, payload) = self.mpi.wait(req)?;
        let payload = payload.unwrap_or_else(Bytes::new);
        let mut out = vec![0.0; payload.len() / 8];
        bytes_to_f64s(&payload, &mut out);
        Ok((st, out))
    }

    /// Barrier.
    pub fn barrier(&mut self, comm: Handle) -> AbiResult<()> {
        self.mpi.barrier(comm)
    }

    /// Typed broadcast (in place).
    pub fn bcast_f64s(&mut self, data: &mut [f64], root: i32, comm: Handle) -> AbiResult<()> {
        let mut buf = f64s_to_bytes(data);
        self.mpi
            .bcast(&mut buf, Datatype::Double.handle(), root, comm)?;
        bytes_to_f64s(&buf, data);
        Ok(())
    }

    /// Typed allreduce.
    pub fn allreduce_f64s(
        &mut self,
        send: &[f64],
        recv: &mut [f64],
        op: ReduceOp,
        comm: Handle,
    ) -> AbiResult<()> {
        let mut buf = vec![0u8; recv.len() * 8];
        self.mpi.allreduce(
            &f64s_to_bytes(send),
            &mut buf,
            Datatype::Double.handle(),
            op.handle(),
            comm,
        )?;
        bytes_to_f64s(&buf, recv);
        Ok(())
    }

    /// Scalar allreduce convenience.
    pub fn allreduce_f64(&mut self, x: f64, op: ReduceOp, comm: Handle) -> AbiResult<f64> {
        let mut out = [0.0];
        self.allreduce_f64s(&[x], &mut out, op, comm)?;
        Ok(out[0])
    }

    /// Typed reduce to `root` (recv significant there).
    pub fn reduce_f64s(
        &mut self,
        send: &[f64],
        recv: &mut [f64],
        op: ReduceOp,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        let mut buf = vec![0u8; recv.len() * 8];
        self.mpi.reduce(
            &f64s_to_bytes(send),
            &mut buf,
            Datatype::Double.handle(),
            op.handle(),
            root,
            comm,
        )?;
        bytes_to_f64s(&buf, recv);
        Ok(())
    }

    /// Typed gather of equal contributions to `root` (recv sized
    /// `nranks × send.len()` there, empty elsewhere).
    pub fn gather_f64s(
        &mut self,
        send: &[f64],
        recv: &mut [f64],
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        let mut buf = vec![0u8; recv.len() * 8];
        self.mpi.gather(
            &f64s_to_bytes(send),
            &mut buf,
            Datatype::Double.handle(),
            root,
            comm,
        )?;
        bytes_to_f64s(&buf, recv);
        Ok(())
    }

    /// Typed allgather.
    pub fn allgather_f64s(
        &mut self,
        send: &[f64],
        recv: &mut [f64],
        comm: Handle,
    ) -> AbiResult<()> {
        let mut buf = vec![0u8; recv.len() * 8];
        self.mpi.allgather(
            &f64s_to_bytes(send),
            &mut buf,
            Datatype::Double.handle(),
            comm,
        )?;
        bytes_to_f64s(&buf, recv);
        Ok(())
    }

    /// Raw-byte alltoall (what the OSU kernels use).
    pub fn alltoall_bytes(&mut self, send: &[u8], recv: &mut [u8], comm: Handle) -> AbiResult<()> {
        self.mpi.alltoall(send, recv, Datatype::Byte.handle(), comm)
    }

    /// Raw-byte broadcast.
    pub fn bcast_bytes(&mut self, buf: &mut [u8], root: i32, comm: Handle) -> AbiResult<()> {
        self.mpi.bcast(buf, Datatype::Byte.handle(), root, comm)
    }

    /// Raw-byte allreduce with a numeric type view (f64 elements).
    pub fn allreduce_bytes_f64(
        &mut self,
        send: &[u8],
        recv: &mut [u8],
        op: ReduceOp,
        comm: Handle,
    ) -> AbiResult<()> {
        self.mpi
            .allreduce(send, recv, Datatype::Double.handle(), op.handle(), comm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{Stack, StackSpec};
    use muk::Vendor;
    use simnet::{ClusterSpec, World};

    #[test]
    fn conversions_round_trip() {
        let xs = [1.5, -2.25, 1e300, f64::MIN_POSITIVE];
        let b = f64s_to_bytes(&xs);
        let mut back = [0.0; 4];
        bytes_to_f64s(&b, &mut back);
        assert_eq!(xs, back);
        assert_eq!(u64s_to_bytes(&[1, 2]).len(), 16);
    }

    #[test]
    fn typed_ops_over_both_vendors() {
        let cluster = ClusterSpec::builder().nodes(1).ranks_per_node(3).build();
        for vendor in [Vendor::Mpich, Vendor::OpenMpi] {
            let out = World::run(&cluster, |ctx| {
                let ss = StackSpec::native(vendor);
                let mut stack = Stack::build(&ss, &ctx);
                let p = Pmpi::new(stack.mpi());
                let run = || -> AbiResult<(f64, Vec<f64>)> {
                    let mut p = p;
                    let me = p.rank(Handle::COMM_WORLD)? as f64;
                    let sum = p.allreduce_f64(me + 1.0, ReduceOp::Sum, Handle::COMM_WORLD)?;
                    let mut all = vec![0.0; 3];
                    p.allgather_f64s(&[me * 2.0], &mut all, Handle::COMM_WORLD)?;
                    Ok((sum, all))
                };
                run().map_err(|e| simnet::SimError::InvalidConfig(e.to_string()))
            })
            .unwrap();
            for (sum, all) in out.results {
                assert_eq!(sum, 6.0);
                assert_eq!(all, vec![0.0, 2.0, 4.0]);
            }
        }
    }
}
