//! Generating strings that match a regex-like pattern literal.
//!
//! Supports the subset proptest users actually write in strategies:
//! literal characters, `\`-escapes, character classes `[a-z0-9_.]`
//! (including ranges and literal members), groups `(...)`, alternation
//! `a|b`, and the quantifiers `?`, `*`, `+`, `{n}`, `{m,n}`.
//! Unbounded quantifiers cap at 8 repetitions.

use crate::test_runner::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    /// Sequence of alternatives: generate one branch uniformly.
    Alt(Vec<Vec<Node>>),
    Literal(char),
    /// Flattened class members.
    Class(Vec<char>),
    /// `.`: any printable ASCII.
    Dot,
    Repeat(Box<Node>, u32, u32),
    Group(Vec<Node>),
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn fail(&self, what: &str) -> ! {
        panic!("unsupported pattern {:?}: {what}", self.pattern);
    }

    /// Parse a full alternation (the top level and group bodies).
    fn parse_alt(&mut self) -> Node {
        let mut branches = vec![Vec::new()];
        loop {
            match self.chars.peek() {
                None | Some(')') => break,
                Some('|') => {
                    self.chars.next();
                    branches.push(Vec::new());
                }
                Some(_) => {
                    let atom = self.parse_atom();
                    let atom = self.parse_quantifier(atom);
                    branches.last_mut().expect("nonempty").push(atom);
                }
            }
        }
        if branches.len() == 1 {
            Node::Group(branches.pop().expect("nonempty"))
        } else {
            Node::Alt(branches)
        }
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next() {
            Some('(') => {
                let inner = self.parse_alt();
                match self.chars.next() {
                    Some(')') => inner,
                    _ => self.fail("unclosed group"),
                }
            }
            Some('[') => self.parse_class(),
            Some('\\') => match self.chars.next() {
                Some(
                    c @ ('.' | '\\' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '?' | '*' | '+'
                    | '-' | '^' | '$'),
                ) => Node::Literal(c),
                Some('d') => Node::Class(('0'..='9').collect()),
                Some('w') => Node::Class(
                    ('a'..='z')
                        .chain('A'..='Z')
                        .chain('0'..='9')
                        .chain(['_'])
                        .collect(),
                ),
                Some('s') => Node::Class(vec![' ', '\t']),
                _ => self.fail("unsupported escape"),
            },
            Some('.') => Node::Dot,
            Some(c @ ('?' | '*' | '+' | '{' | '}' | ']')) => {
                self.fail(&format!("dangling metacharacter {c:?}"))
            }
            Some(c) => Node::Literal(c),
            None => self.fail("unexpected end"),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut members = Vec::new();
        if self.chars.peek() == Some(&'^') {
            self.fail("negated classes");
        }
        loop {
            match self.chars.next() {
                Some(']') => break,
                Some('\\') => match self.chars.next() {
                    Some(c) => members.push(c),
                    None => self.fail("unterminated class escape"),
                },
                Some(lo) => {
                    if self.chars.peek() == Some(&'-') {
                        self.chars.next();
                        match self.chars.peek() {
                            Some(']') | None => {
                                members.push(lo);
                                members.push('-');
                            }
                            Some(&hi) => {
                                self.chars.next();
                                if lo > hi {
                                    self.fail("inverted class range");
                                }
                                members.extend(lo..=hi);
                            }
                        }
                    } else {
                        members.push(lo);
                    }
                }
                None => self.fail("unterminated class"),
            }
        }
        if members.is_empty() {
            self.fail("empty class");
        }
        Node::Class(members)
    }

    fn parse_quantifier(&mut self, atom: Node) -> Node {
        match self.chars.peek() {
            Some('?') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('*') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP)
            }
            Some('+') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP)
            }
            Some('{') => {
                self.chars.next();
                let mut bounds = String::new();
                loop {
                    match self.chars.next() {
                        Some('}') => break,
                        Some(c) => bounds.push(c),
                        None => self.fail("unterminated quantifier"),
                    }
                }
                let (lo, hi) = match bounds.split_once(',') {
                    None => {
                        let n: u32 = bounds
                            .trim()
                            .parse()
                            .unwrap_or_else(|_| self.fail("bad {n}"));
                        (n, n)
                    }
                    Some((lo, hi)) => {
                        let lo: u32 = lo.trim().parse().unwrap_or_else(|_| self.fail("bad {m,n}"));
                        let hi: u32 = if hi.trim().is_empty() {
                            lo + UNBOUNDED_CAP
                        } else {
                            hi.trim().parse().unwrap_or_else(|_| self.fail("bad {m,n}"))
                        };
                        (lo, hi)
                    }
                };
                if lo > hi {
                    self.fail("inverted quantifier bounds");
                }
                Node::Repeat(Box::new(atom), lo, hi)
            }
            _ => atom,
        }
    }
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Alt(branches) => {
            let pick = rng.below(branches.len() as u64) as usize;
            for n in &branches[pick] {
                emit(n, rng, out);
            }
        }
        Node::Group(nodes) => {
            for n in nodes {
                emit(n, rng, out);
            }
        }
        Node::Literal(c) => out.push(*c),
        Node::Class(members) => {
            out.push(members[rng.below(members.len() as u64) as usize]);
        }
        Node::Dot => {
            out.push((b' ' + rng.below(95) as u8) as char);
        }
        Node::Repeat(inner, lo, hi) => {
            let count = lo + rng.below((hi - lo + 1) as u64) as u32;
            for _ in 0..count {
                emit(inner, rng, out);
            }
        }
    }
}

/// Generate one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser {
        chars: pattern.chars().peekable(),
        pattern,
    };
    let ast = parser.parse_alt();
    if parser.chars.next().is_some() {
        parser.fail("trailing input (unbalanced ')'?)");
    }
    let mut out = String::new();
    emit(&ast, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string-tests")
    }

    #[test]
    fn segment_name_pattern_shapes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-z]{1,12}(\\.[a-z0-9]{1,8})?", &mut r);
            let mut parts = s.split('.');
            let head = parts.next().unwrap();
            assert!((1..=12).contains(&head.len()), "bad head {s:?}");
            assert!(head.bytes().all(|b| b.is_ascii_lowercase()));
            if let Some(tail) = parts.next() {
                assert!((1..=8).contains(&tail.len()), "bad tail {s:?}");
                assert!(tail
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()));
            }
            assert!(parts.next().is_none());
        }
    }

    #[test]
    fn alternation_and_quantifiers() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_matching("(foo|ba[rz])x{2}", &mut r);
            assert!(s == "fooxx" || s == "barxx" || s == "bazxx", "got {s:?}");
        }
    }

    #[test]
    fn escapes_and_classes() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate_matching("\\d\\.[_a-c-]", &mut r);
            let b = s.as_bytes();
            assert_eq!(b.len(), 3);
            assert!(b[0].is_ascii_digit());
            assert_eq!(b[1], b'.');
            assert!(matches!(b[2], b'_' | b'a'..=b'c' | b'-'));
        }
    }
}
