//! Engine self-checks: the explorer must accept correct protocols,
//! and — the part that earns trust — *find* the bad interleaving in
//! broken ones.

use std::sync::Arc;

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Mutex;
use loom::thread;

#[test]
fn mutex_counter_is_exact_under_all_interleavings() {
    loom::model(|| {
        let counter = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = counter.clone();
                thread::spawn(move || {
                    *counter.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 2);
    });
}

#[test]
#[should_panic(expected = "failing interleaving")]
fn finds_the_lost_update_in_a_naive_rmw() {
    loom::model(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let a = a.clone();
                thread::spawn(move || {
                    // Non-atomic read-modify-write: some schedule loses
                    // one increment, and the explorer must find it.
                    let v = a.load(Ordering::SeqCst);
                    a.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.load(Ordering::SeqCst), 2);
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn finds_the_ab_ba_deadlock() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let t = {
            let (a, b) = (a.clone(), b.clone());
            thread::spawn(move || {
                let _ga = a.lock().unwrap();
                let _gb = b.lock().unwrap();
            })
        };
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        t.join().unwrap();
    });
}

#[test]
fn yield_is_a_plain_scheduling_point() {
    loom::model(|| {
        let flag = Arc::new(AtomicUsize::new(0));
        let t = {
            let flag = flag.clone();
            thread::spawn(move || flag.store(1, Ordering::SeqCst))
        };
        thread::yield_now();
        // Either order is legal; the value is 1 after the join always.
        t.join().unwrap();
        assert_eq!(flag.load(Ordering::SeqCst), 1);
    });
}
