//! Correctness of every Open MPI-flavour collective algorithm against naive
//! references, across communicator sizes and across algorithm thresholds.

use ompi_sim::{ompi_h, OmpiProcess, Tuning};
use simnet::{ClusterSpec, World};

/// Force the large-message algorithms everywhere.
fn force_large() -> Tuning {
    Tuning {
        bcast_bintree_max: 0,
        allreduce_recdbl_max: 0,
        alltoall_linear_max: 0,
        allgather_neighbor_max: 0,
        // Tiny segments so pipelines have many segments even on test data.
        pipeline_segment: 16,
        ..Tuning::default()
    }
}

/// Force the small-message algorithms everywhere.
fn force_small() -> Tuning {
    Tuning {
        bcast_bintree_max: usize::MAX,
        allreduce_recdbl_max: usize::MAX,
        alltoall_linear_max: usize::MAX,
        allgather_neighbor_max: usize::MAX,
        pipeline_segment: usize::MAX,
        ..Tuning::default()
    }
}

fn run<R: Send>(
    nranks: usize,
    tuning: Tuning,
    f: impl Fn(&mut OmpiProcess, ompi_h::MpiComm) -> Result<R, i32> + Sync,
) -> Vec<R> {
    let rpn = nranks.div_ceil(2).max(1);
    let nodes = nranks.div_ceil(rpn);
    let spec = ClusterSpec::builder()
        .nodes(nodes)
        .ranks_per_node(rpn)
        .build();
    World::run(&spec, |ctx| {
        let mut p = OmpiProcess::init_with_tuning(ctx, tuning);
        let me = p.comm_rank(ompi_h::MPI_COMM_WORLD).unwrap();
        let color = if (me as usize) < nranks {
            0
        } else {
            ompi_h::MPI_UNDEFINED
        };
        let sub = p.comm_split(ompi_h::MPI_COMM_WORLD, color, me).unwrap();
        if sub == ompi_h::MPI_COMM_NULL {
            return Ok(None);
        }
        f(&mut p, sub)
            .map(Some)
            .map_err(|code| simnet::SimError::InvalidConfig(format!("native error {code}")))
    })
    .unwrap()
    .results
    .into_iter()
    .flatten()
    .collect()
}

fn f64s(xs: &[f64]) -> Vec<u8> {
    xs.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn to_f64s(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

const SIZES: &[usize] = &[2, 3, 4, 5, 7, 8, 12];

#[test]
fn barrier_all_sizes() {
    for &n in SIZES {
        let out = run(n, Tuning::default(), |p, c| {
            p.barrier(c)?;
            p.barrier(c)?;
            Ok(true)
        });
        assert_eq!(out.len(), n);
    }
}

#[test]
fn bcast_bintree_and_pipeline_all_roots() {
    for tuning in [force_small(), force_large()] {
        for &n in SIZES {
            let out = run(n, tuning, |p, c| {
                let me = p.comm_rank(c)?;
                let size = p.comm_size(c)? as usize;
                let mut ok = true;
                for root in 0..size as i32 {
                    // 33 doubles: does not divide evenly into 16-byte
                    // pipeline segments, exercising the tail segment.
                    let truth: Vec<f64> =
                        (0..33).map(|i| root as f64 * 1000.0 + i as f64).collect();
                    let mut buf = if me == root {
                        f64s(&truth)
                    } else {
                        vec![0u8; 264]
                    };
                    p.bcast(&mut buf, ompi_h::MPI_DOUBLE, root, c)?;
                    ok &= to_f64s(&buf) == truth;
                }
                Ok(ok)
            });
            assert!(out.iter().all(|&ok| ok), "bcast n={n}");
        }
    }
}

#[test]
fn reduce_linear_and_pipeline() {
    for tuning in [force_small(), force_large()] {
        for &n in SIZES {
            let out = run(n, tuning, |p, c| {
                let me = p.comm_rank(c)?;
                let size = p.comm_size(c)? as usize;
                let mut ok = true;
                for root in 0..size as i32 {
                    let mine: Vec<f64> = (0..9).map(|i| me as f64 + i as f64).collect();
                    let mut out = if me == root {
                        vec![0u8; 72]
                    } else {
                        Vec::new()
                    };
                    p.reduce(
                        &f64s(&mine),
                        &mut out,
                        ompi_h::MPI_DOUBLE,
                        ompi_h::MPI_SUM,
                        root,
                        c,
                    )?;
                    if me == root {
                        let expect: Vec<f64> = (0..9)
                            .map(|i| (0..size).map(|r| r as f64 + i as f64).sum())
                            .collect();
                        ok &= to_f64s(&out)
                            .iter()
                            .zip(&expect)
                            .all(|(a, b)| (a - b).abs() < 1e-9);
                    }
                }
                Ok(ok)
            });
            assert!(out.iter().all(|&ok| ok), "reduce n={n}");
        }
    }
}

#[test]
fn allreduce_recdbl_and_ring() {
    for tuning in [force_small(), force_large()] {
        for &n in SIZES {
            let out = run(n, tuning, |p, c| {
                let me = p.comm_rank(c)?;
                let size = p.comm_size(c)? as usize;
                let mine: Vec<f64> = (0..17).map(|i| (me + 1) as f64 * (i + 1) as f64).collect();
                let mut out = vec![0u8; 17 * 8];
                p.allreduce(
                    &f64s(&mine),
                    &mut out,
                    ompi_h::MPI_DOUBLE,
                    ompi_h::MPI_SUM,
                    c,
                )?;
                let expect: Vec<f64> = (0..17)
                    .map(|i| (0..size).map(|r| (r + 1) as f64 * (i + 1) as f64).sum())
                    .collect();
                Ok(to_f64s(&out)
                    .iter()
                    .zip(&expect)
                    .all(|(a, b)| (a - b).abs() < 1e-9))
            });
            assert!(out.iter().all(|&ok| ok), "allreduce n={n}");
        }
    }
}

#[test]
fn gather_scatter_linear() {
    for &n in SIZES {
        let out = run(n, Tuning::default(), |p, c| {
            let me = p.comm_rank(c)?;
            let size = p.comm_size(c)? as usize;
            let mut ok = true;
            for root in 0..size as i32 {
                // Gather.
                let mine = [me as f64, -(me as f64)];
                let mut g = if me == root {
                    vec![0u8; 16 * size]
                } else {
                    Vec::new()
                };
                p.gather(&f64s(&mine), &mut g, ompi_h::MPI_DOUBLE, root, c)?;
                if me == root {
                    let got = to_f64s(&g);
                    ok &=
                        (0..size).all(|r| got[2 * r] == r as f64 && got[2 * r + 1] == -(r as f64));
                }
                // Scatter.
                let all: Vec<f64> = (0..2 * size).map(|i| i as f64 * 3.0).collect();
                let send = if me == root { f64s(&all) } else { Vec::new() };
                let mut recv = vec![0u8; 16];
                p.scatter(&send, &mut recv, ompi_h::MPI_DOUBLE, root, c)?;
                let got = to_f64s(&recv);
                ok &= got[0] == (2 * me) as f64 * 3.0 && got[1] == (2 * me + 1) as f64 * 3.0;
            }
            Ok(ok)
        });
        assert!(out.iter().all(|&ok| ok), "gather/scatter n={n}");
    }
}

#[test]
fn allgather_recdbl_and_ring() {
    for tuning in [force_small(), force_large()] {
        for &n in SIZES {
            let out = run(n, tuning, |p, c| {
                let me = p.comm_rank(c)? as usize;
                let size = p.comm_size(c)? as usize;
                let mine = [me as f64 * 7.0];
                let mut out = vec![0u8; 8 * size];
                p.allgather(&f64s(&mine), &mut out, ompi_h::MPI_DOUBLE, c)?;
                let got = to_f64s(&out);
                Ok((0..size).all(|r| got[r] == r as f64 * 7.0))
            });
            assert!(out.iter().all(|&ok| ok), "allgather n={n}");
        }
    }
}

#[test]
fn alltoall_linear_and_pairwise() {
    for tuning in [force_small(), force_large()] {
        for &n in SIZES {
            let out =
                run(n, tuning, |p, c| {
                    let me = p.comm_rank(c)? as usize;
                    let size = p.comm_size(c)? as usize;
                    let send: Vec<f64> = (0..size).flat_map(|i| [me as f64, i as f64]).collect();
                    let mut recv = vec![0u8; 16 * size];
                    p.alltoall(&f64s(&send), &mut recv, ompi_h::MPI_DOUBLE, c)?;
                    let got = to_f64s(&recv);
                    Ok((0..size)
                        .all(|src| got[2 * src] == src as f64 && got[2 * src + 1] == me as f64))
                });
            assert!(out.iter().all(|&ok| ok), "alltoall n={n}");
        }
    }
}

#[test]
fn scan_linear_chain() {
    for &n in SIZES {
        let out = run(n, Tuning::default(), |p, c| {
            let me = p.comm_rank(c)?;
            let mine = [(me + 1) as f64];
            let mut out = vec![0u8; 8];
            p.scan(
                &f64s(&mine),
                &mut out,
                ompi_h::MPI_DOUBLE,
                ompi_h::MPI_SUM,
                c,
            )?;
            let expect: f64 = (1..=me + 1).map(|r| r as f64).sum();
            Ok(to_f64s(&out)[0] == expect)
        });
        assert!(out.iter().all(|&ok| ok), "scan n={n}");
    }
}

#[test]
fn vendor_timing_differs_from_mpich_flavour() {
    // Same workload on both vendors: virtual completion times must differ
    // (different algorithms and overheads). This pins the property that
    // gives the paper's figures two distinct curve families.
    let spec = ClusterSpec::builder().nodes(2).ranks_per_node(4).build();
    let ompi_time = World::run(&spec, |ctx| {
        let mut p = OmpiProcess::init(ctx.clone());
        let n = p.comm_size(ompi_h::MPI_COMM_WORLD).unwrap() as usize;
        let send = vec![1u8; n * 1024];
        let mut recv = vec![0u8; n * 1024];
        for _ in 0..4 {
            p.alltoall(&send, &mut recv, ompi_h::MPI_BYTE, ompi_h::MPI_COMM_WORLD)
                .unwrap();
        }
        Ok(ctx.now().as_nanos())
    })
    .unwrap()
    .results;
    let mpich_time = World::run(&spec, |ctx| {
        let mut p = mpich_sim_shim::init(ctx.clone());
        let n = 8usize;
        let send = vec![1u8; n * 1024];
        let mut recv = vec![0u8; n * 1024];
        for _ in 0..4 {
            mpich_sim_shim::alltoall(&mut p, &send, &mut recv).unwrap();
        }
        Ok(ctx.now().as_nanos())
    })
    .unwrap()
    .results;
    assert_ne!(
        ompi_time, mpich_time,
        "vendors must have distinct timing profiles"
    );
}

/// Minimal dev-dependency-free access to the sibling vendor for the timing
/// comparison test (kept local to avoid a circular dev-dependency).
mod mpich_sim_shim {
    use std::rc::Rc;

    pub fn init(ctx: Rc<simnet::RankCtx>) -> mpich_sim::MpichProcess {
        mpich_sim::MpichProcess::init(ctx)
    }

    pub fn alltoall(
        p: &mut mpich_sim::MpichProcess,
        send: &[u8],
        recv: &mut [u8],
    ) -> Result<(), i32> {
        p.alltoall(
            send,
            recv,
            mpich_sim::mpih::MPI_BYTE,
            mpich_sim::mpih::MPI_COMM_WORLD,
        )
    }
}
