//! The per-rank library instance: lifecycle, point-to-point messaging, and
//! object management. Collective algorithms live in [`crate::coll`].

use std::rc::Rc;

use bytes::Bytes;

use simnet::{RankCtx, SimError, VirtualTime};

use crate::engine::{Arrived, MatchEngine, SrcSel, TagSel};
use crate::kernels;
use crate::mpih::{self, MpiComm, MpiDatatype, MpiOp, MpiRequest, MpiStatus, MpichResult};
use crate::objects::{CommInfo, DerivedType, MpichUserFn, RequestObj, Tables, UserOp};
use crate::tuning::Tuning;

/// Map a substrate error to a native MPICH-flavour error code.
pub(crate) fn sim_err(e: SimError) -> i32 {
    match e {
        SimError::NoSuchRank { .. } => mpih::MPI_ERR_RANK,
        SimError::PeerFailed { .. } | SimError::SelfFailed => mpih::MPI_ERR_PROC_FAILED,
        SimError::Disconnected | SimError::RankPanicked { .. } => mpih::MPI_ERR_SHUTDOWN,
        SimError::InvalidConfig(_) => mpih::MPI_ERR_OTHER,
    }
}

/// One rank's instance of the MPICH-flavoured library.
///
/// Constructed by `init` (the analogue of `MPI_Init`), used through native
/// calls that mirror the C API, destroyed by `finalize` + drop.
pub struct MpichProcess {
    pub(crate) ctx: Rc<RankCtx>,
    pub(crate) tuning: Tuning,
    pub(crate) tables: Tables,
    pub(crate) engine: MatchEngine,
    pub(crate) next_ctx_base: u64,
    pub(crate) finalized: bool,
}

impl MpichProcess {
    /// `MPI_Init`: attach to the fabric and set up predefined objects.
    pub fn init(ctx: Rc<RankCtx>) -> MpichProcess {
        Self::init_with_tuning(ctx, Tuning::default())
    }

    /// `MPI_Init` with explicit tuning (used by ablation benchmarks).
    pub fn init_with_tuning(ctx: Rc<RankCtx>, tuning: Tuning) -> MpichProcess {
        let tables = Tables::new(ctx.nranks(), ctx.rank());
        MpichProcess {
            ctx,
            tuning,
            tables,
            engine: MatchEngine::with_sock_latency(
                tuning.sock_small_latency,
                tuning.sock_small_max,
            ),
            // World uses 0/1, self 2/3; dynamic communicators start at 4.
            next_ctx_base: 4,
            finalized: false,
        }
    }

    /// Library identification string.
    pub fn version(&self) -> &'static str {
        Tuning::VERSION
    }

    /// `MPI_Finalize`.
    pub fn finalize(&mut self) -> MpichResult<()> {
        if self.finalized {
            return Err(mpih::MPI_ERR_FINALIZED);
        }
        self.finalized = true;
        Ok(())
    }

    /// Whether `finalize` has been called.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// `MPI_Wtime` (virtual seconds).
    pub fn wtime(&self) -> f64 {
        self.ctx.now().as_secs_f64()
    }

    /// The rank context (used by upper layers for time accounting).
    pub fn rank_ctx(&self) -> &Rc<RankCtx> {
        &self.ctx
    }

    fn check_live(&self) -> MpichResult<()> {
        if self.finalized {
            Err(mpih::MPI_ERR_FINALIZED)
        } else {
            Ok(())
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// `MPI_Comm_size`.
    pub fn comm_size(&self, comm: MpiComm) -> MpichResult<i32> {
        Ok(self.tables.comm(comm)?.size() as i32)
    }

    /// `MPI_Comm_rank`.
    pub fn comm_rank(&self, comm: MpiComm) -> MpichResult<i32> {
        Ok(self.tables.comm(comm)?.my_rank)
    }

    /// Translate a communicator rank to a world rank
    /// (`MPI_Group_translate_ranks` against the world group).
    pub fn comm_translate_rank(&self, comm: MpiComm, rank: i32) -> MpichResult<i32> {
        Ok(self.tables.comm(comm)?.world_of(rank)? as i32)
    }

    /// Cheap clone of communicator facts (internal).
    pub(crate) fn info(&self, comm: MpiComm) -> MpichResult<CommInfo> {
        self.tables.comm(comm).cloned()
    }

    /// Validate a (buffer, datatype) pair; returns the element size.
    pub(crate) fn check_typed_buf(&self, dt: MpiDatatype, len: usize) -> MpichResult<usize> {
        let size = self.tables.type_size(dt)?;
        if size == 0 || !len.is_multiple_of(size) {
            return Err(mpih::MPI_ERR_COUNT);
        }
        Ok(size)
    }

    // ------------------------------------------------------------------
    // Internal transport primitives (shared by p2p and collectives)
    // ------------------------------------------------------------------

    /// Send `payload` to communicator rank `dst_cr` on the p2p or collective
    /// context. Charges the per-message sender overhead, and for messages
    /// beyond the eager threshold a rendezvous round-trip of the link.
    pub(crate) fn xsend(
        &mut self,
        info: &CommInfo,
        coll: bool,
        dst_cr: i32,
        tag: i32,
        payload: Bytes,
    ) -> MpichResult<()> {
        let dst_world = info.world_of(dst_cr)?;
        self.ctx.advance(self.tuning.o_send);
        if payload.len() > self.tuning.eager_threshold {
            // Rendezvous: RTS/CTS handshake before the data moves.
            let link = self.ctx.spec().link_between(self.ctx.rank(), dst_world);
            self.ctx.advance(link.alpha + link.alpha);
        }
        let ctx_id = if coll {
            info.coll_ctx()
        } else {
            info.p2p_ctx()
        };
        self.ctx
            .endpoint()
            .send_raw(dst_world, ctx_id, tag, payload, &self.ctx)
            .map_err(sim_err)
    }

    /// Blocking matched receive on a communicator context. Charges arrival
    /// and the per-message receiver overhead.
    pub(crate) fn xrecv(
        &mut self,
        info: &CommInfo,
        coll: bool,
        src: SrcSel,
        tag: TagSel,
    ) -> MpichResult<Arrived> {
        let ctx_id = if coll {
            info.coll_ctx()
        } else {
            info.p2p_ctx()
        };
        let got = self
            .engine
            .match_blocking(&self.ctx, ctx_id, src, tag)
            .map_err(sim_err)?;
        self.ctx.advance_to(got.arrival);
        self.ctx.advance(self.tuning.o_recv);
        Ok(got)
    }

    /// Translate a communicator-rank source argument to a world selector.
    fn src_sel(&self, info: &CommInfo, src: i32) -> MpichResult<SrcSel> {
        if src == mpih::MPI_ANY_SOURCE {
            Ok(SrcSel::Any)
        } else {
            Ok(SrcSel::World(info.world_of(src)?))
        }
    }

    fn tag_sel(tag: i32) -> MpichResult<TagSel> {
        if tag == mpih::MPI_ANY_TAG {
            Ok(TagSel::Any)
        } else if (0..=mpih::MPI_TAG_UB).contains(&tag) {
            Ok(TagSel::Is(tag))
        } else {
            Err(mpih::MPI_ERR_TAG)
        }
    }

    fn send_tag(tag: i32) -> MpichResult<i32> {
        if (0..=mpih::MPI_TAG_UB).contains(&tag) {
            Ok(tag)
        } else {
            Err(mpih::MPI_ERR_TAG)
        }
    }

    /// Build the native status for a matched message.
    fn status_of(&self, info: &CommInfo, got: &Arrived) -> MpiStatus {
        let source = info
            .comm_rank_of_world(got.env.src)
            .unwrap_or(mpih::MPI_ANY_SOURCE);
        MpiStatus::for_receive(source, got.env.tag, got.env.len() as u64)
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// `MPI_Send`.
    pub fn send(
        &mut self,
        buf: &[u8],
        dt: MpiDatatype,
        dest: i32,
        tag: i32,
        comm: MpiComm,
    ) -> MpichResult<()> {
        self.check_live()?;
        self.check_typed_buf(dt, buf.len())?;
        let tag = Self::send_tag(tag)?;
        if dest == mpih::MPI_PROC_NULL {
            return Ok(());
        }
        let info = self.info(comm)?;
        self.xsend(&info, false, dest, tag, Bytes::copy_from_slice(buf))
    }

    /// `MPI_Recv`.
    pub fn recv(
        &mut self,
        buf: &mut [u8],
        dt: MpiDatatype,
        src: i32,
        tag: i32,
        comm: MpiComm,
    ) -> MpichResult<MpiStatus> {
        self.check_live()?;
        self.check_typed_buf(dt, buf.len())?;
        let tag_sel = Self::tag_sel(tag)?;
        if src == mpih::MPI_PROC_NULL {
            return Ok(MpiStatus::for_receive(
                mpih::MPI_PROC_NULL,
                mpih::MPI_ANY_TAG,
                0,
            ));
        }
        let info = self.info(comm)?;
        let src_sel = self.src_sel(&info, src)?;
        let got = self.xrecv(&info, false, src_sel, tag_sel)?;
        if got.env.len() > buf.len() {
            return Err(mpih::MPI_ERR_TRUNCATE);
        }
        buf[..got.env.len()].copy_from_slice(&got.env.payload);
        Ok(self.status_of(&info, &got))
    }

    /// `MPI_Isend` (eager: the data leaves immediately; the request is a
    /// completion token).
    pub fn isend(
        &mut self,
        buf: &[u8],
        dt: MpiDatatype,
        dest: i32,
        tag: i32,
        comm: MpiComm,
    ) -> MpichResult<MpiRequest> {
        self.check_live()?;
        self.check_typed_buf(dt, buf.len())?;
        let tag = Self::send_tag(tag)?;
        if dest != mpih::MPI_PROC_NULL {
            let info = self.info(comm)?;
            self.xsend(&info, false, dest, tag, Bytes::copy_from_slice(buf))?;
        }
        Ok(self.tables.add_request(RequestObj::SendDone))
    }

    /// `MPI_Irecv`.
    pub fn irecv(
        &mut self,
        max_bytes: usize,
        dt: MpiDatatype,
        src: i32,
        tag: i32,
        comm: MpiComm,
    ) -> MpichResult<MpiRequest> {
        self.check_live()?;
        self.check_typed_buf(dt, max_bytes)?;
        let tag_sel = Self::tag_sel(tag)?;
        if src == mpih::MPI_PROC_NULL {
            return Ok(self.tables.add_request(RequestObj::RecvDone {
                status: MpiStatus::for_receive(mpih::MPI_PROC_NULL, mpih::MPI_ANY_TAG, 0),
                payload: Bytes::new(),
            }));
        }
        let info = self.info(comm)?;
        let src_world = match self.src_sel(&info, src)? {
            SrcSel::Any => None,
            SrcSel::World(w) => Some(w),
        };
        let tag_opt = match tag_sel {
            TagSel::Any => None,
            TagSel::Is(t) => Some(t),
        };
        Ok(self.tables.add_request(RequestObj::RecvPending {
            ctx_id: info.p2p_ctx(),
            src_world,
            tag: tag_opt,
            max_bytes,
            ranks: info.ranks.clone(),
        }))
    }

    /// `MPI_Wait`: complete a request; receive payloads are returned.
    pub fn wait(&mut self, req: MpiRequest) -> MpichResult<(MpiStatus, Option<Bytes>)> {
        self.check_live()?;
        match self.tables.take_request(req)? {
            RequestObj::SendDone => Ok((MpiStatus::default(), None)),
            RequestObj::RecvDone { status, payload } => Ok((status, Some(payload))),
            RequestObj::RecvPending {
                ctx_id,
                src_world,
                tag,
                max_bytes,
                ranks,
            } => {
                let src = src_world.map_or(SrcSel::Any, SrcSel::World);
                let tag_sel = tag.map_or(TagSel::Any, TagSel::Is);
                let got = self
                    .engine
                    .match_blocking(&self.ctx, ctx_id, src, tag_sel)
                    .map_err(sim_err)?;
                self.ctx.advance_to(got.arrival);
                self.ctx.advance(self.tuning.o_recv);
                if got.env.len() > max_bytes {
                    return Err(mpih::MPI_ERR_TRUNCATE);
                }
                let source = ranks
                    .iter()
                    .position(|&w| w == got.env.src)
                    .map(|p| p as i32)
                    .unwrap_or(mpih::MPI_ANY_SOURCE);
                let status = MpiStatus::for_receive(source, got.env.tag, got.env.len() as u64);
                Ok((status, Some(got.env.payload)))
            }
        }
    }

    /// `MPI_Test`.
    pub fn test(&mut self, req: MpiRequest) -> MpichResult<Option<(MpiStatus, Option<Bytes>)>> {
        self.check_live()?;
        match self.tables.take_request(req)? {
            RequestObj::SendDone => Ok(Some((MpiStatus::default(), None))),
            RequestObj::RecvDone { status, payload } => Ok(Some((status, Some(payload)))),
            pending @ RequestObj::RecvPending { .. } => {
                let (ctx_id, src, tag_sel, max_bytes, ranks) = match &pending {
                    RequestObj::RecvPending {
                        ctx_id,
                        src_world,
                        tag,
                        max_bytes,
                        ranks,
                    } => (
                        *ctx_id,
                        src_world.map_or(SrcSel::Any, SrcSel::World),
                        tag.map_or(TagSel::Any, TagSel::Is),
                        *max_bytes,
                        ranks.clone(),
                    ),
                    _ => unreachable!(),
                };
                match self
                    .engine
                    .match_nonblocking(&self.ctx, ctx_id, src, tag_sel)
                    .map_err(sim_err)?
                {
                    None => {
                        self.tables.put_back_request(req, pending)?;
                        Ok(None)
                    }
                    Some(got) => {
                        self.ctx.advance_to(got.arrival);
                        self.ctx.advance(self.tuning.o_recv);
                        if got.env.len() > max_bytes {
                            return Err(mpih::MPI_ERR_TRUNCATE);
                        }
                        let source = ranks
                            .iter()
                            .position(|&w| w == got.env.src)
                            .map(|p| p as i32)
                            .unwrap_or(mpih::MPI_ANY_SOURCE);
                        let status =
                            MpiStatus::for_receive(source, got.env.tag, got.env.len() as u64);
                        Ok(Some((status, Some(got.env.payload))))
                    }
                }
            }
        }
    }

    /// `MPI_Waitall`.
    pub fn waitall(&mut self, reqs: &[MpiRequest]) -> MpichResult<Vec<(MpiStatus, Option<Bytes>)>> {
        reqs.iter().map(|&r| self.wait(r)).collect()
    }

    /// `MPI_Sendrecv`.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &mut self,
        sendbuf: &[u8],
        dest: i32,
        sendtag: i32,
        recvbuf: &mut [u8],
        src: i32,
        recvtag: i32,
        dt: MpiDatatype,
        comm: MpiComm,
    ) -> MpichResult<MpiStatus> {
        // Eager transport cannot deadlock: send first, then receive.
        self.send(sendbuf, dt, dest, sendtag, comm)?;
        self.recv(recvbuf, dt, src, recvtag, comm)
    }

    /// `MPI_Probe`.
    pub fn probe(&mut self, src: i32, tag: i32, comm: MpiComm) -> MpichResult<MpiStatus> {
        self.check_live()?;
        let info = self.info(comm)?;
        let src_sel = self.src_sel(&info, src)?;
        let tag_sel = Self::tag_sel(tag)?;
        let got = self
            .engine
            .peek_blocking(&self.ctx, info.p2p_ctx(), src_sel, tag_sel)
            .map_err(sim_err)?;
        Ok(self.status_of(&info, &got))
    }

    /// `MPI_Iprobe`.
    pub fn iprobe(&mut self, src: i32, tag: i32, comm: MpiComm) -> MpichResult<Option<MpiStatus>> {
        self.check_live()?;
        let info = self.info(comm)?;
        let src_sel = self.src_sel(&info, src)?;
        let tag_sel = Self::tag_sel(tag)?;
        let got = self
            .engine
            .peek_nonblocking(&self.ctx, info.p2p_ctx(), src_sel, tag_sel)
            .map_err(sim_err)?;
        Ok(got.map(|g| self.status_of(&info, &g)))
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// `MPI_Comm_dup` (collective over `comm`).
    pub fn comm_dup(&mut self, comm: MpiComm) -> MpichResult<MpiComm> {
        self.check_live()?;
        let info = self.info(comm)?;
        let base = self.agree_ctx_base(&info)?;
        self.next_ctx_base = base + 2;
        let dup = CommInfo {
            ctx_base: base,
            ranks: info.ranks.clone(),
            my_rank: info.my_rank,
        };
        Ok(self.tables.add_comm(dup))
    }

    /// `MPI_Comm_split` (collective over `comm`).
    pub fn comm_split(&mut self, comm: MpiComm, color: i32, key: i32) -> MpichResult<MpiComm> {
        self.check_live()?;
        let info = self.info(comm)?;
        let base = self.agree_ctx_base(&info)?;

        // Gather (color, key) from every member via the collective context,
        // through rank 0, then broadcast the full table. Deterministic and
        // simple; communicator creation is not on the critical path.
        let my = [color, key];
        let n = info.size();
        let me = info.my_rank as usize;
        let mut table: Vec<[i32; 2]> = vec![[0; 2]; n];
        const SPLIT_TAG: i32 = 0x0200;
        if me == 0 {
            table[0] = my;
            for _ in 1..n {
                let got = self.xrecv(&info, true, SrcSel::Any, TagSel::Is(SPLIT_TAG))?;
                let cr = info
                    .comm_rank_of_world(got.env.src)
                    .ok_or(mpih::MPI_ERR_INTERN)? as usize;
                let b = &got.env.payload;
                table[cr] = [
                    i32::from_le_bytes(b[0..4].try_into().unwrap()),
                    i32::from_le_bytes(b[4..8].try_into().unwrap()),
                ];
            }
            let mut flat = Vec::with_capacity(n * 8);
            for ck in &table {
                flat.extend_from_slice(&ck[0].to_le_bytes());
                flat.extend_from_slice(&ck[1].to_le_bytes());
            }
            let payload = Bytes::from(flat);
            for dst in 1..n {
                self.xsend(&info, true, dst as i32, SPLIT_TAG + 1, payload.clone())?;
            }
        } else {
            let mut buf = Vec::with_capacity(8);
            buf.extend_from_slice(&my[0].to_le_bytes());
            buf.extend_from_slice(&my[1].to_le_bytes());
            self.xsend(&info, true, 0, SPLIT_TAG, Bytes::from(buf))?;
            let got = self.xrecv(
                &info,
                true,
                SrcSel::World(info.world_of(0)?),
                TagSel::Is(SPLIT_TAG + 1),
            )?;
            for (cr, chunk) in got.env.payload.chunks_exact(8).enumerate() {
                table[cr] = [
                    i32::from_le_bytes(chunk[0..4].try_into().unwrap()),
                    i32::from_le_bytes(chunk[4..8].try_into().unwrap()),
                ];
            }
        }

        // Distinct colors in sorted order; each gets ctx base + 2*index.
        let mut colors: Vec<i32> = table
            .iter()
            .map(|ck| ck[0])
            .filter(|&c| c != mpih::MPI_UNDEFINED)
            .collect();
        colors.sort_unstable();
        colors.dedup();
        self.next_ctx_base = base + 2 * colors.len().max(1) as u64;

        if color == mpih::MPI_UNDEFINED {
            return Ok(mpih::MPI_COMM_NULL);
        }
        let color_idx = colors
            .binary_search(&color)
            .map_err(|_| mpih::MPI_ERR_INTERN)?;
        // Members of my color, ordered by (key, parent rank).
        let mut members: Vec<(i32, usize)> = table
            .iter()
            .enumerate()
            .filter(|(_, ck)| ck[0] == color)
            .map(|(cr, ck)| (ck[1], cr))
            .collect();
        members.sort_unstable();
        let world_ranks: Vec<usize> = members.iter().map(|&(_, cr)| info.ranks[cr]).collect();
        let my_new_rank = members
            .iter()
            .position(|&(_, cr)| cr == me)
            .ok_or(mpih::MPI_ERR_INTERN)? as i32;
        let new_info = CommInfo {
            ctx_base: base + 2 * color_idx as u64,
            ranks: std::sync::Arc::new(world_ranks),
            my_rank: my_new_rank,
        };
        Ok(self.tables.add_comm(new_info))
    }

    /// `MPI_Comm_free`.
    pub fn comm_free(&mut self, comm: MpiComm) -> MpichResult<()> {
        self.check_live()?;
        self.tables.free_comm(comm)
    }

    /// Agree on a context-id base across the communicator: an all-reduce
    /// max of every member's `next_ctx_base` (the analogue of MPICH's
    /// context-id allocation protocol).
    fn agree_ctx_base(&mut self, info: &CommInfo) -> MpichResult<u64> {
        const CTX_TAG: i32 = 0x0201;
        let n = info.size();
        let me = info.my_rank as usize;
        let mut agreed = self.next_ctx_base;
        if n == 1 {
            return Ok(agreed);
        }
        // Recursive-doubling max over possibly non-power-of-two sizes:
        // everyone exchanges with rank^mask partners when in range; ranks
        // without a partner at a given round skip it, then a final
        // broadcast from rank 0 aligns everyone.
        // Simpler and fully correct: gather-to-0 + bcast.
        if me == 0 {
            for _ in 1..n {
                let got = self.xrecv(&info.clone(), true, SrcSel::Any, TagSel::Is(CTX_TAG))?;
                let v = u64::from_le_bytes(got.env.payload[..8].try_into().unwrap());
                agreed = agreed.max(v);
            }
            let payload = Bytes::copy_from_slice(&agreed.to_le_bytes());
            for dst in 1..n {
                self.xsend(
                    &info.clone(),
                    true,
                    dst as i32,
                    CTX_TAG + 1,
                    payload.clone(),
                )?;
            }
        } else {
            let payload = Bytes::copy_from_slice(&self.next_ctx_base.to_le_bytes());
            self.xsend(&info.clone(), true, 0, CTX_TAG, payload)?;
            let got = self.xrecv(
                &info.clone(),
                true,
                SrcSel::World(info.world_of(0)?),
                TagSel::Is(CTX_TAG + 1),
            )?;
            agreed = u64::from_le_bytes(got.env.payload[..8].try_into().unwrap());
        }
        Ok(agreed)
    }

    // ------------------------------------------------------------------
    // Datatypes
    // ------------------------------------------------------------------

    /// `MPI_Type_size`.
    pub fn type_size(&self, dt: MpiDatatype) -> MpichResult<usize> {
        self.tables.type_size(dt)
    }

    /// `MPI_Type_contiguous`.
    pub fn type_contiguous(
        &mut self,
        count: i32,
        oldtype: MpiDatatype,
    ) -> MpichResult<MpiDatatype> {
        self.check_live()?;
        if count < 0 {
            return Err(mpih::MPI_ERR_COUNT);
        }
        let base_size = self.tables.type_size(oldtype)?;
        let elem = if kernels::ElemKind::of_builtin(oldtype).is_some() {
            kernels::ElemKind::of_builtin(oldtype)
        } else {
            self.tables.derived(oldtype)?.elem
        };
        Ok(self.tables.add_derived(DerivedType {
            size: base_size * count as usize,
            elem,
            committed: false,
        }))
    }

    /// `MPI_Type_commit`.
    pub fn type_commit(&mut self, dt: MpiDatatype) -> MpichResult<()> {
        self.check_live()?;
        if mpih::PREDEFINED_DATATYPES.contains(&dt) {
            return Ok(()); // committing a predefined type is a no-op
        }
        self.tables.commit_type(dt)
    }

    /// `MPI_Type_free`.
    pub fn type_free(&mut self, dt: MpiDatatype) -> MpichResult<()> {
        self.check_live()?;
        self.tables.free_type(dt)
    }

    // ------------------------------------------------------------------
    // Reduction ops
    // ------------------------------------------------------------------

    /// `MPI_Op_create`.
    pub fn op_create(&mut self, func: MpichUserFn, commute: bool) -> MpichResult<MpiOp> {
        self.check_live()?;
        Ok(self.tables.add_user_op(UserOp { func, commute }))
    }

    /// `MPI_Op_free`.
    pub fn op_free(&mut self, op: MpiOp) -> MpichResult<()> {
        self.check_live()?;
        self.tables.free_op(op)
    }

    /// Element-wise `acc = op(other, acc)` with op/datatype resolution.
    pub(crate) fn combine_with(
        &self,
        op: MpiOp,
        dt: MpiDatatype,
        acc: &mut [u8],
        other: &[u8],
    ) -> MpichResult<()> {
        if Tables::is_builtin_op(op) {
            let kind = self.tables.elem_kind(dt)?;
            kernels::combine(op, kind, acc, other)
        } else {
            let user = self.tables.user_op(op)?;
            if acc.len() != other.len() {
                return Err(mpih::MPI_ERR_COUNT);
            }
            let elem_size = self.tables.type_size(dt)?;
            // Reduction work costs CPU time proportional to the data.
            (user.func)(other, acc, elem_size);
            Ok(())
        }
    }

    /// Charge the CPU cost of reducing `bytes` bytes (used by collectives).
    pub(crate) fn charge_reduce_cost(&self, bytes: usize) {
        // ~1.5 GB/s effective combine rate on the simulated Xeon.
        let ns = bytes as f64 / 1.5;
        self.ctx.compute(VirtualTime::from_nanos(ns as u64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{ClusterSpec, World};

    fn run_world<R: Send>(
        nranks: usize,
        f: impl Fn(&mut MpichProcess) -> MpichResult<R> + Sync,
    ) -> Vec<R> {
        let spec = ClusterSpec::builder()
            .nodes(1)
            .ranks_per_node(nranks)
            .build();
        World::run(&spec, |ctx| {
            let mut proc = MpichProcess::init(ctx);
            f(&mut proc)
                .map_err(|code| simnet::SimError::InvalidConfig(format!("native MPI error {code}")))
        })
        .unwrap()
        .results
    }

    #[test]
    fn init_queries() {
        let sizes = run_world(4, |p| {
            assert_eq!(p.comm_rank(mpih::MPI_COMM_SELF)?, 0);
            assert_eq!(p.comm_size(mpih::MPI_COMM_SELF)?, 1);
            Ok((
                p.comm_size(mpih::MPI_COMM_WORLD)?,
                p.comm_rank(mpih::MPI_COMM_WORLD)?,
            ))
        });
        assert_eq!(sizes, vec![(4, 0), (4, 1), (4, 2), (4, 3)]);
    }

    #[test]
    fn blocking_ring() {
        let out = run_world(4, |p| {
            let n = p.comm_size(mpih::MPI_COMM_WORLD)?;
            let me = p.comm_rank(mpih::MPI_COMM_WORLD)?;
            let next = (me + 1) % n;
            let prev = (me + n - 1) % n;
            p.send(
                &me.to_le_bytes(),
                mpih::MPI_INT,
                next,
                7,
                mpih::MPI_COMM_WORLD,
            )?;
            let mut buf = [0u8; 4];
            let st = p.recv(&mut buf, mpih::MPI_INT, prev, 7, mpih::MPI_COMM_WORLD)?;
            assert_eq!(st.mpi_source, prev);
            assert_eq!(st.mpi_tag, 7);
            assert_eq!(st.count_bytes(), 4);
            Ok(i32::from_le_bytes(buf))
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn nonblocking_exchange() {
        let out = run_world(2, |p| {
            let me = p.comm_rank(mpih::MPI_COMM_WORLD)?;
            let other = 1 - me;
            let r1 = p.irecv(8, mpih::MPI_DOUBLE, other, 1, mpih::MPI_COMM_WORLD)?;
            let payload = (me as f64 + 1.5).to_le_bytes();
            let r2 = p.isend(&payload, mpih::MPI_DOUBLE, other, 1, mpih::MPI_COMM_WORLD)?;
            let results = p.waitall(&[r1, r2])?;
            let (st, data) = &results[0];
            assert_eq!(st.mpi_source, other);
            Ok(f64::from_le_bytes(
                data.as_ref().unwrap()[..].try_into().unwrap(),
            ))
        });
        assert_eq!(out, vec![2.5, 1.5]);
    }

    #[test]
    fn sendrecv_swaps() {
        let out = run_world(2, |p| {
            let me = p.comm_rank(mpih::MPI_COMM_WORLD)?;
            let other = 1 - me;
            let mut got = [0u8; 4];
            p.sendrecv(
                &me.to_le_bytes(),
                other,
                3,
                &mut got,
                other,
                3,
                mpih::MPI_INT,
                mpih::MPI_COMM_WORLD,
            )?;
            Ok(i32::from_le_bytes(got))
        });
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn proc_null_is_a_black_hole() {
        run_world(1, |p| {
            p.send(
                &[1, 2, 3, 4],
                mpih::MPI_INT,
                mpih::MPI_PROC_NULL,
                0,
                mpih::MPI_COMM_WORLD,
            )?;
            let mut buf = [0u8; 4];
            let st = p.recv(
                &mut buf,
                mpih::MPI_INT,
                mpih::MPI_PROC_NULL,
                0,
                mpih::MPI_COMM_WORLD,
            )?;
            assert_eq!(st.mpi_source, mpih::MPI_PROC_NULL);
            assert_eq!(st.count_bytes(), 0);
            Ok(())
        });
    }

    #[test]
    fn truncation_detected() {
        let out = run_world(2, |p| {
            let me = p.comm_rank(mpih::MPI_COMM_WORLD)?;
            if me == 0 {
                p.send(&[0u8; 16], mpih::MPI_BYTE, 1, 0, mpih::MPI_COMM_WORLD)?;
                Ok(0)
            } else {
                let mut small = [0u8; 8];
                let err = p
                    .recv(&mut small, mpih::MPI_BYTE, 0, 0, mpih::MPI_COMM_WORLD)
                    .unwrap_err();
                Ok(err)
            }
        });
        assert_eq!(out[1], mpih::MPI_ERR_TRUNCATE);
    }

    #[test]
    fn any_source_any_tag() {
        let out = run_world(3, |p| {
            let me = p.comm_rank(mpih::MPI_COMM_WORLD)?;
            if me == 0 {
                let mut seen = Vec::new();
                for _ in 0..2 {
                    let mut buf = [0u8; 4];
                    let st = p.recv(
                        &mut buf,
                        mpih::MPI_INT,
                        mpih::MPI_ANY_SOURCE,
                        mpih::MPI_ANY_TAG,
                        mpih::MPI_COMM_WORLD,
                    )?;
                    assert_eq!(st.mpi_source, i32::from_le_bytes(buf));
                    seen.push(st.mpi_source);
                }
                seen.sort_unstable();
                assert_eq!(seen, vec![1, 2]);
                Ok(true)
            } else {
                p.send(
                    &me.to_le_bytes(),
                    mpih::MPI_INT,
                    0,
                    10 + me,
                    mpih::MPI_COMM_WORLD,
                )?;
                Ok(false)
            }
        });
        assert!(out[0]);
    }

    #[test]
    fn probe_then_sized_recv() {
        run_world(2, |p| {
            let me = p.comm_rank(mpih::MPI_COMM_WORLD)?;
            if me == 0 {
                p.send(&[7u8; 24], mpih::MPI_BYTE, 1, 9, mpih::MPI_COMM_WORLD)?;
            } else {
                assert!(p.iprobe(0, 99, mpih::MPI_COMM_WORLD)?.is_none());
                let st = p.probe(0, 9, mpih::MPI_COMM_WORLD)?;
                assert_eq!(st.count_bytes(), 24);
                let mut buf = vec![0u8; st.count_bytes() as usize];
                p.recv(&mut buf, mpih::MPI_BYTE, 0, 9, mpih::MPI_COMM_WORLD)?;
                assert!(buf.iter().all(|&b| b == 7));
            }
            Ok(())
        });
    }

    #[test]
    fn comm_dup_isolates_traffic() {
        let out = run_world(2, |p| {
            let dup = p.comm_dup(mpih::MPI_COMM_WORLD)?;
            let me = p.comm_rank(dup)?;
            assert_eq!(p.comm_size(dup)?, 2);
            let other = 1 - me;
            // Send on dup with tag 5; a recv on WORLD tag 5 must NOT see it.
            p.send(&me.to_le_bytes(), mpih::MPI_INT, other, 5, dup)?;
            assert!(p.iprobe(other, 5, mpih::MPI_COMM_WORLD)?.is_none());
            let mut buf = [0u8; 4];
            p.recv(&mut buf, mpih::MPI_INT, other, 5, dup)?;
            p.comm_free(dup)?;
            Ok(i32::from_le_bytes(buf))
        });
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn comm_split_even_odd() {
        let out = run_world(4, |p| {
            let me = p.comm_rank(mpih::MPI_COMM_WORLD)?;
            let sub = p.comm_split(mpih::MPI_COMM_WORLD, me % 2, me)?;
            let sub_rank = p.comm_rank(sub)?;
            let sub_size = p.comm_size(sub)?;
            // Exchange inside the subcommunicator.
            let peer = 1 - sub_rank;
            let mut got = [0u8; 4];
            p.sendrecv(
                &me.to_le_bytes(),
                peer,
                0,
                &mut got,
                peer,
                0,
                mpih::MPI_INT,
                sub,
            )?;
            Ok((sub_rank, sub_size, i32::from_le_bytes(got)))
        });
        // Ranks 0,2 form color 0; ranks 1,3 color 1; keys order by rank.
        assert_eq!(out[0], (0, 2, 2));
        assert_eq!(out[1], (0, 2, 3));
        assert_eq!(out[2], (1, 2, 0));
        assert_eq!(out[3], (1, 2, 1));
    }

    #[test]
    fn comm_split_undefined_gets_null() {
        let out = run_world(3, |p| {
            let me = p.comm_rank(mpih::MPI_COMM_WORLD)?;
            let color = if me == 2 { mpih::MPI_UNDEFINED } else { 0 };
            let sub = p.comm_split(mpih::MPI_COMM_WORLD, color, 0)?;
            Ok(sub == mpih::MPI_COMM_NULL)
        });
        assert_eq!(out, vec![false, false, true]);
    }

    #[test]
    fn derived_contiguous_type() {
        run_world(2, |p| {
            let vec3 = p.type_contiguous(3, mpih::MPI_DOUBLE)?;
            assert_eq!(p.type_size(vec3)?, 24);
            p.type_commit(vec3)?;
            let me = p.comm_rank(mpih::MPI_COMM_WORLD)?;
            if me == 0 {
                let data: Vec<u8> = [1.0f64, 2.0, 3.0]
                    .iter()
                    .flat_map(|x| x.to_le_bytes())
                    .collect();
                p.send(&data, vec3, 1, 0, mpih::MPI_COMM_WORLD)?;
            } else {
                let mut buf = vec![0u8; 24];
                let st = p.recv(&mut buf, vec3, 0, 0, mpih::MPI_COMM_WORLD)?;
                assert_eq!(st.count_bytes(), 24);
                let x = f64::from_le_bytes(buf[8..16].try_into().unwrap());
                assert_eq!(x, 2.0);
            }
            p.type_free(vec3)?;
            Ok(())
        });
    }

    #[test]
    fn finalize_blocks_further_calls() {
        run_world(1, |p| {
            p.finalize()?;
            assert!(p.is_finalized());
            let err = p
                .send(
                    &[0u8; 4],
                    mpih::MPI_INT,
                    mpih::MPI_PROC_NULL,
                    0,
                    mpih::MPI_COMM_WORLD,
                )
                .unwrap_err();
            assert_eq!(err, mpih::MPI_ERR_FINALIZED);
            assert_eq!(p.finalize().unwrap_err(), mpih::MPI_ERR_FINALIZED);
            Ok(())
        });
    }

    #[test]
    fn bad_arguments_rejected() {
        run_world(1, |p| {
            // Unaligned buffer length for the datatype.
            let err = p.send(
                &[0u8; 3],
                mpih::MPI_INT,
                mpih::MPI_PROC_NULL,
                0,
                mpih::MPI_COMM_WORLD,
            );
            assert_eq!(err.unwrap_err(), mpih::MPI_ERR_COUNT);
            // Negative tag.
            let err = p.send(&[0u8; 4], mpih::MPI_INT, 0, -5, mpih::MPI_COMM_WORLD);
            assert_eq!(err.unwrap_err(), mpih::MPI_ERR_TAG);
            // Bad communicator.
            let err = p.comm_size(0x1111_2222);
            assert_eq!(err.unwrap_err(), mpih::MPI_ERR_COMM);
            // Rank out of range.
            let mut b = [0u8; 4];
            let err = p.recv(&mut b, mpih::MPI_INT, 7, 0, mpih::MPI_COMM_WORLD);
            assert_eq!(err.unwrap_err(), mpih::MPI_ERR_RANK);
            Ok(())
        });
    }

    #[test]
    fn wtime_advances_with_communication() {
        let out = run_world(2, |p| {
            let t0 = p.wtime();
            let me = p.comm_rank(mpih::MPI_COMM_WORLD)?;
            let other = 1 - me;
            let mut buf = [0u8; 4];
            p.sendrecv(
                &[1, 2, 3, 4],
                other,
                0,
                &mut buf,
                other,
                0,
                mpih::MPI_INT,
                mpih::MPI_COMM_WORLD,
            )?;
            Ok(p.wtime() - t0)
        });
        assert!(
            out.iter().all(|&dt| dt > 0.0),
            "communication must take virtual time"
        );
    }
}
