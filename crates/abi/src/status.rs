//! The standardized status object.
//!
//! The fields of `MPI_Status` are one of the specific pain points Hammond
//! et al. report for ABI standardization: MPICH and Open MPI lay the public
//! fields out differently and keep different private fields. The standard
//! ABI fixes one layout; the vendor simulations in this workspace each use
//! their own incompatible layout, and the `muk` shim converts.

use crate::consts;
use crate::datatype::Datatype;

/// Standardized receive status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbiStatus {
    /// Rank of the message source.
    pub source: i32,
    /// Message tag.
    pub tag: i32,
    /// Error code for this operation (used by `waitall` semantics).
    pub error: i32,
    /// Number of **bytes** actually transferred. Element counts are derived
    /// via [`AbiStatus::get_count`], mirroring `MPI_Get_count`.
    pub count_bytes: u64,
}

impl AbiStatus {
    /// An empty status (used for operations with no meaningful status, like
    /// sends — mirrors `MPI_STATUS_IGNORE` semantics).
    pub fn empty() -> AbiStatus {
        AbiStatus {
            source: consts::ANY_SOURCE,
            tag: consts::ANY_TAG,
            error: 0,
            count_bytes: 0,
        }
    }

    /// Construct a status for a completed receive.
    pub fn for_receive(source: i32, tag: i32, count_bytes: usize) -> AbiStatus {
        AbiStatus {
            source,
            tag,
            error: 0,
            count_bytes: count_bytes as u64,
        }
    }

    /// Number of whole elements of `datatype` received
    /// (`MPI_Get_count`). Returns [`consts::UNDEFINED`] as `None` — i.e.
    /// `None` — if the byte count is not a whole multiple of the type size.
    pub fn get_count(&self, datatype: Datatype) -> Option<usize> {
        let sz = datatype.size() as u64;
        if self.count_bytes.is_multiple_of(sz) {
            Some((self.count_bytes / sz) as usize)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_count_divides_exactly() {
        let st = AbiStatus::for_receive(3, 9, 32);
        assert_eq!(st.get_count(Datatype::Double), Some(4));
        assert_eq!(st.get_count(Datatype::Int32), Some(8));
        assert_eq!(st.get_count(Datatype::Byte), Some(32));
    }

    #[test]
    fn get_count_rejects_partial_elements() {
        let st = AbiStatus::for_receive(0, 0, 30);
        assert_eq!(st.get_count(Datatype::Double), None);
        assert_eq!(st.get_count(Datatype::Int16), Some(15));
    }

    #[test]
    fn empty_status_is_wildcarded() {
        let st = AbiStatus::empty();
        assert_eq!(st.source, consts::ANY_SOURCE);
        assert_eq!(st.tag, consts::ANY_TAG);
        assert_eq!(st.error, 0);
        assert_eq!(st.count_bytes, 0);
    }
}
