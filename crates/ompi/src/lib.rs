//! # ompi-sim — an Open MPI-flavoured MPI implementation
//!
//! The second of the two **vendor MPI libraries** of the reproduction (its
//! sibling is `mpich-sim`). A complete, working MPI with the Open MPI
//! family's characteristic choices:
//!
//! * **Native ABI** ([`ompi_h`]): **pointer-style** handles (newtyped
//!   addresses of library-owned objects; predefined objects at fixed symbol
//!   "addresses"), Open MPI constant values (`MPI_ANY_SOURCE = -1`,
//!   `MPI_PROC_NULL = -2` — note the swap against MPICH!), Open MPI's
//!   `MPI_Status` field order.
//! * **Collective algorithms** ([`coll`]): the `coll/tuned` lineage —
//!   binary-tree and pipelined-chain broadcast, ring allreduce, linear and
//!   pairwise alltoall, with its own thresholds ([`tuning::Tuning`]) and a
//!   leaner per-message software path than the MPICH flavour.
//! * **Its own progress engine** ([`engine`]): per-communicator unexpected
//!   buckets, distinct from the MPICH flavour's single queue.
//!
//! Like a real vendor library, this crate knows nothing about the standard
//! ABI, Mukautuva, or MANA.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coll;
pub mod engine;
pub mod kernels;
pub mod objects;
pub mod ompi_h;
pub mod proc;
pub mod tuning;

pub use objects::OmpiUserFn;
pub use proc::OmpiProcess;
pub use tuning::Tuning;
