//! Fig. 3: OSU `MPI_Bcast` median latency across four configurations.
//!
//! Usage: `fig3_bcast [--quick]`.

use mpi_apps::{OsuKernel, OsuLatency};
use stool_bench::{osu_figure, paper_cluster, print_osu_figure, quick_cluster};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bench = if quick {
        OsuLatency {
            kernel: OsuKernel::Bcast,
            min_size: 1,
            max_size: 4 * 1024,
            warmup: 2,
            iters: 10,
            ckpt_window: None,
        }
    } else {
        OsuLatency::paper_config(OsuKernel::Bcast)
    };
    let repeats = if quick { 2 } else { 5 };
    let sigma = 0.06;
    let fig = if quick {
        osu_figure(
            OsuKernel::Bcast,
            |r| quick_cluster(r, sigma),
            &bench,
            repeats,
        )
    } else {
        osu_figure(
            OsuKernel::Bcast,
            |r| paper_cluster(r, sigma),
            &bench,
            repeats,
        )
    }
    .expect("fig3 run");
    print_osu_figure(&fig);
}
