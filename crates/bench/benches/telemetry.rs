//! Criterion: the flight recorder — what always-on telemetry costs.
//!
//! Two angles. The **deterministic** one: a fixed checkpointing workload
//! is replayed and the control-plane events the run emits per committed
//! epoch are counted from the recorder's per-kind counters; instrumented
//! code paths are deterministic under virtual time, so this gates hard —
//! a drop means instrumentation was lost, a rise means the control plane
//! got chatty. The **wall-clock** one: the hot ring is hammered from
//! several threads to measure nanoseconds per `emit` (machine-dependent,
//! warns only).
//!
//! As a side effect (in both `cargo bench` and `--test` smoke mode) this
//! bench emits `BENCH_telemetry.json` at the workspace root for the
//! benchgate flow.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use simnet::ClusterSpec;
use stool::programs::RingPings;
use stool::{Checkpointer, EventKind, Session, Telemetry, Vendor};

/// The kinds the coordinator/store control plane emits on a clean
/// (no-replica, no-tier) checkpointing run. Per-round counts are a pure
/// function of the virtual-time schedule.
const CONTROL_PLANE: &[EventKind] = &[
    EventKind::CkptRequest,
    EventKind::CkptScheduled,
    EventKind::CutFinalized,
    EventKind::RendezvousEnter,
    EventKind::BarrierPhase,
    EventKind::EpochCommit,
    EventKind::StoreCommit,
    EventKind::GcDecision,
];

/// Run the fixed workload and count control-plane events per committed
/// epoch. Returns `(events_per_round, rounds)`.
fn measure_session() -> (f64, u64) {
    let dir = std::env::temp_dir().join(format!("stool_bench_telemetry_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let session = Session::builder()
        .cluster(ClusterSpec::builder().nodes(2).ranks_per_node(3).build())
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .checkpoint_every(6)
        .checkpoint_store(&dir)
        .build()
        .expect("session");
    let out = session
        .launch(&RingPings {
            rounds: 48,
            payload: 64,
        })
        .expect("launch");
    assert!(out.is_completed(), "bench workload must complete");
    let snap = session.telemetry().expect("telemetry snapshot");
    assert_eq!(snap.incidents(), 0, "bench workload must run clean");
    let rounds = snap.emitted(EventKind::EpochCommit);
    assert!(rounds > 0, "bench workload must commit epochs");
    let events: u64 = CONTROL_PLANE.iter().map(|&k| snap.emitted(k)).sum();
    std::fs::remove_dir_all(&dir).ok();
    (events as f64 / rounds as f64, rounds)
}

/// Hammer the hot ring from four threads and time the emits. Returns
/// `(emit_wall_ns, events_per_sec_wall)`.
fn measure_emit_wall() -> (f64, f64) {
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 200_000;
    let tel = std::sync::Arc::new(Telemetry::new(THREADS));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let tel = tel.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    tel.emit_rank(t, EventKind::MsgMatch, i, t as u64, i, 0);
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let events = (THREADS as u64 * PER_THREAD) as f64;
    assert_eq!(tel.emitted(EventKind::MsgMatch) as f64, events);
    (
        elapsed.as_nanos() as f64 / events,
        events / elapsed.as_secs_f64(),
    )
}

fn emit_json(events_per_round: f64, rounds: u64, emit_wall_ns: f64, events_per_sec_wall: f64) {
    let json = format!(
        "{{\n  \"bench\": \"telemetry\",\n  \"events_per_round\": {events_per_round:.6},\n  \
         \"rounds\": {rounds},\n  \"emit_wall_ns\": {emit_wall_ns:.3},\n  \
         \"events_per_sec_wall\": {events_per_sec_wall:.1}\n}}\n"
    );
    // Land at the workspace root regardless of the bench CWD, so CI picks
    // one stable path up.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_telemetry.json");
    std::fs::write(path, json).expect("write BENCH_telemetry.json");
}

fn telemetry_benches(c: &mut Criterion) {
    let (events_per_round, rounds) = measure_session();
    let (emit_wall_ns, events_per_sec_wall) = measure_emit_wall();
    println!(
        "telemetry: {events_per_round:.2} control-plane events/round over {rounds} rounds, \
         hot emit {emit_wall_ns:.1} ns ({events_per_sec_wall:.0} events/s, 4 threads)"
    );
    emit_json(events_per_round, rounds, emit_wall_ns, events_per_sec_wall);

    // Wall-clock per-emit cost under criterion for the local trajectory.
    let tel = Telemetry::new(1);
    let mut i = 0u64;
    let mut group = c.benchmark_group("telemetry");
    group.bench_function("emit", |b| {
        b.iter(|| {
            i += 1;
            tel.emit_rank(0, EventKind::MsgMatch, i, i, 0, 0);
            i
        });
    });
    group.finish();
}

criterion_group!(benches, telemetry_benches);
criterion_main!(benches);
