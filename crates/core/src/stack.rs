//! Assembling the software stack under an application.
//!
//! The paper's Fig. 1, as code: depending on the session configuration, an
//! application's MPI calls flow through
//!
//! * `vendor wrap` (the "native" baseline — the app recompiled against the
//!   vendor, zero interposition cost),
//! * `libmuk.so → vendor wrap` (ABI-portable binary, Mukautuva shim), or
//! * `libmana.so → libmuk.so → vendor wrap` (the full three-legged stool),
//! * `libmana.so → vendor wrap` (the older vendor-specific "virtual id"
//!   MANA mode, kept for the ablation benchmarks).

use std::rc::Rc;

use dmtcp_sim::coordinator::RankAgent;
use dmtcp_sim::memory::Memory;
use mana_sim::ckpt::{maybe_checkpoint, CkptAction};
use mana_sim::{ManaConfig, ManaMpi};
use mpi_abi::{AbiResult, MpiAbi};
use muk::{registry, MukOverhead, MukShim, Vendor};
use simnet::RankCtx;

/// Which layers to put under the application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackSpec {
    /// The vendor MPI library at the bottom.
    pub vendor: Vendor,
    /// Interpose the Mukautuva shim (with its overhead model)?
    pub muk: Option<MukOverhead>,
    /// Interpose the MANA wrappers (with their cost model)?
    pub mana: Option<ManaConfig>,
    /// Route predefined-type reductions through the shim's canonical
    /// rank-ordered fold, making results bitwise identical across vendors
    /// (requires the shim; see `muk::fold`).
    pub deterministic_reductions: bool,
}

impl StackSpec {
    /// The native baseline: vendor only.
    pub fn native(vendor: Vendor) -> StackSpec {
        StackSpec {
            vendor,
            muk: None,
            mana: None,
            deterministic_reductions: false,
        }
    }

    /// Vendor + Mukautuva.
    pub fn with_muk(vendor: Vendor) -> StackSpec {
        StackSpec {
            vendor,
            muk: Some(MukOverhead::default()),
            mana: None,
            deterministic_reductions: false,
        }
    }

    /// The full stool: vendor + Mukautuva + MANA (the paper's
    /// "`X` + Mukautuva + MANA" configurations).
    pub fn full(vendor: Vendor) -> StackSpec {
        StackSpec {
            vendor,
            muk: Some(MukOverhead::default()),
            mana: Some(ManaConfig::default()),
            deterministic_reductions: false,
        }
    }

    /// Vendor + MANA without Mukautuva (the pre-ABI "virtual id" MANA).
    pub fn mana_only(vendor: Vendor) -> StackSpec {
        StackSpec {
            vendor,
            muk: None,
            mana: Some(ManaConfig::default()),
            deterministic_reductions: false,
        }
    }

    /// A short label for reports ("MPICH + Mukautuva + MANA").
    pub fn label(&self) -> String {
        let mut s = self.vendor.name().to_string();
        if self.muk.is_some() {
            s.push_str(" + Mukautuva");
        }
        if self.mana.is_some() {
            s.push_str(" + MANA");
        }
        s
    }

    /// Build the ABI-facing layer below MANA (wrap, optionally shimmed).
    pub fn build_lower(&self, ctx: &Rc<RankCtx>) -> Box<dyn MpiAbi> {
        match self.muk {
            Some(overhead) => {
                let mut shim = MukShim::load_with_overhead(self.vendor, ctx.clone(), overhead);
                shim.set_deterministic_reductions(self.deterministic_reductions);
                Box::new(shim)
            }
            None => registry::open_vendor(self.vendor, ctx.clone()),
        }
    }
}

/// The assembled per-rank stack.
pub enum Stack {
    /// No checkpointer: calls go straight to the (possibly shimmed) vendor.
    Plain(Box<dyn MpiAbi>),
    /// MANA interposed: checkpointable.
    Mana(Box<ManaMpi>),
}

impl Stack {
    /// Assemble a fresh stack per `spec`.
    pub fn build(spec: &StackSpec, ctx: &Rc<RankCtx>) -> Stack {
        let lower = spec.build_lower(ctx);
        match spec.mana {
            Some(config) => Stack::Mana(Box::new(ManaMpi::launch(ctx.clone(), config, lower))),
            None => Stack::Plain(lower),
        }
    }

    /// The ABI the application talks to.
    pub fn mpi(&mut self) -> &mut dyn MpiAbi {
        match self {
            Stack::Plain(b) => b.as_mut(),
            Stack::Mana(m) => m.as_mut(),
        }
    }

    /// Whether this stack can take checkpoints.
    pub fn checkpointable(&self) -> bool {
        matches!(self, Stack::Mana(_))
    }

    /// Poll/execute a checkpoint at a safe point (no-op for plain stacks).
    pub fn maybe_checkpoint(
        &mut self,
        agent: Option<&mut RankAgent>,
        memory: &Memory,
        resume_step: u64,
    ) -> AbiResult<CkptAction> {
        match (self, agent) {
            (Stack::Mana(mana), Some(agent)) => {
                maybe_checkpoint(mana.as_mut(), agent, memory, resume_step)
            }
            _ => Ok(CkptAction::None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_abi::Handle;
    use simnet::{ClusterSpec, World};

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(StackSpec::native(Vendor::Mpich).label(), "MPICH");
        assert_eq!(
            StackSpec::full(Vendor::OpenMpi).label(),
            "Open MPI + Mukautuva + MANA"
        );
        assert_eq!(StackSpec::mana_only(Vendor::Mpich).label(), "MPICH + MANA");
        assert_eq!(
            StackSpec::with_muk(Vendor::Mpich).label(),
            "MPICH + Mukautuva"
        );
    }

    #[test]
    fn all_four_stacks_run_the_same_call() {
        let spec = ClusterSpec::builder().nodes(1).ranks_per_node(2).build();
        for ss in [
            StackSpec::native(Vendor::Mpich),
            StackSpec::with_muk(Vendor::OpenMpi),
            StackSpec::full(Vendor::Mpich),
            StackSpec::mana_only(Vendor::OpenMpi),
        ] {
            let out = World::run(&spec, |ctx| {
                let mut stack = Stack::build(&ss, &ctx);
                let mpi = stack.mpi();
                let n = mpi
                    .comm_size(Handle::COMM_WORLD)
                    .map_err(|e| simnet::SimError::InvalidConfig(e.to_string()))?;
                Ok(n)
            })
            .unwrap();
            assert_eq!(out.results, vec![2, 2], "{}", ss.label());
        }
    }

    #[test]
    fn interposition_layers_add_virtual_time() {
        // Ordering pinned: native < +muk < +muk+mana on the same workload
        // and old kernel — the qualitative fact behind the paper's §5.1.
        let cluster = ClusterSpec::builder().nodes(1).ranks_per_node(2).build();
        let time_for = |ss: StackSpec| {
            World::run(&cluster, |ctx| {
                let mut stack = Stack::build(&ss, &ctx);
                let mpi = stack.mpi();
                let me = mpi
                    .comm_rank(Handle::COMM_WORLD)
                    .map_err(|e| simnet::SimError::InvalidConfig(e.to_string()))?;
                let mut buf = [0u8; 8];
                for _ in 0..50 {
                    mpi.sendrecv(
                        &[1u8; 8],
                        1 - me,
                        0,
                        &mut buf,
                        1 - me,
                        0,
                        mpi_abi::Datatype::Byte.handle(),
                        Handle::COMM_WORLD,
                    )
                    .map_err(|e| simnet::SimError::InvalidConfig(e.to_string()))?;
                }
                Ok(ctx.now().as_nanos())
            })
            .unwrap()
            .results[0]
        };
        let native = time_for(StackSpec::native(Vendor::Mpich));
        let muk = time_for(StackSpec::with_muk(Vendor::Mpich));
        let full = time_for(StackSpec::full(Vendor::Mpich));
        assert!(native < muk, "muk must add overhead: {native} vs {muk}");
        assert!(muk < full, "mana must add overhead: {muk} vs {full}");
    }
}
