//! A tour of the ABI problem (paper §4): why the same source code compiled
//! against MPICH's `mpi.h` cannot run over Open MPI's `libmpi.so`, and how
//! the standard ABI + a Mukautuva-style shim bridges the gap.
//!
//! ```text
//! cargo run --release --example abi_tour
//! ```

use mpi_stool::abi::{consts, Handle, HandleKind};
use mpi_stool::mpich::mpih;
use mpi_stool::ompi::ompi_h;
use mpi_stool::simnet::ClusterSpec;
use mpi_stool::stool::{Session, Vendor};

fn main() {
    println!("== 1. The incompatibility: the *same names* have different bits\n");
    println!(
        "{:<22} {:>18} {:>18}",
        "symbol", "MPICH flavour", "Open MPI flavour"
    );
    println!(
        "{:<22} {:>18} {:>18}",
        "MPI_COMM_WORLD",
        format!("{:#010x}", mpih::MPI_COMM_WORLD),
        format!("{:#x}", ompi_h::MPI_COMM_WORLD.0)
    );
    println!(
        "{:<22} {:>18} {:>18}",
        "MPI_DOUBLE",
        format!("{:#010x}", mpih::MPI_DOUBLE),
        format!("{:#x}", ompi_h::MPI_DOUBLE.0)
    );
    println!(
        "{:<22} {:>18} {:>18}",
        "MPI_ANY_SOURCE",
        mpih::MPI_ANY_SOURCE,
        ompi_h::MPI_ANY_SOURCE
    );
    println!(
        "{:<22} {:>18} {:>18}",
        "MPI_PROC_NULL",
        mpih::MPI_PROC_NULL,
        ompi_h::MPI_PROC_NULL
    );
    println!("\nMPICH encodes handles as 32-bit integers with kind/size bit fields;");
    println!("Open MPI hands out addresses of library-owned structs. A binary that");
    println!("baked in one set of values feeds garbage to the other library.");

    println!("\n== 2. The standard ABI: one representation, fixed forever\n");
    let w = Handle::COMM_WORLD;
    println!(
        "ABI MPI_COMM_WORLD    = {:#018x}  (kind={:?}, index={})",
        w.raw(),
        w.kind(),
        w.index()
    );
    let d = Handle::predefined(HandleKind::Datatype, 12);
    println!(
        "ABI predefined handle = {:#018x}  (kind={:?}, index={})",
        d.raw(),
        d.kind(),
        d.index()
    );
    println!("ABI MPI_ANY_SOURCE    = {}", consts::ANY_SOURCE);
    println!("ABI MPI_PROC_NULL     = {}", consts::PROC_NULL);

    println!("\n== 3. The bridge: one binary, any library\n");
    // This program is "compiled" against the standard ABI only. The shim
    // (libmuk.so) loads the right wrap library at runtime and translates.
    struct VersionProbe;
    impl mpi_stool::stool::MpiProgram for VersionProbe {
        fn name(&self) -> &'static str {
            "version-probe"
        }
        fn run(&self, app: &mut mpi_stool::stool::AppCtx<'_>) -> mpi_stool::stool::StoolResult<()> {
            let version = app.mpi().library_version();
            let size = app.pmpi().size(Handle::COMM_WORLD)?;
            let rank = app.pmpi().rank(Handle::COMM_WORLD)?;
            if rank == 0 {
                app.mem.set_u64("probe.size", size as u64);
                app.mem
                    .bytes_mut("probe.version", 0)
                    .extend_from_slice(version.as_bytes());
            }
            Ok(())
        }
    }

    let cluster = ClusterSpec::builder().nodes(1).ranks_per_node(4).build();
    for vendor in [Vendor::Mpich, Vendor::OpenMpi] {
        let session = Session::builder()
            .cluster(cluster.clone())
            .vendor(vendor)
            .build()
            .expect("session");
        let out = session.launch(&VersionProbe).expect("launch");
        let mem = &out.memories().expect("completed")[0];
        let version = String::from_utf8_lossy(mem.bytes("probe.version").unwrap()).into_owned();
        println!("same binary over {:<9} -> {}", vendor.name(), version);
    }
    println!("\nNo recompilation, no relinking: the shim translated every handle,");
    println!("constant, and status field at the boundary.");
}
