//! OSU-style latency sweep: the paper's §5.1 measurement protocol.
//!
//! For one collective (default `MPI_Alltoall`), sweep power-of-two message
//! sizes and print the average latency per call under four configurations:
//! each vendor native, and each vendor routed through Mukautuva + MANA.
//! The rightmost column is the interposition overhead — the quantity
//! Figs. 2-4 of the paper show to be large only for small messages.
//!
//! ```text
//! cargo run --release --example osu_latency -- [alltoall|bcast|allreduce]
//! ```

use mpi_stool::apps::{OsuKernel, OsuLatency};
use mpi_stool::simnet::ClusterSpec;
use mpi_stool::stool::{Checkpointer, Session, Vendor};

fn sweep(cluster: &ClusterSpec, bench: &OsuLatency, vendor: Vendor, full: bool) -> Vec<f64> {
    let mut builder = Session::builder().cluster(cluster.clone()).vendor(vendor);
    builder = if full {
        builder.checkpointer(Checkpointer::mana())
    } else {
        builder.native_abi()
    };
    let session = builder.build().expect("session");
    let out = session.launch(bench).expect("launch");
    out.memories().expect("completed")[0]
        .f64s("osu.lat_us")
        .expect("latencies recorded")
        .to_vec()
}

fn main() {
    let kernel = match std::env::args().nth(1).as_deref() {
        None | Some("alltoall") => OsuKernel::Alltoall,
        Some("bcast") => OsuKernel::Bcast,
        Some("allreduce") => OsuKernel::Allreduce,
        Some(other) => {
            eprintln!("unknown kernel {other:?}; use alltoall|bcast|allreduce");
            std::process::exit(2);
        }
    };

    // A scaled-down sweep so the example runs in seconds; the full-size
    // Figs. 2-4 reproduction lives in `cargo run -p stool-bench --bin fig2_alltoall`.
    let bench = OsuLatency {
        kernel,
        min_size: 1,
        max_size: 16 * 1024,
        warmup: 4,
        iters: 20,
        ckpt_window: None,
    };
    let cluster = ClusterSpec::builder().nodes(4).ranks_per_node(4).build();

    println!("# {}", kernel.title());
    println!(
        "# {} ranks on 4 nodes, 10 GbE, CentOS-7-era kernel",
        cluster.nranks()
    );
    println!(
        "{:>9}  {:>12} {:>12} {:>9}   {:>12} {:>12} {:>9}",
        "bytes", "mpich", "+muk+mana", "ovhd", "ompi", "+muk+mana", "ovhd"
    );

    let mpich = sweep(&cluster, &bench, Vendor::Mpich, false);
    let mpich_full = sweep(&cluster, &bench, Vendor::Mpich, true);
    let ompi = sweep(&cluster, &bench, Vendor::OpenMpi, false);
    let ompi_full = sweep(&cluster, &bench, Vendor::OpenMpi, true);

    for (i, size) in bench.sizes().iter().enumerate() {
        let ov = |native: f64, full: f64| (full - native) / native * 100.0;
        println!(
            "{:>9}  {:>10.2}us {:>10.2}us {:>8.1}%   {:>10.2}us {:>10.2}us {:>8.1}%",
            size,
            mpich[i],
            mpich_full[i],
            ov(mpich[i], mpich_full[i]),
            ompi[i],
            ompi_full[i],
            ov(ompi[i], ompi_full[i]),
        );
    }
}
