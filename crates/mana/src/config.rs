//! The MANA cost model.
//!
//! Every wrapper call crosses from the upper half to the lower half and
//! back. Each crossing must switch the thread context (the x86 `fs` base
//! register): a cheap user-space `wrfsbase` on Linux ≥ 5.9, an
//! `arch_prctl(2)` **syscall** on older kernels — the paper's Discovery
//! cluster runs CentOS 7 (kernel 3.10) and pays the syscall on every
//! crossing, which the paper names as the dominant overhead cause for
//! small messages (§5.1).

use simnet::{KernelVersion, VirtualTime};

/// Tunable costs of the MANA layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManaConfig {
    /// Wrapper bookkeeping per call (virtual-id translation, counters).
    pub wrapper_overhead: VirtualTime,
    /// One context switch via user-space FSGSBASE (kernel ≥ 5.9).
    pub switch_fsgsbase: VirtualTime,
    /// One context switch via the `arch_prctl` syscall path (old kernels).
    pub switch_syscall: VirtualTime,
    /// Collective-support bookkeeping per dissemination round: MANA's
    /// topological-sort collective algorithm maintains sequence state with
    /// extra upper↔lower crossings proportional to log₂(nranks).
    pub coll_round_overhead: VirtualTime,
    /// Modelled checkpoint-image write bandwidth (bytes/second) to the
    /// parallel filesystem.
    pub ckpt_write_bw: f64,
    /// Per-message cost of draining an in-flight message into the pool.
    pub drain_msg_overhead: VirtualTime,
    /// When `true`, image writes are asynchronous: the rank hands its
    /// image to the background store at the rendezvous and resumes, paying
    /// only [`ManaConfig::ckpt_submit_overhead`] instead of the full
    /// [`ManaConfig::image_write_time`]. Set by the session when a
    /// delta-checkpoint store is attached.
    pub async_image_writes: bool,
    /// Cost of handing an image to the background writer (queue insert +
    /// ownership transfer), charged per checkpoint when
    /// [`ManaConfig::async_image_writes`] is on.
    pub ckpt_submit_overhead: VirtualTime,
    /// Modelled size of the **static upper half** each rank image
    /// carries: program text, read-only data, allocator slack — the part
    /// of a real MANA image that never changes between epochs and, on
    /// big binaries, dominates image size. When nonzero, the checkpoint
    /// path adds a deterministic `text` section of this many bytes,
    /// marked clean via a constant generation hint, so the delta store's
    /// dirty-segment tracking can skip hashing it entirely. `0` (the
    /// default) omits the section and keeps images app-state-only.
    pub static_image_bytes: usize,
    /// Modelled upload bandwidth (bytes/second) to the delta store's
    /// remote second tier (object storage behind the parallel
    /// filesystem). A *reporting* knob, not a simulated cost: shipping
    /// happens off the ranks' critical path on a real background thread,
    /// so nothing in the virtual-time simulation consumes this value.
    /// [`ManaConfig::tier_ship_time`] turns measured shipped bytes into
    /// the implied undurable window (how long an epoch would stay
    /// GC-pinned at this bandwidth), which the store bench prints
    /// alongside the dedup-at-tier numbers.
    pub tier_ship_bw: f64,
}

impl Default for ManaConfig {
    fn default() -> Self {
        ManaConfig {
            wrapper_overhead: VirtualTime::from_nanos(150),
            switch_fsgsbase: VirtualTime::from_nanos(40),
            switch_syscall: VirtualTime::from_nanos(500),
            coll_round_overhead: VirtualTime::from_nanos(150),
            ckpt_write_bw: 1.0e9,
            drain_msg_overhead: VirtualTime::from_nanos(400),
            async_image_writes: false,
            ckpt_submit_overhead: VirtualTime::from_micros(5),
            static_image_bytes: 0,
            // Object storage is typically an order of magnitude behind
            // the parallel filesystem (1 GB/s above).
            tier_ship_bw: 2.0e8,
        }
    }
}

impl ManaConfig {
    /// Cost of one upper↔lower context switch on the given kernel.
    pub fn switch_cost(&self, kernel: KernelVersion) -> VirtualTime {
        if kernel.has_userspace_fsgsbase() {
            self.switch_fsgsbase
        } else {
            self.switch_syscall
        }
    }

    /// Cost of one full wrapper crossing (enter lower half + return).
    pub fn crossing_cost(&self, kernel: KernelVersion) -> VirtualTime {
        self.switch_cost(kernel) + self.switch_cost(kernel) + self.wrapper_overhead
    }

    /// Extra cost charged on collective calls: the topological-sort
    /// collective support keeps per-communicator sequence state, with one
    /// bookkeeping call into the lower half per dissemination round
    /// (hence one extra context switch per round on top of the fixed
    /// bookkeeping work).
    pub fn collective_extra(&self, kernel: KernelVersion, nranks: usize) -> VirtualTime {
        let rounds = usize::BITS - nranks.saturating_sub(1).leading_zeros();
        let per_round = self.coll_round_overhead + self.switch_cost(kernel);
        VirtualTime::from_nanos(per_round.as_nanos() * rounds as u64)
    }

    /// Modelled time to write `bytes` of checkpoint image.
    pub fn image_write_time(&self, bytes: usize) -> VirtualTime {
        VirtualTime::from_nanos((bytes as f64 / self.ckpt_write_bw * 1e9) as u64)
    }

    /// Implied time to ship `bytes` of sealed epoch to the remote
    /// second tier at [`ManaConfig::tier_ship_bw`] — the modelled
    /// undurable (locally GC-pinned) window the bench reports. Never
    /// charged to any rank clock; actual shipping is wall-clock
    /// background work.
    pub fn tier_ship_time(&self, bytes: usize) -> VirtualTime {
        VirtualTime::from_nanos((bytes as f64 / self.tier_ship_bw * 1e9) as u64)
    }

    /// What the checkpoint costs on the rank's critical path: the full
    /// synchronous image write, or just the hand-off to the background
    /// store when asynchronous writes are enabled.
    pub fn ckpt_critical_path_time(&self, bytes: usize) -> VirtualTime {
        if self.async_image_writes {
            self.ckpt_submit_overhead
        } else {
            self.image_write_time(bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn old_kernel_pays_syscall_cost() {
        let c = ManaConfig::default();
        let old = c.crossing_cost(KernelVersion::CENTOS7);
        let new = c.crossing_cost(KernelVersion::MODERN);
        assert!(
            old.as_nanos() >= 4 * new.as_nanos(),
            "syscall path must dominate: {old} vs {new}"
        );
        assert_eq!(
            old,
            c.switch_syscall + c.switch_syscall + c.wrapper_overhead
        );
    }

    #[test]
    fn collective_extra_scales_logarithmically() {
        let c = ManaConfig::default();
        let k = KernelVersion::CENTOS7;
        let small = c.collective_extra(k, 2);
        let mid = c.collective_extra(k, 48);
        let big = c.collective_extra(k, 64);
        assert!(small < mid);
        assert_eq!(mid, c.collective_extra(k, 33), "same ceil(log2)");
        assert_eq!(mid, big, "48 and 64 both take 6 rounds");
    }

    #[test]
    fn image_write_time_proportional() {
        let c = ManaConfig::default();
        let t1 = c.image_write_time(1_000_000);
        let t2 = c.image_write_time(2_000_000);
        assert_eq!(t2.as_nanos(), 2 * t1.as_nanos());
        // 1 MB at 1 GB/s = 1 ms.
        assert_eq!(t1, VirtualTime::from_millis(1));
    }

    #[test]
    fn tier_ship_time_proportional_and_slower_than_local_writes() {
        let c = ManaConfig::default();
        let t1 = c.tier_ship_time(1_000_000);
        let t2 = c.tier_ship_time(2_000_000);
        assert_eq!(t2.as_nanos(), 2 * t1.as_nanos());
        // The remote tier is behind the parallel filesystem: an epoch is
        // undurable (GC-pinned) for longer than its local write took.
        assert!(t1 > c.image_write_time(1_000_000));
        // 1 MB at 200 MB/s = 5 ms.
        assert_eq!(t1, VirtualTime::from_millis(5));
    }

    #[test]
    fn async_writes_decouple_cost_from_image_size() {
        let mut c = ManaConfig::default();
        assert_eq!(
            c.ckpt_critical_path_time(1_000_000),
            c.image_write_time(1_000_000)
        );
        c.async_image_writes = true;
        assert_eq!(c.ckpt_critical_path_time(1_000_000), c.ckpt_submit_overhead);
        assert_eq!(
            c.ckpt_critical_path_time(1),
            c.ckpt_critical_path_time(1_000_000_000),
            "submit cost must not scale with image size"
        );
        assert!(c.ckpt_submit_overhead < c.image_write_time(1_000_000));
    }
}
