//! The cost model for the translation layer.
//!
//! Mukautuva's runtime price is a handful of table lookups and a status
//! conversion per MPI call. These constants are charged to the rank's
//! virtual clock by [`crate::shim::MukShim`], and are part of what the
//! paper's §5.1 measures (the other part is MANA's context switches).

use simnet::VirtualTime;

/// Per-call overhead parameters for the shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MukOverhead {
    /// Fixed cost per forwarded MPI call (argument marshalling, function
    /// pointer dispatch through the wrap library).
    pub per_call: VirtualTime,
    /// Cost per dynamic-handle table lookup (predefined handles translate
    /// by constant-time arithmetic and are charged as part of `per_call`).
    pub per_dynamic_handle: VirtualTime,
    /// Cost of converting one status object between layouts.
    pub per_status: VirtualTime,
}

impl Default for MukOverhead {
    fn default() -> Self {
        MukOverhead {
            per_call: VirtualTime::from_nanos(60),
            per_dynamic_handle: VirtualTime::from_nanos(25),
            per_status: VirtualTime::from_nanos(15),
        }
    }
}

impl MukOverhead {
    /// A zero-cost model (for ablation benchmarks isolating MANA's costs).
    pub fn free() -> MukOverhead {
        MukOverhead {
            per_call: VirtualTime::ZERO,
            per_dynamic_handle: VirtualTime::ZERO,
            per_status: VirtualTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_are_sub_microsecond() {
        let o = MukOverhead::default();
        // Mukautuva's measured overhead is small; the model must keep the
        // per-call cost well under the cheapest network latency.
        assert!(o.per_call < VirtualTime::from_nanos(400));
        assert!(o.per_dynamic_handle < o.per_call);
    }

    #[test]
    fn free_model_is_zero() {
        let o = MukOverhead::free();
        assert_eq!(o.per_call, VirtualTime::ZERO);
        assert_eq!(o.per_status, VirtualTime::ZERO);
    }
}
