//! Reduction arithmetic on raw byte buffers (Open MPI flavour's own copy —
//! vendor libraries do not share code).
//!
//! All wire data is little-endian, as on the paper's x86-64 testbed.

use crate::ompi_h::{self, MpiDatatype, MpiOp};

/// The element kind a reduction operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemKind {
    /// Signed integers of width 1, 2, 4, 8.
    Int(usize),
    /// Unsigned integers of width 1, 2, 4, 8.
    Uint(usize),
    /// IEEE-754 floats of width 4 or 8.
    Float(usize),
}

impl ElemKind {
    /// Element width in bytes.
    pub fn size(self) -> usize {
        match self {
            ElemKind::Int(s) | ElemKind::Uint(s) | ElemKind::Float(s) => s,
        }
    }

    /// Kind for a predefined datatype handle.
    pub fn of_builtin(dt: MpiDatatype) -> Option<ElemKind> {
        Some(match dt {
            d if d == ompi_h::MPI_BYTE || d == ompi_h::MPI_CHAR || d == ompi_h::MPI_UINT8_T => {
                ElemKind::Uint(1)
            }
            d if d == ompi_h::MPI_INT8_T => ElemKind::Int(1),
            d if d == ompi_h::MPI_INT16_T => ElemKind::Int(2),
            d if d == ompi_h::MPI_UINT16_T => ElemKind::Uint(2),
            d if d == ompi_h::MPI_INT => ElemKind::Int(4),
            d if d == ompi_h::MPI_UINT32_T => ElemKind::Uint(4),
            d if d == ompi_h::MPI_INT64_T => ElemKind::Int(8),
            d if d == ompi_h::MPI_UINT64_T => ElemKind::Uint(8),
            d if d == ompi_h::MPI_FLOAT => ElemKind::Float(4),
            d if d == ompi_h::MPI_DOUBLE => ElemKind::Float(8),
            _ => return None,
        })
    }
}

macro_rules! combine_as {
    ($ty:ty, $acc:expr, $other:expr, $f:expr) => {{
        const W: usize = std::mem::size_of::<$ty>();
        for (a, b) in $acc.chunks_exact_mut(W).zip($other.chunks_exact(W)) {
            let x = <$ty>::from_le_bytes(a.try_into().unwrap());
            let y = <$ty>::from_le_bytes(b.try_into().unwrap());
            let f: fn($ty, $ty) -> $ty = $f;
            a.copy_from_slice(&f(x, y).to_le_bytes());
        }
    }};
}

macro_rules! int_ops {
    ($ty:ty, $op:expr, $acc:expr, $other:expr) => {
        match $op {
            o if o == ompi_h::MPI_SUM => combine_as!($ty, $acc, $other, |x, y| x.wrapping_add(y)),
            o if o == ompi_h::MPI_PROD => combine_as!($ty, $acc, $other, |x, y| x.wrapping_mul(y)),
            o if o == ompi_h::MPI_MIN => combine_as!($ty, $acc, $other, |x, y| x.min(y)),
            o if o == ompi_h::MPI_MAX => combine_as!($ty, $acc, $other, |x, y| x.max(y)),
            o if o == ompi_h::MPI_LAND => {
                combine_as!($ty, $acc, $other, |x, y| ((x != 0) && (y != 0)) as $ty)
            }
            o if o == ompi_h::MPI_LOR => {
                combine_as!($ty, $acc, $other, |x, y| ((x != 0) || (y != 0)) as $ty)
            }
            o if o == ompi_h::MPI_LXOR => {
                combine_as!($ty, $acc, $other, |x, y| ((x != 0) ^ (y != 0)) as $ty)
            }
            o if o == ompi_h::MPI_BAND => combine_as!($ty, $acc, $other, |x, y| x & y),
            o if o == ompi_h::MPI_BOR => combine_as!($ty, $acc, $other, |x, y| x | y),
            o if o == ompi_h::MPI_BXOR => combine_as!($ty, $acc, $other, |x, y| x ^ y),
            _ => return Err(ompi_h::MPI_ERR_OP),
        }
    };
}

macro_rules! float_ops {
    ($ty:ty, $op:expr, $acc:expr, $other:expr) => {
        match $op {
            o if o == ompi_h::MPI_SUM => combine_as!($ty, $acc, $other, |x, y| x + y),
            o if o == ompi_h::MPI_PROD => combine_as!($ty, $acc, $other, |x, y| x * y),
            o if o == ompi_h::MPI_MIN => combine_as!($ty, $acc, $other, |x, y| x.min(y)),
            o if o == ompi_h::MPI_MAX => combine_as!($ty, $acc, $other, |x, y| x.max(y)),
            o if o == ompi_h::MPI_LAND => {
                combine_as!($ty, $acc, $other, |x, y| ((x != 0.0) && (y != 0.0)) as u8
                    as $ty)
            }
            o if o == ompi_h::MPI_LOR => {
                combine_as!($ty, $acc, $other, |x, y| ((x != 0.0) || (y != 0.0)) as u8
                    as $ty)
            }
            o if o == ompi_h::MPI_LXOR => {
                combine_as!($ty, $acc, $other, |x, y| ((x != 0.0) ^ (y != 0.0)) as u8
                    as $ty)
            }
            _ => return Err(ompi_h::MPI_ERR_OP),
        }
    };
}

/// Element-wise `acc = op(acc, other)` for a predefined op.
pub fn combine(op: MpiOp, kind: ElemKind, acc: &mut [u8], other: &[u8]) -> ompi_h::OmpiResult<()> {
    if acc.len() != other.len() || !acc.len().is_multiple_of(kind.size()) {
        return Err(ompi_h::MPI_ERR_COUNT);
    }
    match kind {
        ElemKind::Int(1) => int_ops!(i8, op, acc, other),
        ElemKind::Int(2) => int_ops!(i16, op, acc, other),
        ElemKind::Int(4) => int_ops!(i32, op, acc, other),
        ElemKind::Int(8) => int_ops!(i64, op, acc, other),
        ElemKind::Uint(1) => int_ops!(u8, op, acc, other),
        ElemKind::Uint(2) => int_ops!(u16, op, acc, other),
        ElemKind::Uint(4) => int_ops!(u32, op, acc, other),
        ElemKind::Uint(8) => int_ops!(u64, op, acc, other),
        ElemKind::Float(4) => float_ops!(f32, op, acc, other),
        ElemKind::Float(8) => float_ops!(f64, op, acc, other),
        _ => return Err(ompi_h::MPI_ERR_TYPE),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_sum() {
        let mut acc: Vec<u8> = [1.0f64, 2.0].iter().flat_map(|x| x.to_le_bytes()).collect();
        let other: Vec<u8> = [3.0f64, 4.0].iter().flat_map(|x| x.to_le_bytes()).collect();
        combine(ompi_h::MPI_SUM, ElemKind::Float(8), &mut acc, &other).unwrap();
        assert_eq!(f64::from_le_bytes(acc[0..8].try_into().unwrap()), 4.0);
        assert_eq!(f64::from_le_bytes(acc[8..16].try_into().unwrap()), 6.0);
    }

    #[test]
    fn u64_bitwise() {
        let mut acc = 0b1100u64.to_le_bytes().to_vec();
        combine(
            ompi_h::MPI_BXOR,
            ElemKind::Uint(8),
            &mut acc,
            &0b1010u64.to_le_bytes(),
        )
        .unwrap();
        assert_eq!(u64::from_le_bytes(acc[..].try_into().unwrap()), 0b0110);
    }

    #[test]
    fn unknown_op_rejected() {
        let mut acc = vec![0u8; 8];
        let other = vec![0u8; 8];
        assert_eq!(
            combine(ompi_h::MPI_OP_NULL, ElemKind::Float(8), &mut acc, &other),
            Err(ompi_h::MPI_ERR_OP)
        );
    }

    #[test]
    fn builtin_kinds() {
        assert_eq!(
            ElemKind::of_builtin(ompi_h::MPI_DOUBLE),
            Some(ElemKind::Float(8))
        );
        assert_eq!(
            ElemKind::of_builtin(ompi_h::MPI_INT),
            Some(ElemKind::Int(4))
        );
        assert_eq!(ElemKind::of_builtin(ompi_h::MPI_DATATYPE_NULL), None);
    }
}
