//! Standardized integer constants.
//!
//! These values are part of the ABI contract. They deliberately differ from
//! both vendors' native values (MPICH uses `MPI_ANY_SOURCE = -2`,
//! `MPI_PROC_NULL = -1`; our Open MPI flavour uses `-1`/`-2` respectively),
//! so the shim **must** translate them — a translation the test suite
//! verifies in both directions.

/// Wildcard source rank for receives.
pub const ANY_SOURCE: i32 = -1;

/// Wildcard tag for receives.
pub const ANY_TAG: i32 = -2;

/// Null process: sends/receives to it complete immediately with no data.
pub const PROC_NULL: i32 = -3;

/// Root marker for intercommunicator collectives (reserved; not used by the
/// vendor simulations but part of the ABI surface).
pub const ROOT: i32 = -4;

/// "Undefined" result (e.g. `comm_split` color for ranks excluded from any
/// resulting communicator).
pub const UNDEFINED: i32 = -32766;

/// Largest tag value an ABI-compliant library must support.
pub const TAG_UB: i32 = i32::MAX / 2;

/// `comm_compare` result: identical handles.
pub const IDENT: i32 = 0;
/// `comm_compare` result: same group and ranks, different context.
pub const CONGRUENT: i32 = 1;
/// `comm_compare` result: same members, different order.
pub const SIMILAR: i32 = 2;
/// `comm_compare` result: different groups.
pub const UNEQUAL: i32 = 3;

/// Maximum length of the library version string.
pub const MAX_LIBRARY_VERSION_STRING: usize = 256;

/// Maximum length of error strings.
pub const MAX_ERROR_STRING: usize = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcards_are_distinct_and_negative() {
        let special = [ANY_SOURCE, ANY_TAG, PROC_NULL, ROOT, UNDEFINED];
        for (i, a) in special.iter().enumerate() {
            assert!(*a < 0, "special rank/tag constants must be negative");
            for b in &special[i + 1..] {
                assert_ne!(a, b, "special constants must be pairwise distinct");
            }
        }
    }

    #[test]
    fn tag_ub_leaves_room_for_internal_tags() {
        // Vendor libraries reserve tags above TAG_UB for internal protocol
        // traffic (collective fragments, drain control). Compile-time
        // facts, asserted in a const block.
        const {
            assert!(TAG_UB > 0);
            assert!(TAG_UB < i32::MAX);
        }
    }

    #[test]
    fn comparison_results_are_distinct() {
        let all = [IDENT, CONGRUENT, SIMILAR, UNEQUAL];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
