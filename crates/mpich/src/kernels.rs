//! Reduction arithmetic on raw byte buffers.
//!
//! All wire data is little-endian (the simulated cluster is x86-64, like the
//! paper's). Each vendor library carries its own copy of these kernels —
//! independent implementations, as in reality.

use crate::mpih::{self, MpiOp};

/// The element kind a reduction operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemKind {
    /// Signed integers of width 1, 2, 4, 8.
    Int(usize),
    /// Unsigned integers of width 1, 2, 4, 8.
    Uint(usize),
    /// IEEE-754 floats of width 4 or 8.
    Float(usize),
}

impl ElemKind {
    /// Element width in bytes.
    pub fn size(self) -> usize {
        match self {
            ElemKind::Int(s) | ElemKind::Uint(s) | ElemKind::Float(s) => s,
        }
    }

    /// Kind for a predefined MPICH datatype handle.
    pub fn of_builtin(dt: mpih::MpiDatatype) -> Option<ElemKind> {
        Some(match dt {
            mpih::MPI_BYTE | mpih::MPI_CHAR | mpih::MPI_UINT8_T => ElemKind::Uint(1),
            mpih::MPI_INT8_T => ElemKind::Int(1),
            mpih::MPI_INT16_T => ElemKind::Int(2),
            mpih::MPI_UINT16_T => ElemKind::Uint(2),
            mpih::MPI_INT => ElemKind::Int(4),
            mpih::MPI_UINT32_T => ElemKind::Uint(4),
            mpih::MPI_INT64_T => ElemKind::Int(8),
            mpih::MPI_UINT64_T => ElemKind::Uint(8),
            mpih::MPI_FLOAT => ElemKind::Float(4),
            mpih::MPI_DOUBLE => ElemKind::Float(8),
            _ => return None,
        })
    }
}

macro_rules! combine_as {
    ($ty:ty, $acc:expr, $other:expr, $f:expr) => {{
        const W: usize = std::mem::size_of::<$ty>();
        for (a, b) in $acc.chunks_exact_mut(W).zip($other.chunks_exact(W)) {
            let x = <$ty>::from_le_bytes(a.try_into().unwrap());
            let y = <$ty>::from_le_bytes(b.try_into().unwrap());
            let f: fn($ty, $ty) -> $ty = $f;
            a.copy_from_slice(&f(x, y).to_le_bytes());
        }
    }};
}

macro_rules! int_ops {
    ($ty:ty, $op:expr, $acc:expr, $other:expr) => {
        match $op {
            mpih::MPI_SUM => combine_as!($ty, $acc, $other, |x, y| x.wrapping_add(y)),
            mpih::MPI_PROD => combine_as!($ty, $acc, $other, |x, y| x.wrapping_mul(y)),
            mpih::MPI_MIN => combine_as!($ty, $acc, $other, |x, y| x.min(y)),
            mpih::MPI_MAX => combine_as!($ty, $acc, $other, |x, y| x.max(y)),
            mpih::MPI_LAND => {
                combine_as!($ty, $acc, $other, |x, y| ((x != 0) && (y != 0)) as $ty)
            }
            mpih::MPI_LOR => combine_as!($ty, $acc, $other, |x, y| ((x != 0) || (y != 0)) as $ty),
            mpih::MPI_LXOR => {
                combine_as!($ty, $acc, $other, |x, y| ((x != 0) ^ (y != 0)) as $ty)
            }
            mpih::MPI_BAND => combine_as!($ty, $acc, $other, |x, y| x & y),
            mpih::MPI_BOR => combine_as!($ty, $acc, $other, |x, y| x | y),
            mpih::MPI_BXOR => combine_as!($ty, $acc, $other, |x, y| x ^ y),
            _ => return Err(mpih::MPI_ERR_OP),
        }
    };
}

macro_rules! float_ops {
    ($ty:ty, $op:expr, $acc:expr, $other:expr) => {
        match $op {
            mpih::MPI_SUM => combine_as!($ty, $acc, $other, |x, y| x + y),
            mpih::MPI_PROD => combine_as!($ty, $acc, $other, |x, y| x * y),
            mpih::MPI_MIN => combine_as!($ty, $acc, $other, |x, y| x.min(y)),
            mpih::MPI_MAX => combine_as!($ty, $acc, $other, |x, y| x.max(y)),
            mpih::MPI_LAND => {
                combine_as!($ty, $acc, $other, |x, y| ((x != 0.0) && (y != 0.0)) as u8
                    as $ty)
            }
            mpih::MPI_LOR => {
                combine_as!($ty, $acc, $other, |x, y| ((x != 0.0) || (y != 0.0)) as u8
                    as $ty)
            }
            mpih::MPI_LXOR => {
                combine_as!($ty, $acc, $other, |x, y| ((x != 0.0) ^ (y != 0.0)) as u8
                    as $ty)
            }
            _ => return Err(mpih::MPI_ERR_OP),
        }
    };
}

/// Element-wise `acc = op(acc, other)` for a predefined op.
///
/// `acc` and `other` must be equal-length multiples of the element size.
pub fn combine(op: MpiOp, kind: ElemKind, acc: &mut [u8], other: &[u8]) -> mpih::MpichResult<()> {
    if acc.len() != other.len() || !acc.len().is_multiple_of(kind.size()) {
        return Err(mpih::MPI_ERR_COUNT);
    }
    match kind {
        ElemKind::Int(1) => int_ops!(i8, op, acc, other),
        ElemKind::Int(2) => int_ops!(i16, op, acc, other),
        ElemKind::Int(4) => int_ops!(i32, op, acc, other),
        ElemKind::Int(8) => int_ops!(i64, op, acc, other),
        ElemKind::Uint(1) => int_ops!(u8, op, acc, other),
        ElemKind::Uint(2) => int_ops!(u16, op, acc, other),
        ElemKind::Uint(4) => int_ops!(u32, op, acc, other),
        ElemKind::Uint(8) => int_ops!(u64, op, acc, other),
        ElemKind::Float(4) => float_ops!(f32, op, acc, other),
        ElemKind::Float(8) => float_ops!(f64, op, acc, other),
        _ => return Err(mpih::MPI_ERR_TYPE),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f64s(xs: &[f64]) -> Vec<u8> {
        xs.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    fn to_f64s(b: &[u8]) -> Vec<f64> {
        b.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn f64_sum_and_max() {
        let mut acc = f64s(&[1.0, 2.0, 3.0]);
        combine(
            mpih::MPI_SUM,
            ElemKind::Float(8),
            &mut acc,
            &f64s(&[10.0, 20.0, 30.0]),
        )
        .unwrap();
        assert_eq!(to_f64s(&acc), vec![11.0, 22.0, 33.0]);
        combine(
            mpih::MPI_MAX,
            ElemKind::Float(8),
            &mut acc,
            &f64s(&[100.0, 0.0, 100.0]),
        )
        .unwrap();
        assert_eq!(to_f64s(&acc), vec![100.0, 22.0, 100.0]);
    }

    #[test]
    fn i32_wrapping_sum_and_bitwise() {
        let mut acc = i32::MAX.to_le_bytes().to_vec();
        combine(
            mpih::MPI_SUM,
            ElemKind::Int(4),
            &mut acc,
            &1i32.to_le_bytes(),
        )
        .unwrap();
        assert_eq!(i32::from_le_bytes(acc[..].try_into().unwrap()), i32::MIN);
        let mut acc = 0b1100i32.to_le_bytes().to_vec();
        combine(
            mpih::MPI_BAND,
            ElemKind::Int(4),
            &mut acc,
            &0b1010i32.to_le_bytes(),
        )
        .unwrap();
        assert_eq!(i32::from_le_bytes(acc[..].try_into().unwrap()), 0b1000);
    }

    #[test]
    fn logical_ops_normalize_to_zero_one() {
        let mut acc = 5i32.to_le_bytes().to_vec();
        combine(
            mpih::MPI_LAND,
            ElemKind::Int(4),
            &mut acc,
            &3i32.to_le_bytes(),
        )
        .unwrap();
        assert_eq!(i32::from_le_bytes(acc[..].try_into().unwrap()), 1);
        let mut acc = 0i32.to_le_bytes().to_vec();
        combine(
            mpih::MPI_LOR,
            ElemKind::Int(4),
            &mut acc,
            &0i32.to_le_bytes(),
        )
        .unwrap();
        assert_eq!(i32::from_le_bytes(acc[..].try_into().unwrap()), 0);
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut acc = vec![0u8; 8];
        let other = vec![0u8; 16];
        assert_eq!(
            combine(mpih::MPI_SUM, ElemKind::Float(8), &mut acc, &other),
            Err(mpih::MPI_ERR_COUNT)
        );
    }

    #[test]
    fn bitwise_on_floats_rejected() {
        let mut acc = f64s(&[1.0]);
        let other = f64s(&[2.0]);
        assert_eq!(
            combine(mpih::MPI_BAND, ElemKind::Float(8), &mut acc, &other),
            Err(mpih::MPI_ERR_OP)
        );
    }

    #[test]
    fn builtin_kind_mapping() {
        assert_eq!(
            ElemKind::of_builtin(mpih::MPI_DOUBLE),
            Some(ElemKind::Float(8))
        );
        assert_eq!(ElemKind::of_builtin(mpih::MPI_INT), Some(ElemKind::Int(4)));
        assert_eq!(
            ElemKind::of_builtin(mpih::MPI_BYTE),
            Some(ElemKind::Uint(1))
        );
        assert_eq!(ElemKind::of_builtin(0x1234), None);
    }
}
