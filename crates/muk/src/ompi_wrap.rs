//! `libompi-wrap.so`: the wrap library that makes the Open MPI-flavoured
//! vendor library speak the standard ABI.
//!
//! The mirror image of [`crate::mpich_wrap`], compiled against the *other*
//! vendor's headers: pointer handles instead of integers, swapped wildcard
//! values (`ANY_SOURCE`/`PROC_NULL`), a different status layout, different
//! error code values.

use std::rc::Rc;

use bytes::Bytes;

use mpi_abi::{
    consts, AbiError, AbiResult, AbiStatus, Datatype, Handle, HandleKind, MpiAbi, ReduceOp,
    UserOpFn,
};
use ompi_sim::{ompi_h, OmpiProcess};
use simnet::RankCtx;

use crate::bimap::BiMap;

/// Translate a native Open MPI error code to a standard error class.
fn err_from_native(code: i32) -> AbiError {
    match code {
        ompi_h::MPI_ERR_BUFFER => AbiError::Buffer,
        ompi_h::MPI_ERR_COUNT => AbiError::Count,
        ompi_h::MPI_ERR_TYPE => AbiError::Datatype,
        ompi_h::MPI_ERR_TAG => AbiError::Tag,
        ompi_h::MPI_ERR_COMM => AbiError::Comm,
        ompi_h::MPI_ERR_RANK => AbiError::Rank,
        ompi_h::MPI_ERR_REQUEST => AbiError::Request,
        ompi_h::MPI_ERR_ROOT => AbiError::Root,
        ompi_h::MPI_ERR_GROUP => AbiError::Group,
        ompi_h::MPI_ERR_OP => AbiError::Op,
        ompi_h::MPI_ERR_TRUNCATE => AbiError::Truncate,
        ompi_h::MPI_ERR_ARG => AbiError::Arg,
        ompi_h::MPI_ERR_INTERN => AbiError::Intern,
        ompi_h::MPI_ERR_PROC_FAILED => AbiError::ProcFailed,
        ompi_h::MPI_ERR_SHUTDOWN => AbiError::Shutdown,
        ompi_h::MPI_ERR_FINALIZED => AbiError::Finalized,
        _ => AbiError::Other,
    }
}

fn dtype_native_of(d: Datatype) -> ompi_h::MpiDatatype {
    match d {
        Datatype::Byte => ompi_h::MPI_BYTE,
        Datatype::Char => ompi_h::MPI_CHAR,
        Datatype::Int8 => ompi_h::MPI_INT8_T,
        Datatype::Uint8 => ompi_h::MPI_UINT8_T,
        Datatype::Int16 => ompi_h::MPI_INT16_T,
        Datatype::Uint16 => ompi_h::MPI_UINT16_T,
        Datatype::Int32 => ompi_h::MPI_INT,
        Datatype::Uint32 => ompi_h::MPI_UINT32_T,
        Datatype::Int64 => ompi_h::MPI_INT64_T,
        Datatype::Uint64 => ompi_h::MPI_UINT64_T,
        Datatype::Float => ompi_h::MPI_FLOAT,
        Datatype::Double => ompi_h::MPI_DOUBLE,
    }
}

fn op_native_of(op: ReduceOp) -> ompi_h::MpiOp {
    match op {
        ReduceOp::Sum => ompi_h::MPI_SUM,
        ReduceOp::Prod => ompi_h::MPI_PROD,
        ReduceOp::Min => ompi_h::MPI_MIN,
        ReduceOp::Max => ompi_h::MPI_MAX,
        ReduceOp::Land => ompi_h::MPI_LAND,
        ReduceOp::Lor => ompi_h::MPI_LOR,
        ReduceOp::Lxor => ompi_h::MPI_LXOR,
        ReduceOp::Band => ompi_h::MPI_BAND,
        ReduceOp::Bor => ompi_h::MPI_BOR,
        ReduceOp::Bxor => ompi_h::MPI_BXOR,
    }
}

/// The Open MPI wrap library.
pub struct OmpiWrap {
    native: OmpiProcess,
    comms: BiMap<ompi_h::MpiComm>,
    dtypes: BiMap<ompi_h::MpiDatatype>,
    ops: BiMap<ompi_h::MpiOp>,
    reqs: BiMap<ompi_h::MpiRequest>,
}

impl OmpiWrap {
    /// "Load" the wrap library.
    pub fn open(ctx: Rc<RankCtx>) -> OmpiWrap {
        OmpiWrap {
            native: OmpiProcess::init(ctx),
            comms: BiMap::new(HandleKind::Comm),
            dtypes: BiMap::new(HandleKind::Datatype),
            ops: BiMap::new(HandleKind::Op),
            reqs: BiMap::new(HandleKind::Request),
        }
    }

    /// Open with explicit vendor tuning.
    pub fn open_with_tuning(ctx: Rc<RankCtx>, tuning: ompi_sim::Tuning) -> OmpiWrap {
        OmpiWrap {
            native: OmpiProcess::init_with_tuning(ctx, tuning),
            comms: BiMap::new(HandleKind::Comm),
            dtypes: BiMap::new(HandleKind::Datatype),
            ops: BiMap::new(HandleKind::Op),
            reqs: BiMap::new(HandleKind::Request),
        }
    }

    fn comm_in(&self, h: Handle) -> AbiResult<ompi_h::MpiComm> {
        match h {
            Handle::COMM_WORLD => Ok(ompi_h::MPI_COMM_WORLD),
            Handle::COMM_SELF => Ok(ompi_h::MPI_COMM_SELF),
            Handle::COMM_NULL => Err(AbiError::Comm),
            h => self.comms.native_of(h).ok_or(AbiError::Comm),
        }
    }

    fn dtype_in(&self, h: Handle) -> AbiResult<ompi_h::MpiDatatype> {
        if let Some(d) = Datatype::from_handle(h) {
            return Ok(dtype_native_of(d));
        }
        self.dtypes.native_of(h).ok_or(AbiError::Datatype)
    }

    fn op_in(&self, h: Handle) -> AbiResult<ompi_h::MpiOp> {
        if let Some(op) = ReduceOp::from_handle(h) {
            return Ok(op_native_of(op));
        }
        self.ops.native_of(h).ok_or(AbiError::Op)
    }

    fn src_in(src: i32) -> i32 {
        match src {
            consts::ANY_SOURCE => ompi_h::MPI_ANY_SOURCE,
            consts::PROC_NULL => ompi_h::MPI_PROC_NULL,
            r => r,
        }
    }

    fn dest_in(dest: i32) -> i32 {
        if dest == consts::PROC_NULL {
            ompi_h::MPI_PROC_NULL
        } else {
            dest
        }
    }

    fn tag_in(tag: i32) -> i32 {
        if tag == consts::ANY_TAG {
            ompi_h::MPI_ANY_TAG
        } else {
            tag
        }
    }

    fn status_out(st: ompi_h::MpiStatus) -> AbiStatus {
        let source = match st.mpi_source {
            ompi_h::MPI_PROC_NULL => consts::PROC_NULL,
            ompi_h::MPI_ANY_SOURCE => consts::ANY_SOURCE,
            r => r,
        };
        let tag = if st.mpi_tag == ompi_h::MPI_ANY_TAG {
            consts::ANY_TAG
        } else {
            st.mpi_tag
        };
        AbiStatus {
            source,
            tag,
            error: if st.mpi_error == ompi_h::MPI_SUCCESS {
                0
            } else {
                err_from_native(st.mpi_error).code()
            },
            count_bytes: st.count_bytes() as u64,
        }
    }

    fn lift<T>(r: Result<T, i32>) -> AbiResult<T> {
        r.map_err(err_from_native)
    }
}

impl MpiAbi for OmpiWrap {
    fn library_version(&self) -> String {
        self.native.version().to_string()
    }

    fn finalize(&mut self) -> AbiResult<()> {
        Self::lift(self.native.finalize())
    }

    fn is_finalized(&self) -> bool {
        self.native.is_finalized()
    }

    fn wtime(&mut self) -> f64 {
        self.native.wtime()
    }

    fn comm_size(&mut self, comm: Handle) -> AbiResult<i32> {
        let c = self.comm_in(comm)?;
        Self::lift(self.native.comm_size(c))
    }

    fn comm_rank(&mut self, comm: Handle) -> AbiResult<i32> {
        let c = self.comm_in(comm)?;
        Self::lift(self.native.comm_rank(c))
    }

    fn comm_translate_rank(&mut self, comm: Handle, rank: i32) -> AbiResult<i32> {
        let c = self.comm_in(comm)?;
        Self::lift(self.native.comm_translate_rank(c, rank))
    }

    fn send(
        &mut self,
        buf: &[u8],
        datatype: Handle,
        dest: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        Self::lift(self.native.send(buf, dt, Self::dest_in(dest), tag, c))
    }

    fn recv(
        &mut self,
        buf: &mut [u8],
        datatype: Handle,
        src: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<AbiStatus> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        let st = Self::lift(
            self.native
                .recv(buf, dt, Self::src_in(src), Self::tag_in(tag), c),
        )?;
        Ok(Self::status_out(st))
    }

    fn isend(
        &mut self,
        buf: &[u8],
        datatype: Handle,
        dest: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<Handle> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        let req = Self::lift(self.native.isend(buf, dt, Self::dest_in(dest), tag, c))?;
        Ok(self.reqs.intern(req))
    }

    fn irecv(
        &mut self,
        max_bytes: usize,
        datatype: Handle,
        src: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<Handle> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        let req =
            Self::lift(
                self.native
                    .irecv(max_bytes, dt, Self::src_in(src), Self::tag_in(tag), c),
            )?;
        Ok(self.reqs.intern(req))
    }

    fn wait(&mut self, request: Handle) -> AbiResult<(AbiStatus, Option<Bytes>)> {
        let native = self.reqs.remove(request).ok_or(AbiError::Request)?;
        let (st, payload) = Self::lift(self.native.wait(native))?;
        Ok((Self::status_out(st), payload))
    }

    fn test(&mut self, request: Handle) -> AbiResult<Option<(AbiStatus, Option<Bytes>)>> {
        let native = self.reqs.native_of(request).ok_or(AbiError::Request)?;
        match Self::lift(self.native.test(native))? {
            None => Ok(None),
            Some((st, payload)) => {
                self.reqs.remove(request);
                Ok(Some((Self::status_out(st), payload)))
            }
        }
    }

    fn sendrecv(
        &mut self,
        sendbuf: &[u8],
        dest: i32,
        sendtag: i32,
        recvbuf: &mut [u8],
        src: i32,
        recvtag: i32,
        datatype: Handle,
        comm: Handle,
    ) -> AbiResult<AbiStatus> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        let st = Self::lift(self.native.sendrecv(
            sendbuf,
            Self::dest_in(dest),
            sendtag,
            recvbuf,
            Self::src_in(src),
            Self::tag_in(recvtag),
            dt,
            c,
        ))?;
        Ok(Self::status_out(st))
    }

    fn probe(&mut self, src: i32, tag: i32, comm: Handle) -> AbiResult<AbiStatus> {
        let c = self.comm_in(comm)?;
        let st = Self::lift(self.native.probe(Self::src_in(src), Self::tag_in(tag), c))?;
        Ok(Self::status_out(st))
    }

    fn iprobe(&mut self, src: i32, tag: i32, comm: Handle) -> AbiResult<Option<AbiStatus>> {
        let c = self.comm_in(comm)?;
        let st = Self::lift(self.native.iprobe(Self::src_in(src), Self::tag_in(tag), c))?;
        Ok(st.map(Self::status_out))
    }

    fn barrier(&mut self, comm: Handle) -> AbiResult<()> {
        let c = self.comm_in(comm)?;
        Self::lift(self.native.barrier(c))
    }

    fn bcast(
        &mut self,
        buf: &mut [u8],
        datatype: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        Self::lift(self.native.bcast(buf, dt, root, c))
    }

    fn reduce(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        op: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, o, c) = (
            self.dtype_in(datatype)?,
            self.op_in(op)?,
            self.comm_in(comm)?,
        );
        Self::lift(self.native.reduce(sendbuf, recvbuf, dt, o, root, c))
    }

    fn allreduce(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        op: Handle,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, o, c) = (
            self.dtype_in(datatype)?,
            self.op_in(op)?,
            self.comm_in(comm)?,
        );
        Self::lift(self.native.allreduce(sendbuf, recvbuf, dt, o, c))
    }

    fn gather(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        Self::lift(self.native.gather(sendbuf, recvbuf, dt, root, c))
    }

    fn scatter(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        Self::lift(self.native.scatter(sendbuf, recvbuf, dt, root, c))
    }

    fn allgather(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        Self::lift(self.native.allgather(sendbuf, recvbuf, dt, c))
    }

    fn alltoall(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        Self::lift(self.native.alltoall(sendbuf, recvbuf, dt, c))
    }

    fn scan(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        op: Handle,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, o, c) = (
            self.dtype_in(datatype)?,
            self.op_in(op)?,
            self.comm_in(comm)?,
        );
        Self::lift(self.native.scan(sendbuf, recvbuf, dt, o, c))
    }

    fn comm_dup(&mut self, comm: Handle) -> AbiResult<Handle> {
        let c = self.comm_in(comm)?;
        let dup = Self::lift(self.native.comm_dup(c))?;
        Ok(self.comms.intern(dup))
    }

    fn comm_split(&mut self, comm: Handle, color: i32, key: i32) -> AbiResult<Handle> {
        let c = self.comm_in(comm)?;
        let color = if color == consts::UNDEFINED {
            ompi_h::MPI_UNDEFINED
        } else {
            color
        };
        let sub = Self::lift(self.native.comm_split(c, color, key))?;
        if sub == ompi_h::MPI_COMM_NULL {
            Ok(Handle::COMM_NULL)
        } else {
            Ok(self.comms.intern(sub))
        }
    }

    fn comm_free(&mut self, comm: Handle) -> AbiResult<()> {
        let native = self.comms.remove(comm).ok_or(AbiError::Comm)?;
        Self::lift(self.native.comm_free(native))
    }

    fn type_size(&mut self, datatype: Handle) -> AbiResult<usize> {
        let dt = self.dtype_in(datatype)?;
        Self::lift(self.native.type_size(dt))
    }

    fn type_contiguous(&mut self, count: i32, oldtype: Handle) -> AbiResult<Handle> {
        let old = self.dtype_in(oldtype)?;
        let new = Self::lift(self.native.type_contiguous(count, old))?;
        Ok(self.dtypes.intern(new))
    }

    fn type_commit(&mut self, datatype: Handle) -> AbiResult<()> {
        let dt = self.dtype_in(datatype)?;
        Self::lift(self.native.type_commit(dt))
    }

    fn type_free(&mut self, datatype: Handle) -> AbiResult<()> {
        let native = self.dtypes.remove(datatype).ok_or(AbiError::Datatype)?;
        Self::lift(self.native.type_free(native))
    }

    fn op_create(&mut self, function: UserOpFn, commute: bool) -> AbiResult<Handle> {
        let native = Self::lift(self.native.op_create(function, commute))?;
        Ok(self.ops.intern(native))
    }

    fn op_free(&mut self, op: Handle) -> AbiResult<()> {
        let native = self.ops.remove(op).ok_or(AbiError::Op)?;
        Self::lift(self.native.op_free(native))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_translation_is_the_swapped_pair() {
        // Standard ANY_SOURCE (−1) happens to equal Open MPI's value, while
        // PROC_NULL (−3) maps to −2; on the MPICH side the same standard
        // values map to −2/−1. The swap is exactly the hazard the paper's
        // ABI standardization removes.
        assert_eq!(OmpiWrap::src_in(consts::ANY_SOURCE), ompi_h::MPI_ANY_SOURCE);
        assert_eq!(OmpiWrap::src_in(consts::PROC_NULL), ompi_h::MPI_PROC_NULL);
        assert_eq!(OmpiWrap::src_in(3), 3);
        assert_eq!(OmpiWrap::tag_in(consts::ANY_TAG), ompi_h::MPI_ANY_TAG);
    }

    #[test]
    fn status_conversion_from_ompi_layout() {
        let native = ompi_h::MpiStatus::for_receive(ompi_h::MPI_PROC_NULL, 3, 99);
        let std = OmpiWrap::status_out(native);
        assert_eq!(std.source, consts::PROC_NULL);
        assert_eq!(std.count_bytes, 99);
    }

    #[test]
    fn error_translation() {
        assert_eq!(err_from_native(ompi_h::MPI_ERR_REQUEST), AbiError::Request);
        assert_eq!(
            err_from_native(ompi_h::MPI_ERR_PROC_FAILED),
            AbiError::ProcFailed
        );
        assert_eq!(err_from_native(-5), AbiError::Other);
    }

    #[test]
    fn dtype_table_preserves_sizes() {
        for d in Datatype::ALL {
            let native = dtype_native_of(d);
            let (_, size) = ompi_h::PREDEFINED_DATATYPES
                .iter()
                .find(|(h, _)| *h == native)
                .expect("native type exists");
            assert_eq!(*size, d.size());
        }
    }
}
