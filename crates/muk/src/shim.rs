//! `libmuk.so`: the standard-ABI front end.
//!
//! [`MukShim`] is what an ABI-compliant application (or the MANA wrappers)
//! links against. It owns a wrap library chosen at runtime via the
//! [`crate::registry`], forwards every standard-ABI call through it, and
//! charges the translation cost of the call to the rank's virtual clock —
//! a fixed per-call cost, plus a table-lookup cost for each dynamic handle
//! argument (predefined handles translate by constant-time arithmetic) and
//! a conversion cost for each status returned.

use std::rc::Rc;

use bytes::Bytes;

use mpi_abi::{AbiError, AbiResult, AbiStatus, Datatype, Handle, MpiAbi, ReduceOp, UserOpFn};
use simnet::RankCtx;

use crate::fold;
use crate::overhead::MukOverhead;
use crate::registry::{open_wrap, soname_for, Vendor};

/// The Mukautuva shim: a standard-ABI library bound to one vendor.
pub struct MukShim {
    ctx: Rc<RankCtx>,
    inner: Box<dyn MpiAbi>,
    vendor: Vendor,
    overhead: MukOverhead,
    deterministic_reductions: bool,
}

impl MukShim {
    /// Load the shim for a vendor (detect + `dlopen` the wrap library).
    pub fn load(vendor: Vendor, ctx: Rc<RankCtx>) -> MukShim {
        Self::load_with_overhead(vendor, ctx, MukOverhead::default())
    }

    /// Load with an explicit overhead model (ablations).
    pub fn load_with_overhead(vendor: Vendor, ctx: Rc<RankCtx>, overhead: MukOverhead) -> MukShim {
        let inner = open_wrap(soname_for(vendor), ctx.clone()).expect("known vendor");
        MukShim {
            ctx,
            inner,
            vendor,
            overhead,
            deterministic_reductions: false,
        }
    }

    /// Wrap an already-open wrap library (used by tests and by ablation
    /// setups that pre-configure vendor tuning).
    pub fn from_parts(
        vendor: Vendor,
        ctx: Rc<RankCtx>,
        inner: Box<dyn MpiAbi>,
        overhead: MukOverhead,
    ) -> MukShim {
        MukShim {
            ctx,
            inner,
            vendor,
            overhead,
            deterministic_reductions: false,
        }
    }

    /// Which vendor this shim instance is bound to.
    pub fn vendor(&self) -> Vendor {
        self.vendor
    }

    /// Route `MPI_Reduce`/`MPI_Allreduce`/`MPI_Scan` on predefined types
    /// and operations through a canonical rank-ordered fold (gather +
    /// left fold + redistribute) instead of the vendor's native
    /// algorithm. The result becomes bitwise identical across MPI
    /// implementations — at the cost of a less scalable algorithm — which
    /// matters when a computation is checkpointed under one vendor and
    /// restarted under another (see `crate::fold`). User-defined
    /// operations and derived datatypes still use the vendor path.
    pub fn set_deterministic_reductions(&mut self, on: bool) {
        self.deterministic_reductions = on;
    }

    /// Whether deterministic reductions are enabled.
    pub fn deterministic_reductions(&self) -> bool {
        self.deterministic_reductions
    }

    /// The (op, datatype) pair if this reduction is eligible for the
    /// canonical fold.
    fn foldable(&self, op: Handle, datatype: Handle) -> Option<(ReduceOp, Datatype)> {
        if !self.deterministic_reductions {
            return None;
        }
        Some((ReduceOp::from_handle(op)?, Datatype::from_handle(datatype)?))
    }

    /// Canonical allreduce: gather to rank 0, left-fold in rank order,
    /// broadcast the folded result.
    fn allreduce_canonical(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        op: ReduceOp,
        dt: Datatype,
        comm: Handle,
    ) -> AbiResult<()> {
        let n = self.inner.comm_size(comm)? as usize;
        let me = self.inner.comm_rank(comm)?;
        let mut gathered = vec![0u8; if me == 0 { sendbuf.len() * n } else { 0 }];
        self.inner
            .gather(sendbuf, &mut gathered, datatype, 0, comm)?;
        if me == 0 {
            fold::fold_ranks(op, dt, &gathered, n, recvbuf)?;
        }
        self.inner.bcast(recvbuf, datatype, 0, comm)?;
        Ok(())
    }

    /// Charge the translation cost of one call: fixed part plus dynamic
    /// handle lookups plus status conversions.
    fn charge(&self, handles: &[Handle], statuses: usize) {
        let dynamic = handles.iter().filter(|h| !h.is_predefined()).count() as u64;
        let cost = self
            .overhead
            .per_call
            .0
            .saturating_add(self.overhead.per_dynamic_handle.0.saturating_mul(dynamic))
            .saturating_add(self.overhead.per_status.0.saturating_mul(statuses as u64));
        self.ctx.advance(simnet::VirtualTime(cost));
    }
}

impl MpiAbi for MukShim {
    fn library_version(&self) -> String {
        format!(
            "Mukautuva 1.0 via {} [{}]",
            soname_for(self.vendor),
            self.inner.library_version()
        )
    }

    fn finalize(&mut self) -> AbiResult<()> {
        self.charge(&[], 0);
        self.inner.finalize()
    }

    fn is_finalized(&self) -> bool {
        self.inner.is_finalized()
    }

    fn wtime(&mut self) -> f64 {
        self.inner.wtime()
    }

    fn comm_size(&mut self, comm: Handle) -> AbiResult<i32> {
        self.charge(&[comm], 0);
        self.inner.comm_size(comm)
    }

    fn comm_rank(&mut self, comm: Handle) -> AbiResult<i32> {
        self.charge(&[comm], 0);
        self.inner.comm_rank(comm)
    }

    fn comm_translate_rank(&mut self, comm: Handle, rank: i32) -> AbiResult<i32> {
        self.charge(&[comm], 0);
        self.inner.comm_translate_rank(comm, rank)
    }

    fn send(
        &mut self,
        buf: &[u8],
        datatype: Handle,
        dest: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        self.charge(&[datatype, comm], 0);
        self.inner.send(buf, datatype, dest, tag, comm)
    }

    fn recv(
        &mut self,
        buf: &mut [u8],
        datatype: Handle,
        src: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<AbiStatus> {
        self.charge(&[datatype, comm], 1);
        self.inner.recv(buf, datatype, src, tag, comm)
    }

    fn isend(
        &mut self,
        buf: &[u8],
        datatype: Handle,
        dest: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<Handle> {
        self.charge(&[datatype, comm], 0);
        self.inner.isend(buf, datatype, dest, tag, comm)
    }

    fn irecv(
        &mut self,
        max_bytes: usize,
        datatype: Handle,
        src: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<Handle> {
        self.charge(&[datatype, comm], 0);
        self.inner.irecv(max_bytes, datatype, src, tag, comm)
    }

    fn wait(&mut self, request: Handle) -> AbiResult<(AbiStatus, Option<Bytes>)> {
        self.charge(&[request], 1);
        self.inner.wait(request)
    }

    fn test(&mut self, request: Handle) -> AbiResult<Option<(AbiStatus, Option<Bytes>)>> {
        self.charge(&[request], 1);
        self.inner.test(request)
    }

    fn sendrecv(
        &mut self,
        sendbuf: &[u8],
        dest: i32,
        sendtag: i32,
        recvbuf: &mut [u8],
        src: i32,
        recvtag: i32,
        datatype: Handle,
        comm: Handle,
    ) -> AbiResult<AbiStatus> {
        self.charge(&[datatype, comm], 1);
        self.inner.sendrecv(
            sendbuf, dest, sendtag, recvbuf, src, recvtag, datatype, comm,
        )
    }

    fn probe(&mut self, src: i32, tag: i32, comm: Handle) -> AbiResult<AbiStatus> {
        self.charge(&[comm], 1);
        self.inner.probe(src, tag, comm)
    }

    fn iprobe(&mut self, src: i32, tag: i32, comm: Handle) -> AbiResult<Option<AbiStatus>> {
        self.charge(&[comm], 1);
        self.inner.iprobe(src, tag, comm)
    }

    fn barrier(&mut self, comm: Handle) -> AbiResult<()> {
        self.charge(&[comm], 0);
        self.inner.barrier(comm)
    }

    fn bcast(
        &mut self,
        buf: &mut [u8],
        datatype: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        self.charge(&[datatype, comm], 0);
        self.inner.bcast(buf, datatype, root, comm)
    }

    fn reduce(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        op: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        self.charge(&[datatype, op, comm], 0);
        if let Some((rop, dt)) = self.foldable(op, datatype) {
            let n = self.inner.comm_size(comm)? as usize;
            let me = self.inner.comm_rank(comm)?;
            let mut gathered = vec![0u8; if me == root { sendbuf.len() * n } else { 0 }];
            self.inner
                .gather(sendbuf, &mut gathered, datatype, root, comm)?;
            if me == root {
                fold::fold_ranks(rop, dt, &gathered, n, recvbuf)?;
            }
            return Ok(());
        }
        self.inner
            .reduce(sendbuf, recvbuf, datatype, op, root, comm)
    }

    fn allreduce(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        op: Handle,
        comm: Handle,
    ) -> AbiResult<()> {
        self.charge(&[datatype, op, comm], 0);
        if let Some((rop, dt)) = self.foldable(op, datatype) {
            if recvbuf.len() != sendbuf.len() {
                return Err(AbiError::Count);
            }
            return self.allreduce_canonical(sendbuf, recvbuf, datatype, rop, dt, comm);
        }
        self.inner.allreduce(sendbuf, recvbuf, datatype, op, comm)
    }

    fn gather(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        self.charge(&[datatype, comm], 0);
        self.inner.gather(sendbuf, recvbuf, datatype, root, comm)
    }

    fn scatter(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        self.charge(&[datatype, comm], 0);
        self.inner.scatter(sendbuf, recvbuf, datatype, root, comm)
    }

    fn allgather(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        comm: Handle,
    ) -> AbiResult<()> {
        self.charge(&[datatype, comm], 0);
        self.inner.allgather(sendbuf, recvbuf, datatype, comm)
    }

    fn alltoall(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        comm: Handle,
    ) -> AbiResult<()> {
        self.charge(&[datatype, comm], 0);
        self.inner.alltoall(sendbuf, recvbuf, datatype, comm)
    }

    fn scan(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        op: Handle,
        comm: Handle,
    ) -> AbiResult<()> {
        self.charge(&[datatype, op, comm], 0);
        if let Some((rop, dt)) = self.foldable(op, datatype) {
            if recvbuf.len() != sendbuf.len() {
                return Err(AbiError::Count);
            }
            // Gather to rank 0, compute all rank-ordered prefixes, scatter.
            let n = self.inner.comm_size(comm)? as usize;
            let me = self.inner.comm_rank(comm)?;
            let block = sendbuf.len();
            let mut gathered = vec![0u8; if me == 0 { block * n } else { 0 }];
            self.inner
                .gather(sendbuf, &mut gathered, datatype, 0, comm)?;
            let mut prefixes = vec![0u8; if me == 0 { block * n } else { 0 }];
            if me == 0 {
                let mut acc = gathered[..block].to_vec();
                prefixes[..block].copy_from_slice(&acc);
                for r in 1..n {
                    fold::combine(rop, dt, &mut acc, &gathered[r * block..(r + 1) * block])?;
                    prefixes[r * block..(r + 1) * block].copy_from_slice(&acc);
                }
            }
            return self.inner.scatter(&prefixes, recvbuf, datatype, 0, comm);
        }
        self.inner.scan(sendbuf, recvbuf, datatype, op, comm)
    }

    fn comm_dup(&mut self, comm: Handle) -> AbiResult<Handle> {
        self.charge(&[comm], 0);
        self.inner.comm_dup(comm)
    }

    fn comm_split(&mut self, comm: Handle, color: i32, key: i32) -> AbiResult<Handle> {
        self.charge(&[comm], 0);
        self.inner.comm_split(comm, color, key)
    }

    fn comm_free(&mut self, comm: Handle) -> AbiResult<()> {
        self.charge(&[comm], 0);
        self.inner.comm_free(comm)
    }

    fn type_size(&mut self, datatype: Handle) -> AbiResult<usize> {
        self.charge(&[datatype], 0);
        self.inner.type_size(datatype)
    }

    fn type_contiguous(&mut self, count: i32, oldtype: Handle) -> AbiResult<Handle> {
        self.charge(&[oldtype], 0);
        self.inner.type_contiguous(count, oldtype)
    }

    fn type_commit(&mut self, datatype: Handle) -> AbiResult<()> {
        self.charge(&[datatype], 0);
        self.inner.type_commit(datatype)
    }

    fn type_free(&mut self, datatype: Handle) -> AbiResult<()> {
        self.charge(&[datatype], 0);
        self.inner.type_free(datatype)
    }

    fn op_create(&mut self, function: UserOpFn, commute: bool) -> AbiResult<Handle> {
        self.charge(&[], 0);
        self.inner.op_create(function, commute)
    }

    fn op_free(&mut self, op: Handle) -> AbiResult<()> {
        self.charge(&[op], 0);
        self.inner.op_free(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_abi::{consts, Datatype};
    use simnet::{ClusterSpec, World};

    fn err(e: mpi_abi::AbiError) -> simnet::SimError {
        simnet::SimError::InvalidConfig(e.to_string())
    }

    #[test]
    fn same_binary_runs_on_both_vendors() {
        // The "compiled once" property: identical application code over
        // both vendors, via the standard ABI only.
        let app = |mpi: &mut dyn MpiAbi| -> AbiResult<Vec<f64>> {
            let n = mpi.comm_size(Handle::COMM_WORLD)?;
            let me = mpi.comm_rank(Handle::COMM_WORLD)?;
            let next = (me + 1) % n;
            let prev = (me + n - 1) % n;
            mpi.send(
                &(me as f64).to_le_bytes(),
                Datatype::Double.handle(),
                next,
                1,
                Handle::COMM_WORLD,
            )?;
            let mut buf = [0u8; 8];
            let st = mpi.recv(
                &mut buf,
                Datatype::Double.handle(),
                prev,
                1,
                Handle::COMM_WORLD,
            )?;
            assert_eq!(st.source, prev);
            let got = f64::from_le_bytes(buf);
            let mut sum = vec![0u8; 8];
            mpi.allreduce(
                &(me as f64).to_le_bytes(),
                &mut sum,
                Datatype::Double.handle(),
                mpi_abi::ReduceOp::Sum.handle(),
                Handle::COMM_WORLD,
            )?;
            Ok(vec![got, f64::from_le_bytes(sum[..].try_into().unwrap())])
        };

        let spec = ClusterSpec::builder().nodes(2).ranks_per_node(2).build();
        for vendor in Vendor::ALL {
            let out = World::run(&spec, |ctx| {
                let mut shim = MukShim::load(vendor, ctx);
                app(&mut shim).map_err(err)
            })
            .unwrap()
            .results;
            // Ring neighbour value and world sum are vendor-independent.
            for (me, r) in out.iter().enumerate() {
                assert_eq!(r[0], ((me + 3) % 4) as f64, "{vendor}");
                assert_eq!(r[1], 6.0, "{vendor}");
            }
        }
    }

    #[test]
    fn version_reports_both_layers() {
        let spec = ClusterSpec::builder().nodes(1).ranks_per_node(1).build();
        World::run(&spec, |ctx| {
            let shim = MukShim::load(Vendor::OpenMpi, ctx);
            let v = shim.library_version();
            assert!(v.contains("Mukautuva"));
            assert!(v.contains("libompi-wrap.so"));
            assert!(v.contains("ompi-sim"));
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn translation_overhead_is_charged() {
        let spec = ClusterSpec::builder().nodes(1).ranks_per_node(1).build();
        World::run(&spec, |ctx| {
            let mut shim = MukShim::load(Vendor::Mpich, ctx.clone());
            let t0 = ctx.now();
            for _ in 0..100 {
                shim.comm_rank(Handle::COMM_WORLD).map_err(err)?;
            }
            let charged = ctx.now() - t0;
            let expected = MukOverhead::default().per_call.as_nanos() * 100;
            assert!(charged.as_nanos() >= expected, "{charged:?} < {expected}ns");
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn standard_wildcards_work_on_both_vendors() {
        let spec = ClusterSpec::builder().nodes(1).ranks_per_node(2).build();
        for vendor in Vendor::ALL {
            let out = World::run(&spec, |ctx| {
                let mut shim = MukShim::load(vendor, ctx.clone());
                let me = shim.comm_rank(Handle::COMM_WORLD).map_err(err)?;
                if me == 0 {
                    shim.send(b"ping", Datatype::Byte.handle(), 1, 9, Handle::COMM_WORLD)
                        .map_err(err)?;
                    Ok(0)
                } else {
                    let mut buf = [0u8; 4];
                    let st = shim
                        .recv(
                            &mut buf,
                            Datatype::Byte.handle(),
                            consts::ANY_SOURCE,
                            consts::ANY_TAG,
                            Handle::COMM_WORLD,
                        )
                        .map_err(err)?;
                    assert_eq!(st.source, 0);
                    assert_eq!(st.tag, 9);
                    Ok(1)
                }
            })
            .unwrap()
            .results;
            assert_eq!(out, vec![0, 1], "{vendor}");
        }
    }

    #[test]
    fn proc_null_translation_both_vendors() {
        let spec = ClusterSpec::builder().nodes(1).ranks_per_node(1).build();
        for vendor in Vendor::ALL {
            World::run(&spec, |ctx| {
                let mut shim = MukShim::load(vendor, ctx);
                shim.send(
                    &[1u8],
                    Datatype::Byte.handle(),
                    consts::PROC_NULL,
                    0,
                    Handle::COMM_WORLD,
                )
                .map_err(err)?;
                let mut b = [0u8; 1];
                let st = shim
                    .recv(
                        &mut b,
                        Datatype::Byte.handle(),
                        consts::PROC_NULL,
                        0,
                        Handle::COMM_WORLD,
                    )
                    .map_err(err)?;
                assert_eq!(
                    st.source,
                    consts::PROC_NULL,
                    "{vendor}: PROC_NULL must round-trip"
                );
                assert_eq!(st.count_bytes, 0);
                Ok(())
            })
            .unwrap();
        }
    }

    #[test]
    fn dynamic_objects_through_the_shim() {
        let spec = ClusterSpec::builder().nodes(1).ranks_per_node(2).build();
        for vendor in Vendor::ALL {
            World::run(&spec, |ctx| {
                let mut shim = MukShim::load(vendor, ctx);
                let dup = shim.comm_dup(Handle::COMM_WORLD).map_err(err)?;
                assert!(!dup.is_predefined());
                assert_eq!(shim.comm_size(dup).map_err(err)?, 2);
                let vec3 = shim
                    .type_contiguous(3, Datatype::Double.handle())
                    .map_err(err)?;
                assert_eq!(shim.type_size(vec3).map_err(err)?, 24);
                shim.type_commit(vec3).map_err(err)?;
                // Exchange using the derived type over the dup'd comm.
                let me = shim.comm_rank(dup).map_err(err)?;
                let other = 1 - me;
                let data: Vec<u8> = [me as f64; 3]
                    .iter()
                    .flat_map(|x| x.to_le_bytes())
                    .collect();
                let mut got = vec![0u8; 24];
                shim.sendrecv(&data, other, 0, &mut got, other, 0, vec3, dup)
                    .map_err(err)?;
                assert_eq!(
                    f64::from_le_bytes(got[0..8].try_into().unwrap()),
                    other as f64
                );
                shim.type_free(vec3).map_err(err)?;
                shim.comm_free(dup).map_err(err)?;
                assert!(shim.comm_size(dup).is_err());
                Ok(())
            })
            .unwrap();
        }
    }
}
