//! `loom::sync`: model-checked mutexes and atomics.
//!
//! Mutual exclusion is enforced by the scheduler (exactly one model
//! thread runs at a time), so the data cells here are plain
//! `UnsafeCell`s; what the types add is the *scheduling point* at every
//! visible operation and the blocked/runnable bookkeeping that lets the
//! engine detect deadlocks.

use std::cell::UnsafeCell;
use std::sync::LockResult;

use crate::rt;

/// A model-checked mutex; mirrors the `std::sync::Mutex` API subset
/// the workspace uses (`new`, `lock`, guard deref).
pub struct Mutex<T> {
    id: usize,
    cell: UnsafeCell<T>,
}

// SAFETY: the exploration scheduler runs exactly one model thread at a
// time, and `lock` blocks until the engine grants exclusive ownership,
// so the cell is never accessed concurrently.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// A new mutex registered with the current execution.
    pub fn new(value: T) -> Mutex<T> {
        let (exec, _) = rt::current();
        Mutex {
            id: exec.register_lock(),
            cell: UnsafeCell::new(value),
        }
    }

    /// Acquire (a scheduling point; blocks while another model thread
    /// holds the lock). Never poisoned: a panicking thread aborts the
    /// whole model instead.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let (exec, me) = rt::current();
        exec.lock_acquire(me, self.id);
        Ok(MutexGuard { mx: self })
    }
}

/// Guard for [`Mutex`]; releases (and reschedules) on drop.
pub struct MutexGuard<'a, T> {
    mx: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the engine granted this thread exclusive ownership.
        unsafe { &*self.mx.cell.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above; `&mut self` forbids aliased guards too.
        unsafe { &mut *self.mx.cell.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let (exec, me) = rt::current();
        if std::thread::panicking() {
            // Unwinding (assertion, deadlock, abort): release the lock
            // state but do not reschedule — scheduling can panic, and a
            // panic inside this destructor would abort the process.
            exec.lock_release_quiet(me, self.mx.id);
        } else {
            exec.lock_release(me, self.mx.id);
        }
    }
}

pub mod atomic {
    //! Model-checked atomics. Every operation is a scheduling point;
    //! all orderings behave `SeqCst` (see the crate docs).

    use std::cell::UnsafeCell;

    use crate::rt;

    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($name:ident, $ty:ty) => {
            /// Model-checked atomic; every op is a scheduling point.
            pub struct $name {
                cell: UnsafeCell<$ty>,
            }

            // SAFETY: only the token-holding model thread touches the
            // cell, and each access completes before the token moves.
            unsafe impl Send for $name {}
            unsafe impl Sync for $name {}

            impl $name {
                /// A new atomic with `value`.
                pub fn new(value: $ty) -> $name {
                    $name {
                        cell: UnsafeCell::new(value),
                    }
                }

                fn with<R>(&self, f: impl FnOnce(&mut $ty) -> R) -> R {
                    let (exec, me) = rt::current();
                    // SAFETY: exclusive by token scheduling.
                    let out = f(unsafe { &mut *self.cell.get() });
                    exec.schedule(me);
                    out
                }

                /// Atomic load (`SeqCst` regardless of `order`).
                pub fn load(&self, _order: Ordering) -> $ty {
                    self.with(|v| *v)
                }

                /// Atomic store (`SeqCst` regardless of `order`).
                pub fn store(&self, value: $ty, _order: Ordering) {
                    self.with(|v| *v = value)
                }

                /// Atomic swap, returning the previous value.
                pub fn swap(&self, value: $ty, _order: Ordering) -> $ty {
                    self.with(|v| std::mem::replace(v, value))
                }

                /// Atomic compare-exchange (`Ok(previous)` on success).
                pub fn compare_exchange(
                    &self,
                    expect: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.with(|v| {
                        if *v == expect {
                            *v = new;
                            Ok(expect)
                        } else {
                            Err(*v)
                        }
                    })
                }
            }
        };
    }

    model_atomic!(AtomicBool, bool);
    model_atomic!(AtomicUsize, usize);
    model_atomic!(AtomicU64, u64);

    macro_rules! model_atomic_arith {
        ($name:ident, $ty:ty) => {
            impl $name {
                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, delta: $ty, _order: Ordering) -> $ty {
                    self.with(|v| {
                        let prev = *v;
                        *v = prev.wrapping_add(delta);
                        prev
                    })
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, delta: $ty, _order: Ordering) -> $ty {
                    self.with(|v| {
                        let prev = *v;
                        *v = prev.wrapping_sub(delta);
                        prev
                    })
                }

                /// Atomic max, returning the previous value.
                pub fn fetch_max(&self, value: $ty, _order: Ordering) -> $ty {
                    self.with(|v| {
                        let prev = *v;
                        *v = prev.max(value);
                        prev
                    })
                }
            }
        };
    }

    model_atomic_arith!(AtomicUsize, usize);
    model_atomic_arith!(AtomicU64, u64);
}
