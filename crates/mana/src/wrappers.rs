//! `libmana.so`: the upper-half wrapper library.
//!
//! [`ManaMpi`] implements the standard ABI and interposes on every call,
//! exactly as MANA's `LD_PRELOAD`ed wrappers do (paper §4.3, Fig. 1):
//!
//! * the application only ever holds **virtual** handles; every call
//!   translates them to the current lower half's real handles;
//! * every call charges the **split-process crossing cost** — two context
//!   switches whose price depends on the kernel's FSGSBASE support;
//! * point-to-point traffic is **counted** per peer (world ranks) for the
//!   checkpoint drain protocol;
//! * receives consult the **drained-message pool** before the network, so
//!   messages caught in flight by a checkpoint are delivered after restart;
//! * object-creating calls are recorded in the **replay log** so a fresh
//!   lower half (same or different vendor) can rebuild equivalent objects.

use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;

use mpi_abi::{consts, AbiError, AbiResult, AbiStatus, Handle, HandleKind, MpiAbi, UserOpFn};
use simnet::RankCtx;

use crate::config::ManaConfig;
use crate::ops;
use crate::pool::DrainPool;
use crate::vids::{LogEntry, Recipe, VidTable};

pub(crate) enum ReqEntry {
    /// Forwarded to the lower half.
    Real {
        real: Handle,
        vcomm: Handle,
        is_recv: bool,
    },
    /// Satisfied from the drained pool at post time.
    Pooled { status: AbiStatus, payload: Bytes },
}

/// The MANA wrapper library: one instance per rank's upper half.
pub struct ManaMpi {
    pub(crate) ctx: Rc<RankCtx>,
    pub(crate) config: ManaConfig,
    pub(crate) lower: Box<dyn MpiAbi>,
    pub(crate) vids: VidTable,
    pub(crate) pool: DrainPool,
    pub(crate) sent_to: Vec<u64>,
    pub(crate) rcvd_from: Vec<u64>,
    pub(crate) reqs: HashMap<Handle, ReqEntry>,
    pub(crate) outstanding: usize,
}

impl ManaMpi {
    /// Launch the wrapper over a freshly initialized lower half.
    pub fn launch(ctx: Rc<RankCtx>, config: ManaConfig, lower: Box<dyn MpiAbi>) -> ManaMpi {
        let n = ctx.nranks();
        ManaMpi {
            ctx,
            config,
            lower,
            vids: VidTable::new(n),
            pool: DrainPool::new(),
            sent_to: vec![0; n],
            rcvd_from: vec![0; n],
            reqs: HashMap::new(),
            outstanding: 0,
        }
    }

    /// Number of incomplete nonblocking requests (checkpoints require 0).
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Number of messages currently buffered in the drained pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// The cost model in effect.
    pub fn config(&self) -> &ManaConfig {
        &self.config
    }

    /// Swap in a brand-new lower half, rebinding all virtual ids by
    /// replaying the creation log. This is the "restart under another MPI"
    /// move as a live operation (used by the migration example and the
    /// restore path alike).
    pub fn rebind_lower(&mut self, mut lower: Box<dyn MpiAbi>) -> AbiResult<()> {
        let log = self.vids.log().to_vec();
        self.vids = VidTable::replay(log, self.ctx.nranks(), lower.as_mut())?;
        self.lower = lower;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Cost accounting
    // ------------------------------------------------------------------

    /// Charge one wrapper crossing (upper → lower → upper).
    #[inline]
    fn cross(&self) {
        self.ctx.count_context_switch();
        self.ctx.count_context_switch();
        self.ctx
            .advance(self.config.crossing_cost(self.ctx.spec().kernel));
    }

    /// Charge the collective sequence-bookkeeping extra for a communicator.
    fn coll_extra(&self, vcomm: Handle) {
        let size = self
            .vids
            .comm_size_of(vcomm)
            .unwrap_or_else(|| self.ctx.nranks());
        self.ctx
            .advance(self.config.collective_extra(self.ctx.spec().kernel, size));
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn real(&self, vid: Handle) -> AbiResult<Handle> {
        self.vids.real_of(vid)
    }

    /// World rank of a communicator rank (for the drain counters).
    fn world_of(&mut self, vcomm: Handle, comm_rank: i32) -> AbiResult<usize> {
        let real = self.real(vcomm)?;
        let w = self.lower.comm_translate_rank(real, comm_rank)?;
        usize::try_from(w).map_err(|_| AbiError::Rank)
    }

    fn count_send(&mut self, vcomm: Handle, dest: i32) -> AbiResult<()> {
        if dest != consts::PROC_NULL {
            let w = self.world_of(vcomm, dest)?;
            self.sent_to[w] += 1;
        }
        Ok(())
    }

    fn count_recv_status(&mut self, vcomm: Handle, status: &AbiStatus) -> AbiResult<()> {
        if status.source >= 0 {
            let w = self.world_of(vcomm, status.source)?;
            self.rcvd_from[w] += 1;
        }
        Ok(())
    }

    fn alloc_vreq(&mut self) -> Handle {
        self.vids.alloc(HandleKind::Request)
    }
}

impl MpiAbi for ManaMpi {
    fn library_version(&self) -> String {
        format!(
            "MANA (split process, virtual ids) over [{}]",
            self.lower.library_version()
        )
    }

    fn finalize(&mut self) -> AbiResult<()> {
        self.cross();
        self.lower.finalize()
    }

    fn is_finalized(&self) -> bool {
        self.lower.is_finalized()
    }

    fn wtime(&mut self) -> f64 {
        self.cross();
        self.lower.wtime()
    }

    fn comm_size(&mut self, comm: Handle) -> AbiResult<i32> {
        self.cross();
        let real = self.real(comm)?;
        self.lower.comm_size(real)
    }

    fn comm_rank(&mut self, comm: Handle) -> AbiResult<i32> {
        self.cross();
        let real = self.real(comm)?;
        self.lower.comm_rank(real)
    }

    fn comm_translate_rank(&mut self, comm: Handle, rank: i32) -> AbiResult<i32> {
        self.cross();
        let real = self.real(comm)?;
        self.lower.comm_translate_rank(real, rank)
    }

    fn send(
        &mut self,
        buf: &[u8],
        datatype: Handle,
        dest: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        self.cross();
        self.count_send(comm, dest)?;
        let (dt, c) = (self.real(datatype)?, self.real(comm)?);
        self.lower.send(buf, dt, dest, tag, c)
    }

    fn recv(
        &mut self,
        buf: &mut [u8],
        datatype: Handle,
        src: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<AbiStatus> {
        self.cross();
        // Drained messages first: they were in flight when the checkpoint
        // was taken and must be delivered before anything newer.
        if let Some(m) = self.pool.take_match(comm, src, tag) {
            if m.payload.len() > buf.len() {
                return Err(AbiError::Truncate);
            }
            buf[..m.payload.len()].copy_from_slice(&m.payload);
            // NOT counted: the drain already counted it as received.
            return Ok(AbiStatus::for_receive(m.src, m.tag, m.payload.len()));
        }
        let (dt, c) = (self.real(datatype)?, self.real(comm)?);
        let status = self.lower.recv(buf, dt, src, tag, c)?;
        self.count_recv_status(comm, &status)?;
        Ok(status)
    }

    fn isend(
        &mut self,
        buf: &[u8],
        datatype: Handle,
        dest: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<Handle> {
        self.cross();
        self.count_send(comm, dest)?;
        let (dt, c) = (self.real(datatype)?, self.real(comm)?);
        let real = self.lower.isend(buf, dt, dest, tag, c)?;
        let vreq = self.alloc_vreq();
        self.reqs.insert(
            vreq,
            ReqEntry::Real {
                real,
                vcomm: comm,
                is_recv: false,
            },
        );
        self.outstanding += 1;
        Ok(vreq)
    }

    fn irecv(
        &mut self,
        max_bytes: usize,
        datatype: Handle,
        src: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<Handle> {
        self.cross();
        if let Some(m) = self.pool.take_match(comm, src, tag) {
            if m.payload.len() > max_bytes {
                return Err(AbiError::Truncate);
            }
            let status = AbiStatus::for_receive(m.src, m.tag, m.payload.len());
            let vreq = self.alloc_vreq();
            self.reqs.insert(
                vreq,
                ReqEntry::Pooled {
                    status,
                    payload: Bytes::from(m.payload),
                },
            );
            self.outstanding += 1;
            return Ok(vreq);
        }
        let (dt, c) = (self.real(datatype)?, self.real(comm)?);
        let real = self.lower.irecv(max_bytes, dt, src, tag, c)?;
        let vreq = self.alloc_vreq();
        self.reqs.insert(
            vreq,
            ReqEntry::Real {
                real,
                vcomm: comm,
                is_recv: true,
            },
        );
        self.outstanding += 1;
        Ok(vreq)
    }

    fn wait(&mut self, request: Handle) -> AbiResult<(AbiStatus, Option<Bytes>)> {
        self.cross();
        let entry = self.reqs.remove(&request).ok_or(AbiError::Request)?;
        self.outstanding -= 1;
        match entry {
            ReqEntry::Pooled { status, payload } => Ok((status, Some(payload))),
            ReqEntry::Real {
                real,
                vcomm,
                is_recv,
            } => {
                let (status, payload) = self.lower.wait(real)?;
                if is_recv {
                    self.count_recv_status(vcomm, &status)?;
                }
                Ok((status, payload))
            }
        }
    }

    fn test(&mut self, request: Handle) -> AbiResult<Option<(AbiStatus, Option<Bytes>)>> {
        self.cross();
        let entry = self.reqs.remove(&request).ok_or(AbiError::Request)?;
        match entry {
            ReqEntry::Pooled { status, payload } => {
                self.outstanding -= 1;
                Ok(Some((status, Some(payload))))
            }
            ReqEntry::Real {
                real,
                vcomm,
                is_recv,
            } => match self.lower.test(real)? {
                None => {
                    self.reqs.insert(
                        request,
                        ReqEntry::Real {
                            real,
                            vcomm,
                            is_recv,
                        },
                    );
                    Ok(None)
                }
                Some((status, payload)) => {
                    self.outstanding -= 1;
                    if is_recv {
                        self.count_recv_status(vcomm, &status)?;
                    }
                    Ok(Some((status, payload)))
                }
            },
        }
    }

    fn sendrecv(
        &mut self,
        sendbuf: &[u8],
        dest: i32,
        sendtag: i32,
        recvbuf: &mut [u8],
        src: i32,
        recvtag: i32,
        datatype: Handle,
        comm: Handle,
    ) -> AbiResult<AbiStatus> {
        self.cross();
        self.count_send(comm, dest)?;
        let (dt, c) = (self.real(datatype)?, self.real(comm)?);
        self.lower.send(sendbuf, dt, dest, sendtag, c)?;
        if let Some(m) = self.pool.take_match(comm, src, recvtag) {
            if m.payload.len() > recvbuf.len() {
                return Err(AbiError::Truncate);
            }
            recvbuf[..m.payload.len()].copy_from_slice(&m.payload);
            return Ok(AbiStatus::for_receive(m.src, m.tag, m.payload.len()));
        }
        let status = self.lower.recv(recvbuf, dt, src, recvtag, c)?;
        self.count_recv_status(comm, &status)?;
        Ok(status)
    }

    fn probe(&mut self, src: i32, tag: i32, comm: Handle) -> AbiResult<AbiStatus> {
        self.cross();
        if let Some(m) = self.pool.peek_match(comm, src, tag) {
            return Ok(AbiStatus::for_receive(m.src, m.tag, m.payload.len()));
        }
        let c = self.real(comm)?;
        self.lower.probe(src, tag, c)
    }

    fn iprobe(&mut self, src: i32, tag: i32, comm: Handle) -> AbiResult<Option<AbiStatus>> {
        self.cross();
        if let Some(m) = self.pool.peek_match(comm, src, tag) {
            return Ok(Some(AbiStatus::for_receive(m.src, m.tag, m.payload.len())));
        }
        let c = self.real(comm)?;
        self.lower.iprobe(src, tag, c)
    }

    fn barrier(&mut self, comm: Handle) -> AbiResult<()> {
        self.cross();
        self.coll_extra(comm);
        let c = self.real(comm)?;
        self.lower.barrier(c)
    }

    fn bcast(
        &mut self,
        buf: &mut [u8],
        datatype: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        self.cross();
        self.coll_extra(comm);
        let (dt, c) = (self.real(datatype)?, self.real(comm)?);
        self.lower.bcast(buf, dt, root, c)
    }

    fn reduce(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        op: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        self.cross();
        self.coll_extra(comm);
        let (dt, o, c) = (self.real(datatype)?, self.real(op)?, self.real(comm)?);
        self.lower.reduce(sendbuf, recvbuf, dt, o, root, c)
    }

    fn allreduce(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        op: Handle,
        comm: Handle,
    ) -> AbiResult<()> {
        self.cross();
        self.coll_extra(comm);
        let (dt, o, c) = (self.real(datatype)?, self.real(op)?, self.real(comm)?);
        self.lower.allreduce(sendbuf, recvbuf, dt, o, c)
    }

    fn gather(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        self.cross();
        self.coll_extra(comm);
        let (dt, c) = (self.real(datatype)?, self.real(comm)?);
        self.lower.gather(sendbuf, recvbuf, dt, root, c)
    }

    fn scatter(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        self.cross();
        self.coll_extra(comm);
        let (dt, c) = (self.real(datatype)?, self.real(comm)?);
        self.lower.scatter(sendbuf, recvbuf, dt, root, c)
    }

    fn allgather(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        comm: Handle,
    ) -> AbiResult<()> {
        self.cross();
        self.coll_extra(comm);
        let (dt, c) = (self.real(datatype)?, self.real(comm)?);
        self.lower.allgather(sendbuf, recvbuf, dt, c)
    }

    fn alltoall(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        comm: Handle,
    ) -> AbiResult<()> {
        self.cross();
        self.coll_extra(comm);
        let (dt, c) = (self.real(datatype)?, self.real(comm)?);
        self.lower.alltoall(sendbuf, recvbuf, dt, c)
    }

    fn scan(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        op: Handle,
        comm: Handle,
    ) -> AbiResult<()> {
        self.cross();
        self.coll_extra(comm);
        let (dt, o, c) = (self.real(datatype)?, self.real(op)?, self.real(comm)?);
        self.lower.scan(sendbuf, recvbuf, dt, o, c)
    }

    fn comm_dup(&mut self, comm: Handle) -> AbiResult<Handle> {
        self.cross();
        self.coll_extra(comm);
        let parent_real = self.real(comm)?;
        let real = self.lower.comm_dup(parent_real)?;
        let vid = self.vids.alloc(HandleKind::Comm);
        self.vids.bind(vid, real);
        let size = self.lower.comm_size(real)? as usize;
        self.vids.cache_comm_size(vid, size);
        self.vids.record(LogEntry::Create {
            vid,
            recipe: Recipe::CommDup { parent: comm },
        });
        Ok(vid)
    }

    fn comm_split(&mut self, comm: Handle, color: i32, key: i32) -> AbiResult<Handle> {
        self.cross();
        self.coll_extra(comm);
        let parent_real = self.real(comm)?;
        let real = self.lower.comm_split(parent_real, color, key)?;
        if real == Handle::COMM_NULL {
            self.vids.record(LogEntry::Create {
                vid: Handle::COMM_NULL,
                recipe: Recipe::CommSplit {
                    parent: comm,
                    color,
                    key,
                },
            });
            return Ok(Handle::COMM_NULL);
        }
        let vid = self.vids.alloc(HandleKind::Comm);
        self.vids.bind(vid, real);
        let size = self.lower.comm_size(real)? as usize;
        self.vids.cache_comm_size(vid, size);
        self.vids.record(LogEntry::Create {
            vid,
            recipe: Recipe::CommSplit {
                parent: comm,
                color,
                key,
            },
        });
        Ok(vid)
    }

    fn comm_free(&mut self, comm: Handle) -> AbiResult<()> {
        self.cross();
        let real = self.vids.unbind(comm).ok_or(AbiError::Comm)?;
        self.vids.record(LogEntry::Free { vid: comm });
        self.lower.comm_free(real)
    }

    fn type_size(&mut self, datatype: Handle) -> AbiResult<usize> {
        self.cross();
        let dt = self.real(datatype)?;
        self.lower.type_size(dt)
    }

    fn type_contiguous(&mut self, count: i32, oldtype: Handle) -> AbiResult<Handle> {
        self.cross();
        let old_real = self.real(oldtype)?;
        let real = self.lower.type_contiguous(count, old_real)?;
        let vid = self.vids.alloc(HandleKind::Datatype);
        self.vids.bind(vid, real);
        self.vids.record(LogEntry::Create {
            vid,
            recipe: Recipe::TypeContiguous {
                count,
                base: oldtype,
            },
        });
        Ok(vid)
    }

    fn type_commit(&mut self, datatype: Handle) -> AbiResult<()> {
        self.cross();
        if datatype.is_predefined() {
            return Ok(());
        }
        let real = self.real(datatype)?;
        self.vids.record(LogEntry::Commit { vid: datatype });
        self.lower.type_commit(real)
    }

    fn type_free(&mut self, datatype: Handle) -> AbiResult<()> {
        self.cross();
        let real = self.vids.unbind(datatype).ok_or(AbiError::Datatype)?;
        self.vids.record(LogEntry::Free { vid: datatype });
        self.lower.type_free(real)
    }

    fn op_create(&mut self, function: UserOpFn, commute: bool) -> AbiResult<Handle> {
        self.cross();
        // Transparent restart needs to re-resolve the function; require it
        // to be registered (the analogue of living at a known symbol).
        let name = ops::name_of(function).ok_or(AbiError::Unsupported)?;
        let real = self.lower.op_create(function, commute)?;
        let vid = self.vids.alloc(HandleKind::Op);
        self.vids.bind(vid, real);
        self.vids.record(LogEntry::Create {
            vid,
            recipe: Recipe::OpUser { name, commute },
        });
        Ok(vid)
    }

    fn op_free(&mut self, op: Handle) -> AbiResult<()> {
        self.cross();
        let real = self.vids.unbind(op).ok_or(AbiError::Op)?;
        self.vids.record(LogEntry::Free { vid: op });
        self.lower.op_free(real)
    }
}
