//! Fig. 4: OSU `MPI_Allreduce` median latency across four configurations.
//!
//! The paper notes that with jitter, the full stack occasionally
//! *outperforms* native within the error bars — the harness's seeded noise
//! reproduces that.
//!
//! Usage: `fig4_allreduce [--quick]`.

use mpi_apps::{OsuKernel, OsuLatency};
use stool_bench::{osu_figure, paper_cluster, print_osu_figure, quick_cluster};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bench = if quick {
        OsuLatency {
            kernel: OsuKernel::Allreduce,
            min_size: 8,
            max_size: 4 * 1024,
            warmup: 2,
            iters: 10,
            ckpt_window: None,
        }
    } else {
        OsuLatency {
            min_size: 8,
            ..OsuLatency::paper_config(OsuKernel::Allreduce)
        }
    };
    let repeats = if quick { 2 } else { 5 };
    // Higher jitter than Figs. 2-3: the paper remarks on the larger
    // standard deviation in the allreduce results.
    let sigma = 0.10;
    let fig = if quick {
        osu_figure(
            OsuKernel::Allreduce,
            |r| quick_cluster(r, sigma),
            &bench,
            repeats,
        )
    } else {
        osu_figure(
            OsuKernel::Allreduce,
            |r| paper_cluster(r, sigma),
            &bench,
            repeats,
        )
    }
    .expect("fig4 run");
    print_osu_figure(&fig);
}
