//! # mana-sim — MANA-like MPI-agnostic transparent checkpointing
//!
//! MANA (MPI-Agnostic Network-Agnostic checkpointing) runs MPI applications
//! as **split processes**: the *upper half* holds the application and the
//! `libmana.so` wrappers; the *lower half* holds the MPI library and all
//! network state. Checkpoints save only upper-half memory plus *virtual
//! ids* for MPI objects; on restart a **fresh lower half** is launched —
//! with this work, possibly a *different MPI implementation*, reached
//! through the single Mukautuva interface — and the virtual ids are
//! rebound by replaying the object-creation log.
//!
//! The pieces, mapped to the paper's §4.3 and Fig. 1:
//!
//! * [`wrappers::ManaMpi`] — `libmana.so`: interposes on every standard-ABI
//!   call, translating the application's *virtual* handles to the current
//!   lower half's real handles, counting point-to-point traffic for the
//!   drain protocol, and charging the split-process crossing cost;
//! * [`config::ManaConfig`] — the cost model, including the FSGSBASE
//!   register story: on kernels ≥ 5.9 the upper↔lower context switch is a
//!   cheap user-space register write; on the paper's CentOS 7 it needs a
//!   syscall, which the paper identifies as the main overhead source;
//! * [`vids`] — virtual ids and the creation replay log;
//! * [`ops`] — the named registry for user-defined reduction functions
//!   (the stand-in for function pointers surviving via the restored
//!   address space in real MANA);
//! * [`pool`] — the drained in-flight message pool: messages caught
//!   mid-flight at checkpoint time are buffered in upper-half memory and
//!   replayed to matching receives after restart;
//! * [`ckpt`] — checkpoint execution: quiesce → counter exchange → drain →
//!   image build, and the restart path that rebinds to a new vendor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ckpt;
pub mod config;
pub mod ops;
pub mod pool;
pub mod vids;
pub mod wrappers;

pub use ckpt::CkptAction;
pub use config::ManaConfig;
pub use wrappers::ManaMpi;
