//! Ablation: which interposition layer costs what.
//!
//! Runs the same OSU alltoall under: native, +Mukautuva, +MANA (the old
//! vendor-specific virtual-id mode), and +Mukautuva+MANA — splitting the
//! gap that Figs. 2–4 show as a single line pair.
//!
//! Usage: `abl_layers [--quick]`.

use mpi_apps::{OsuKernel, OsuLatency};
use simnet::ClusterSpec;
use stool::{Checkpointer, Session, Vendor};

fn run(bench: &OsuLatency, cluster: &ClusterSpec, muk: bool, mana: bool) -> Vec<f64> {
    let mut b = Session::builder()
        .cluster(cluster.clone())
        .vendor(Vendor::Mpich);
    if !muk {
        b = b.native_abi();
    }
    if mana {
        b = b.checkpointer(Checkpointer::mana());
    }
    let session = b.build().expect("session");
    let out = session.launch(bench).expect("run");
    out.memories().expect("completed")[0]
        .f64s("osu.lat_us")
        .expect("results")
        .to_vec()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bench = OsuLatency {
        kernel: OsuKernel::Alltoall,
        min_size: 1,
        max_size: if quick { 4 * 1024 } else { 64 * 1024 },
        warmup: 2,
        iters: if quick { 10 } else { 50 },
        ckpt_window: None,
    };
    let cluster = if quick {
        ClusterSpec::builder().nodes(2).ranks_per_node(4).build()
    } else {
        ClusterSpec::discovery()
    };
    let native = run(&bench, &cluster, false, false);
    let muk = run(&bench, &cluster, true, false);
    let mana = run(&bench, &cluster, false, true);
    let full = run(&bench, &cluster, true, true);
    println!("# Ablation: per-layer interposition cost (MPICH, OSU alltoall)");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>14}",
        "Size(B)", "native(us)", "+muk(us)", "+mana(us)", "+muk+mana(us)"
    );
    for (i, size) in bench.sizes().iter().enumerate() {
        println!(
            "{:>10} {:>12.2} {:>12.2} {:>12.2} {:>14.2}",
            size, native[i], muk[i], mana[i], full[i]
        );
    }
    println!(
        "# expected: muk adds ~0.1us/call; mana dominates (2 syscall switches/call on CentOS 7)"
    );
}
