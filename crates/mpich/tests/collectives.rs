//! Correctness of every MPICH-flavour collective algorithm against naive
//! references, across communicator sizes (including non-powers-of-two, which
//! exercise the fold/unfold paths) and across the algorithm switchover
//! thresholds (forced via custom tuning).

use mpich_sim::{mpih, MpichProcess, Tuning};
use simnet::{ClusterSpec, World};

/// Tuning that forces the *large-message* algorithm everywhere.
fn force_large() -> Tuning {
    Tuning {
        alltoall_bruck_max: 0,
        alltoall_pairwise_min: 1,
        bcast_binomial_max: 0,
        allreduce_recdbl_max: 0,
        allgather_bruck_max: 0,
        ..Tuning::default()
    }
}

/// Tuning that forces the *small-message* algorithm everywhere.
fn force_small() -> Tuning {
    Tuning {
        alltoall_bruck_max: usize::MAX,
        alltoall_pairwise_min: usize::MAX,
        bcast_binomial_max: usize::MAX,
        allreduce_recdbl_max: usize::MAX,
        allgather_bruck_max: usize::MAX,
        ..Tuning::default()
    }
}

/// The mid alltoall path (posted nonblocking).
fn force_mid_alltoall() -> Tuning {
    Tuning {
        alltoall_bruck_max: 0,
        alltoall_pairwise_min: usize::MAX,
        ..Tuning::default()
    }
}

fn run<R: Send>(
    nranks: usize,
    tuning: Tuning,
    f: impl Fn(&mut MpichProcess) -> Result<R, i32> + Sync,
) -> Vec<R> {
    // Spread over two "nodes" so inter- and intra-node paths both run.
    let rpn = nranks.div_ceil(2).max(1);
    let nodes = nranks.div_ceil(rpn);
    let spec = ClusterSpec::builder()
        .nodes(nodes)
        .ranks_per_node(rpn)
        .build();
    // The spec may round the world up; restrict by splitting off exactly
    // nranks via a subcommunicator when needed.
    let world_n = spec.nranks();
    World::run(&spec, |ctx| {
        let mut p = MpichProcess::init_with_tuning(ctx, tuning);
        let me = p.comm_rank(mpih::MPI_COMM_WORLD).unwrap();
        let color = if (me as usize) < nranks {
            0
        } else {
            mpih::MPI_UNDEFINED
        };
        let sub = p.comm_split(mpih::MPI_COMM_WORLD, color, me).unwrap();
        if sub == mpih::MPI_COMM_NULL {
            return Ok(None);
        }
        let out = f_with_comm(&f, &mut p, sub)
            .map_err(|code| simnet::SimError::InvalidConfig(format!("native error {code}")))?;
        Ok(Some(out))
    })
    .unwrap()
    .results
    .into_iter()
    .flatten()
    .take(world_n)
    .collect()
}

/// Adapter: tests are written against "the communicator" abstractly.
fn f_with_comm<R>(
    f: &(impl Fn(&mut MpichProcess) -> Result<R, i32> + Sync),
    p: &mut MpichProcess,
    comm: i32,
) -> Result<R, i32> {
    COMM.with(|c| c.set(comm));
    f(p)
}

thread_local! {
    static COMM: std::cell::Cell<i32> = const { std::cell::Cell::new(mpih::MPI_COMM_WORLD) };
}

fn comm() -> i32 {
    COMM.with(|c| c.get())
}

fn f64s(xs: &[f64]) -> Vec<u8> {
    xs.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn to_f64s(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

const SIZES: &[usize] = &[2, 3, 4, 5, 7, 8, 12];

#[test]
fn barrier_completes_at_all_sizes() {
    for &n in SIZES {
        let out = run(n, Tuning::default(), |p| {
            p.barrier(comm())?;
            p.barrier(comm())?;
            Ok(true)
        });
        assert_eq!(out.len(), n, "n={n}");
    }
}

#[test]
fn bcast_both_algorithms_all_roots() {
    for tuning in [force_small(), force_large()] {
        for &n in SIZES {
            let out = run(n, tuning, |p| {
                let me = p.comm_rank(comm())?;
                let n = p.comm_size(comm())? as usize;
                let mut all_ok = true;
                for root in 0..n as i32 {
                    // 10 elements so large-path chunking has remainders.
                    let truth: Vec<f64> =
                        (0..10).map(|i| (root as f64) * 100.0 + i as f64).collect();
                    let mut buf = if me == root {
                        f64s(&truth)
                    } else {
                        vec![0u8; 80]
                    };
                    p.bcast(&mut buf, mpih::MPI_DOUBLE, root, comm())?;
                    all_ok &= to_f64s(&buf) == truth;
                }
                Ok(all_ok)
            });
            assert!(out.iter().all(|&ok| ok), "bcast n={n}");
        }
    }
}

#[test]
fn reduce_sum_all_roots() {
    for &n in SIZES {
        let out = run(n, Tuning::default(), |p| {
            let me = p.comm_rank(comm())?;
            let size = p.comm_size(comm())? as usize;
            let mut ok = true;
            for root in 0..size as i32 {
                let mine: Vec<f64> = (0..6).map(|i| (me as f64) + i as f64 * 0.5).collect();
                let mut out = if me == root {
                    vec![0u8; 48]
                } else {
                    Vec::new()
                };
                p.reduce(
                    &f64s(&mine),
                    &mut out,
                    mpih::MPI_DOUBLE,
                    mpih::MPI_SUM,
                    root,
                    comm(),
                )?;
                if me == root {
                    let expect: Vec<f64> = (0..6)
                        .map(|i| (0..size).map(|r| r as f64 + i as f64 * 0.5).sum::<f64>())
                        .collect();
                    ok &= to_f64s(&out)
                        .iter()
                        .zip(&expect)
                        .all(|(a, b)| (a - b).abs() < 1e-9);
                }
            }
            Ok(ok)
        });
        assert!(out.iter().all(|&ok| ok), "reduce n={n}");
    }
}

#[test]
fn allreduce_recdbl_and_rabenseifner_match_reference() {
    for tuning in [force_small(), force_large()] {
        for &n in SIZES {
            let out = run(n, tuning, |p| {
                let me = p.comm_rank(comm())?;
                let size = p.comm_size(comm())? as usize;
                // 13 elements: not divisible by most rank counts, so the
                // Rabenseifner chunking gets ragged chunks.
                let mine: Vec<f64> = (0..13).map(|i| (me + 1) as f64 * (i + 1) as f64).collect();
                let mut out = vec![0u8; 13 * 8];
                p.allreduce(
                    &f64s(&mine),
                    &mut out,
                    mpih::MPI_DOUBLE,
                    mpih::MPI_SUM,
                    comm(),
                )?;
                let expect: Vec<f64> = (0..13)
                    .map(|i| (0..size).map(|r| (r + 1) as f64 * (i + 1) as f64).sum())
                    .collect();
                Ok(to_f64s(&out)
                    .iter()
                    .zip(&expect)
                    .all(|(a, b)| (a - b).abs() < 1e-9))
            });
            assert!(out.iter().all(|&ok| ok), "allreduce n={n}");
        }
    }
}

#[test]
fn allreduce_min_max_int() {
    for &n in SIZES {
        let out = run(n, Tuning::default(), |p| {
            let me = p.comm_rank(comm())?;
            let size = p.comm_size(comm())?;
            let mine = [me * 3, -me, 7i32];
            let bytes: Vec<u8> = mine.iter().flat_map(|x| x.to_le_bytes()).collect();
            let mut mx = vec![0u8; 12];
            p.allreduce(&bytes, &mut mx, mpih::MPI_INT, mpih::MPI_MAX, comm())?;
            let mut mn = vec![0u8; 12];
            p.allreduce(&bytes, &mut mn, mpih::MPI_INT, mpih::MPI_MIN, comm())?;
            let rd =
                |b: &[u8], i: usize| i32::from_le_bytes(b[i * 4..(i + 1) * 4].try_into().unwrap());
            Ok(rd(&mx, 0) == (size - 1) * 3
                && rd(&mx, 1) == 0
                && rd(&mx, 2) == 7
                && rd(&mn, 0) == 0
                && rd(&mn, 1) == -(size - 1)
                && rd(&mn, 2) == 7)
        });
        assert!(out.iter().all(|&ok| ok), "minmax n={n}");
    }
}

#[test]
fn gather_binomial_all_roots() {
    for &n in SIZES {
        let out = run(n, Tuning::default(), |p| {
            let me = p.comm_rank(comm())?;
            let size = p.comm_size(comm())? as usize;
            let mut ok = true;
            for root in 0..size as i32 {
                let mine = [me as f64, me as f64 * 10.0];
                let mut out = if me == root {
                    vec![0u8; 16 * size]
                } else {
                    Vec::new()
                };
                p.gather(&f64s(&mine), &mut out, mpih::MPI_DOUBLE, root, comm())?;
                if me == root {
                    let got = to_f64s(&out);
                    ok &= (0..size)
                        .all(|r| got[2 * r] == r as f64 && got[2 * r + 1] == r as f64 * 10.0);
                }
            }
            Ok(ok)
        });
        assert!(out.iter().all(|&ok| ok), "gather n={n}");
    }
}

#[test]
fn scatter_binomial_all_roots() {
    for &n in SIZES {
        let out = run(n, Tuning::default(), |p| {
            let me = p.comm_rank(comm())?;
            let size = p.comm_size(comm())? as usize;
            let mut ok = true;
            for root in 0..size as i32 {
                let all: Vec<f64> = (0..2 * size)
                    .map(|i| i as f64 + root as f64 * 0.25)
                    .collect();
                let send = if me == root { f64s(&all) } else { Vec::new() };
                let mut recv = vec![0u8; 16];
                p.scatter(&send, &mut recv, mpih::MPI_DOUBLE, root, comm())?;
                let got = to_f64s(&recv);
                ok &= got[0] == all_for(me as usize, root)[0]
                    && got[1] == all_for(me as usize, root)[1];
                fn all_for(me: usize, root: i32) -> [f64; 2] {
                    [
                        2.0 * me as f64 + root as f64 * 0.25,
                        2.0 * me as f64 + 1.0 + root as f64 * 0.25,
                    ]
                }
            }
            Ok(ok)
        });
        assert!(out.iter().all(|&ok| ok), "scatter n={n}");
    }
}

#[test]
fn allgather_bruck_and_ring() {
    for tuning in [force_small(), force_large()] {
        for &n in SIZES {
            let out = run(n, tuning, |p| {
                let me = p.comm_rank(comm())?;
                let size = p.comm_size(comm())? as usize;
                let mine = [me as f64 * 2.0, me as f64 * 2.0 + 1.0];
                let mut out = vec![0u8; 16 * size];
                p.allgather(&f64s(&mine), &mut out, mpih::MPI_DOUBLE, comm())?;
                let got = to_f64s(&out);
                Ok((0..size).all(|r| {
                    got[2 * r] == r as f64 * 2.0 && got[2 * r + 1] == r as f64 * 2.0 + 1.0
                }))
            });
            assert!(out.iter().all(|&ok| ok), "allgather n={n}");
        }
    }
}

#[test]
fn alltoall_all_three_algorithms() {
    for tuning in [force_small(), force_mid_alltoall(), force_large()] {
        for &n in SIZES {
            let out =
                run(n, tuning, |p| {
                    let me = p.comm_rank(comm())? as usize;
                    let size = p.comm_size(comm())? as usize;
                    // Block i carries the pair (me, i) so mismatches localize.
                    let send: Vec<f64> = (0..size).flat_map(|i| [me as f64, i as f64]).collect();
                    let mut recv = vec![0u8; 16 * size];
                    p.alltoall(&f64s(&send), &mut recv, mpih::MPI_DOUBLE, comm())?;
                    let got = to_f64s(&recv);
                    Ok((0..size)
                        .all(|src| got[2 * src] == src as f64 && got[2 * src + 1] == me as f64))
                });
            assert!(out.iter().all(|&ok| ok), "alltoall n={n}");
        }
    }
}

#[test]
fn scan_inclusive_prefix() {
    for &n in SIZES {
        let out = run(n, Tuning::default(), |p| {
            let me = p.comm_rank(comm())?;
            let mine = [(me + 1) as f64, 1.0];
            let mut out = vec![0u8; 16];
            p.scan(
                &f64s(&mine),
                &mut out,
                mpih::MPI_DOUBLE,
                mpih::MPI_SUM,
                comm(),
            )?;
            let got = to_f64s(&out);
            let expect0: f64 = (1..=me + 1).map(|r| r as f64).sum();
            Ok(got[0] == expect0 && got[1] == (me + 1) as f64)
        });
        assert!(out.iter().all(|&ok| ok), "scan n={n}");
    }
}

#[test]
fn user_defined_op_in_allreduce() {
    fn xor_combine(invec: &[u8], inoutvec: &mut [u8], _elem: usize) {
        for (a, b) in invec.iter().zip(inoutvec.iter_mut()) {
            *b ^= a;
        }
    }
    let out = run(4, Tuning::default(), |p| {
        let me = p.comm_rank(comm())?;
        let op = p.op_create(xor_combine, true)?;
        let mine = [(1u32 << me).to_le_bytes()].concat();
        let mut out = vec![0u8; 4];
        p.allreduce(&mine, &mut out, mpih::MPI_UINT32_T, op, comm())?;
        p.op_free(op)?;
        Ok(u32::from_le_bytes(out[..].try_into().unwrap()))
    });
    assert_eq!(out, vec![0b1111; 4]);
}

#[test]
fn collectives_advance_virtual_time_consistently() {
    // Alltoall must cost more virtual time than barrier at the same size,
    // and large payloads more than small ones.
    let spec = ClusterSpec::builder().nodes(2).ranks_per_node(4).build();
    let outcome = World::run(&spec, |ctx| {
        let mut p = MpichProcess::init(ctx.clone());
        let n = p.comm_size(mpih::MPI_COMM_WORLD).unwrap() as usize;
        let t0 = ctx.now();
        p.barrier(mpih::MPI_COMM_WORLD).unwrap();
        let t1 = ctx.now();
        let send = vec![1u8; n * 8];
        let mut recv = vec![0u8; n * 8];
        p.alltoall(&send, &mut recv, mpih::MPI_BYTE, mpih::MPI_COMM_WORLD)
            .unwrap();
        let t2 = ctx.now();
        let send = vec![1u8; n * 65536];
        let mut recv = vec![0u8; n * 65536];
        p.alltoall(&send, &mut recv, mpih::MPI_BYTE, mpih::MPI_COMM_WORLD)
            .unwrap();
        let t3 = ctx.now();
        Ok((
            (t1 - t0).as_nanos(),
            (t2 - t1).as_nanos(),
            (t3 - t2).as_nanos(),
        ))
    })
    .unwrap();
    for &(bar, small, large) in &outcome.results {
        assert!(bar > 0);
        assert!(small > 0);
        assert!(
            large > small,
            "large alltoall ({large}) must cost more than small ({small})"
        );
    }
}

#[test]
fn deterministic_virtual_time_across_runs() {
    let spec = ClusterSpec::builder().nodes(2).ranks_per_node(3).build();
    let run_once = || {
        World::run(&spec, |ctx| {
            let mut p = MpichProcess::init(ctx.clone());
            let n = p.comm_size(mpih::MPI_COMM_WORLD).unwrap() as usize;
            let send = vec![7u8; n * 64];
            let mut recv = vec![0u8; n * 64];
            for _ in 0..3 {
                p.alltoall(&send, &mut recv, mpih::MPI_BYTE, mpih::MPI_COMM_WORLD)
                    .unwrap();
                let mut buf = vec![1u8; 256];
                p.bcast(&mut buf, mpih::MPI_BYTE, 0, mpih::MPI_COMM_WORLD)
                    .unwrap();
            }
            Ok(ctx.now().as_nanos())
        })
        .unwrap()
        .results
    };
    assert_eq!(run_once(), run_once());
}
