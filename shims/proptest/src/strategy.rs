//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Object-safe core (`generate`) plus sized combinators, mirroring the
/// shape of proptest's trait.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone + std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; regenerates on rejection.
    fn prop_filter<R, F>(self, reason: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Erase a strategy's concrete type (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Clone + std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive values",
            self.reason
        );
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: Clone + std::fmt::Debug> Union<V> {
    /// Build from the macro's boxed arms. Panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Clone + std::fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// --- Range strategies -----------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (start as i128 + rng.below(span + 1) as i128) as $ty
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// --- Tuple strategies -----------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

// --- String strategies from pattern literals ------------------------------

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
