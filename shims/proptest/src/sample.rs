//! Sampling strategies (`sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing uniformly from a fixed set of values.
pub struct Select<T> {
    options: Vec<T>,
}

/// `select(options)`: uniform choice from `options`. Panics if empty.
pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_options_eventually() {
        let mut rng = TestRng::deterministic("sample");
        let s = select(vec!['a', 'b', 'c']);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
