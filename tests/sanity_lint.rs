//! `stoolint` battery: per-rule fixtures (violating, suppressed, and
//! clean forms) with exact spans, manifest checking, exit-code
//! semantics, and — the self-enforcing acceptance test — a clean run
//! over this very repository.

use mpi_stool::sanity::lint::{default_rules, lint_manifest, lint_source, lint_tree};

fn findings_for(path: &str, source: &str) -> Vec<(String, u32, u32)> {
    lint_source(path, source, &default_rules())
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line, f.col))
        .collect()
}

// -------------------------------------------------------------------------
// no-eprintln
// -------------------------------------------------------------------------

#[test]
fn no_eprintln_fires_with_exact_span() {
    let src = "fn f() {\n    eprintln!(\"boom\");\n}\n";
    assert_eq!(
        findings_for("crates/foo/src/a.rs", src),
        vec![("no-eprintln".to_string(), 2, 5)]
    );
}

#[test]
fn no_eprintln_suppressed_by_lint_allow() {
    let src = "fn f() {\n    // lint:allow(no-eprintln) — gate output\n    eprintln!(\"ok\");\n}\n";
    assert!(findings_for("crates/foo/src/a.rs", src).is_empty());
}

#[test]
fn no_eprintln_ignores_strings_and_test_mods() {
    // The macro name inside a string literal is not an invocation.
    let in_string = "fn f() { let s = \"eprintln!(no)\"; }\n";
    assert!(findings_for("crates/foo/src/a.rs", in_string).is_empty());

    // `#[cfg(test)] mod` bodies are exempt (skip_tests rule).
    let in_test = "#[cfg(test)]\nmod tests {\n    fn f() { eprintln!(\"t\"); }\n}\n";
    assert!(findings_for("crates/foo/src/a.rs", in_test).is_empty());
}

// -------------------------------------------------------------------------
// no-sleep-poll
// -------------------------------------------------------------------------

#[test]
fn no_sleep_poll_flags_raw_os_sleep_only() {
    // A raw OS sleep on a hot path fires...
    let raw = "fn f(d: Duration) {\n    std::thread::sleep(d);\n}\n";
    assert_eq!(
        findings_for("crates/simnet/src/x.rs", raw),
        vec![("no-sleep-poll".to_string(), 2, 10)]
    );

    // ...but the injectable Clock trait (the sanctioned wait) does not:
    // `clock.sleep(d)` is a method call, not the `thread::sleep` path.
    let via_clock = "fn f(c: &dyn Clock, d: Duration) {\n    c.sleep(d);\n}\n";
    assert!(findings_for("crates/simnet/src/x.rs", via_clock).is_empty());

    // The rule is scoped to the simnet/dmtcp hot paths.
    let elsewhere = "fn f(d: Duration) {\n    std::thread::sleep(d);\n}\n";
    assert!(findings_for("crates/bench/src/x.rs", elsewhere).is_empty());
}

#[test]
fn no_sleep_poll_flags_spinning() {
    let spin = "fn f() {\n    std::hint::spin_loop();\n}\n";
    assert_eq!(
        findings_for("crates/dmtcp/src/x.rs", spin),
        vec![("no-sleep-poll".to_string(), 2, 10)]
    );
}

// -------------------------------------------------------------------------
// no-alloc-in-emit
// -------------------------------------------------------------------------

#[test]
fn no_alloc_in_emit_is_region_scoped() {
    let src = "\
fn emit(&self, v: u64) {
    let label = format!(\"pre\"); // fine: outside the region
    // lint:region-start(no-alloc-in-emit)
    self.buf.push(v);
    // lint:region-end(no-alloc-in-emit)
    self.done.push(label); // fine again: region closed
}
";
    assert_eq!(
        findings_for("crates/simnet/src/t.rs", src),
        vec![("no-alloc-in-emit".to_string(), 4, 14)]
    );
}

// -------------------------------------------------------------------------
// guard-across-barrier
// -------------------------------------------------------------------------

#[test]
fn guard_across_barrier_receiver_evaluated_first_form() {
    // The PR 6 deadlock, verbatim shape: the lock guard (receiver) is
    // evaluated before `session.finish()` parks in the barrier.
    let src = "fn f() {\n    results.lock().unwrap().push(session.finish());\n}\n";
    let hits = findings_for("tests/battery.rs", src);
    assert_eq!(hits, vec![("guard-across-barrier".to_string(), 2, 42)]);
}

#[test]
fn guard_across_barrier_live_let_binding_form() {
    let src = "\
fn f() {
    let st = slots.lock().unwrap();
    session.finish();
}
";
    let hits = findings_for("crates/dmtcp/src/x.rs", src);
    assert_eq!(hits, vec![("guard-across-barrier".to_string(), 3, 13)]);
}

#[test]
fn guard_across_barrier_clean_forms_pass() {
    // Bind the outcome first, lock second: the fixed PR 6 shape.
    let fixed =
        "fn f() {\n    let out = session.finish();\n    results.lock().unwrap().push(out);\n}\n";
    assert!(findings_for("tests/battery.rs", fixed).is_empty());

    // An explicit drop releases the guard before the barrier.
    let dropped = "\
fn f() {
    let st = slots.lock().unwrap();
    drop(st);
    session.finish();
}
";
    assert!(findings_for("crates/dmtcp/src/x.rs", dropped).is_empty());

    // A scope-bounded guard is dead by the time the barrier runs.
    let scoped = "\
fn f() {
    {
        let st = slots.lock().unwrap();
        st.len();
    }
    session.finish();
}
";
    assert!(findings_for("crates/dmtcp/src/x.rs", scoped).is_empty());
}

// -------------------------------------------------------------------------
// shims-only-deps (manifests)
// -------------------------------------------------------------------------

#[test]
fn shims_only_deps_flags_registry_dependencies() {
    let bad = "\
[package]
name = \"x\"

[dependencies]
serde = \"1\"
";
    let hits = lint_manifest("crates/x/Cargo.toml", bad);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].rule, "shims-only-deps");
    assert_eq!(hits[0].line, 5);

    let good = "\
[package]
name = \"x\"

[dependencies]
simnet = { workspace = true }
loom = { path = \"../../shims/loom\" }

[dependencies.tracing]
path = \"../tracing\"
";
    assert!(lint_manifest("crates/x/Cargo.toml", good).is_empty());
}

// -------------------------------------------------------------------------
// Exit codes + whole-tree acceptance
// -------------------------------------------------------------------------

#[test]
fn exit_codes_mirror_benchgate_semantics() {
    let dir = std::env::temp_dir().join(format!("stoolint-fixture-{}", std::process::id()));
    let src_dir = dir.join("crates/seeded/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(
        src_dir.join("lib.rs"),
        "fn f() {\n    eprintln!(\"seeded violation\");\n}\n",
    )
    .unwrap();

    let report = lint_tree(&dir).unwrap();
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.exit_code(), 2, "violations exit 2");

    std::fs::write(src_dir.join("lib.rs"), "fn f() {}\n").unwrap();
    let report = lint_tree(&dir).unwrap();
    assert!(report.findings.is_empty());
    assert_eq!(report.exit_code(), 0, "clean tree exits 0");

    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance criterion, self-enforced: the repository this test
/// ships in must lint clean. A PR that reintroduces a banned pattern
/// fails here even before CI runs the binary.
#[test]
fn this_repository_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_tree(root).unwrap();
    assert!(
        report.findings.is_empty(),
        "stoolint must pass on the shipped tree:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(report.exit_code(), 0);
}
