//! The application programming model.
//!
//! An [`MpiProgram`] is the "application binary": written once against the
//! standard ABI, with its evolving state in checkpointable [`Memory`] and a
//! step-structured main loop that calls [`AppCtx::checkpoint_point`] at
//! safe points. See DESIGN.md §1 for why this cooperative-memory model is
//! the safe-Rust substitute for MANA's raw page capture — the MPI-facing
//! behaviour (wrappers, drain, virtual ids, cross-vendor restart) is
//! unchanged.

use std::rc::Rc;
use std::sync::Arc;

use dmtcp_sim::coordinator::{CkptMode, Coordinator, RankAgent};
use dmtcp_sim::memory::Memory;
use mana_sim::ckpt::CkptAction;
use mpi_abi::MpiAbi;
use simnet::telemetry::{EventKind, Telemetry};
use simnet::{RankCtx, VirtualTime};

use crate::error::{StoolError, StoolResult};
use crate::mpix::Pmpi;
use crate::scenario::{ResolvedKill, Straggler};
use crate::session::CkptPolicy;
use crate::stack::Stack;

/// Whether the application should keep running after a safe point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep computing.
    Continue,
    /// A checkpoint-and-stop was taken: unwind the main loop and return.
    Stop,
}

impl Flow {
    /// Convenience for `if ctx.checkpoint_point(s)?.is_stop() { return .. }`.
    pub fn is_stop(self) -> bool {
        self == Flow::Stop
    }
}

/// A portable MPI application.
///
/// Programs must be deterministic functions of (rank, size, memory): that
/// is what makes a restored run continue exactly where the checkpoint left
/// off. All state that must survive a checkpoint lives in the memory.
pub trait MpiProgram: Sync {
    /// Short identifier (used in reports and image metadata).
    fn name(&self) -> &'static str;

    /// The program body, executed once per rank.
    fn run(&self, app: &mut AppCtx<'_>) -> StoolResult<()>;
}

/// Everything a rank's application code can touch.
pub struct AppCtx<'a> {
    pub(crate) stack: &'a mut Stack,
    /// The rank's checkpointable memory ("upper-half memory").
    pub mem: &'a mut Memory,
    pub(crate) sim: Rc<RankCtx>,
    pub(crate) resume: Option<u64>,
    pub(crate) policy: CkptPolicy,
    /// Resolved kill schedule (legacy plan + fault schedule), sorted by
    /// step; shared read-only across ranks.
    pub(crate) kills: Arc<Vec<ResolvedKill>>,
    /// This rank's straggler window, if the schedule delays it.
    pub(crate) straggle: Option<Straggler>,
    pub(crate) tel: Arc<Telemetry>,
    pub(crate) coordinator: Option<Coordinator>,
    pub(crate) agent: Option<RankAgent>,
    pub(crate) stopped: bool,
    pub(crate) failed_at: Option<u64>,
}

impl AppCtx<'_> {
    /// The standard ABI function table (the raw interface).
    pub fn mpi(&mut self) -> &mut dyn MpiAbi {
        self.stack.mpi()
    }

    /// Typed convenience wrapper over the ABI.
    pub fn pmpi(&mut self) -> Pmpi<'_> {
        Pmpi::new(self.stack.mpi())
    }

    /// This rank's id (world).
    pub fn rank(&self) -> usize {
        self.sim.rank()
    }

    /// World size.
    pub fn nranks(&self) -> usize {
        self.sim.nranks()
    }

    /// The step to resume from: 0 on a fresh launch, the checkpointed step
    /// after a restore.
    pub fn resume_step(&self) -> u64 {
        self.resume.unwrap_or(0)
    }

    /// Whether this run was restored from a checkpoint image.
    pub fn is_restart(&self) -> bool {
        self.resume.is_some()
    }

    /// Current virtual time on this rank.
    pub fn now(&self) -> VirtualTime {
        self.sim.now()
    }

    /// Charge modelled computation time (scaled by the cluster CPU speed).
    pub fn compute(&self, work: VirtualTime) {
        self.sim.compute(work);
    }

    /// Sleep in virtual time (the Fig. 6 OSU modification uses a 10 s
    /// window like this one to leave room for the checkpoint).
    pub fn sleep(&self, dt: VirtualTime) {
        self.sim.sleep(dt);
    }

    /// Ask the coordinator for a checkpoint (the "user presses the button"
    /// path). All ranks must reach their next safe point without requiring
    /// MPI progress from ranks that already reached it.
    pub fn request_checkpoint(&self, mode: CkptMode) {
        if let Some(coord) = &self.coordinator {
            coord.request_checkpoint(mode);
        }
    }

    /// A checkpoint **safe point**: the application guarantees it has no
    /// incomplete nonblocking requests and is between steps. `next_step` is
    /// recorded as the resume position if a checkpoint is taken here.
    ///
    /// Returns [`Flow::Stop`] if a checkpoint-and-stop was executed; the
    /// application must then unwind without further MPI calls.
    pub fn checkpoint_point(&mut self, next_step: u64) -> StoolResult<Flow> {
        if self.stopped || self.failed_at.is_some() {
            return Ok(Flow::Stop);
        }
        // Injected straggler delay: a slow-but-alive rank stalls its
        // virtual clock on entry to the safe point. The cut must not care
        // — every rank still announces the same step, so the coordinator
        // pins the checkpoint there regardless of arrival skew.
        if let Some(s) = self.straggle {
            if s.rank == self.sim.rank() && (s.from_step..s.until_step).contains(&next_step) {
                self.sim.stall(s.delay);
                self.tel.emit_rank(
                    self.sim.rank(),
                    EventKind::RankStall,
                    self.sim.now().as_nanos(),
                    self.sim.rank() as u64,
                    s.delay.as_nanos(),
                    next_step,
                );
            }
        }
        // Injected failure: the job dies on entry to this step, before any
        // checkpoint it might have taken here (the adversarial ordering —
        // recovery must come from an *earlier* image). Victims record a
        // RankKill incident carrying the blamed node-group; every other
        // rank unwinds cooperatively at the same safe point.
        if let Some(kill) = self.kills.iter().find(|k| k.at_step == next_step) {
            self.failed_at = Some(next_step);
            let rank = self.sim.rank();
            if kill.victims.contains(&rank) {
                self.tel.emit_rank(
                    rank,
                    EventKind::RankKill,
                    self.sim.now().as_nanos(),
                    rank as u64,
                    next_step,
                    kill.node as u64,
                );
                self.tel.note_incident();
            }
            return Ok(Flow::Stop);
        }
        // Policy-driven checkpoints are *scheduled*: every rank runs the
        // same policy and announces the same step before polling there, so
        // the coordinator pins the cut to this exact step (no gather).
        if self.policy.at_step == Some(next_step) {
            if let Some(coord) = &self.coordinator {
                coord.schedule_checkpoint_at(next_step, self.policy.mode);
            }
        }
        // Periodic checkpointing (always Continue).
        if let Some(n) = self.policy.every_steps {
            if next_step > 0
                && next_step.is_multiple_of(n)
                && self.policy.at_step != Some(next_step)
            {
                if let Some(coord) = &self.coordinator {
                    coord.schedule_checkpoint_at(next_step, CkptMode::Continue);
                }
            }
        }
        let action = self
            .stack
            .maybe_checkpoint(self.agent.as_mut(), self.mem, next_step)
            .map_err(StoolError::Abi)?;
        match action {
            CkptAction::Stop { .. } => {
                self.stopped = true;
                Ok(Flow::Stop)
            }
            CkptAction::Taken { .. } | CkptAction::None => Ok(Flow::Continue),
        }
    }

    /// Whether the run ended in a checkpoint-and-stop.
    pub fn was_stopped(&self) -> bool {
        self.stopped
    }

    /// The step at which an injected failure struck, if any.
    pub fn failed_at(&self) -> Option<u64> {
        self.failed_at
    }
}
