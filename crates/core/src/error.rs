//! Errors of the session layer.

use std::fmt;

use dmtcp_sim::image::ImageError;
use dmtcp_sim::replica::ReplicaError;
use dmtcp_sim::store::StoreError;
use mpi_abi::AbiError;
use simnet::SimError;

/// Result alias for session-layer operations.
pub type StoolResult<T> = Result<T, StoolError>;

/// Anything that can go wrong assembling or running the three-legged stool.
#[derive(Debug, Clone, PartialEq)]
pub enum StoolError {
    /// An MPI call failed (standard error class).
    Abi(AbiError),
    /// The simulated cluster substrate failed.
    Sim(SimError),
    /// The session configuration is inconsistent.
    Config(String),
    /// A checkpoint image could not be restored.
    Restore(String),
    /// A checkpoint image could not be saved or loaded on disk.
    Image(ImageError),
    /// The delta-checkpoint store failed (committing, flushing or
    /// rebuilding an epoch chain).
    Store(StoreError),
    /// The replicated coordinator could not quorum-commit an epoch
    /// record (the checkpoint aborted atomically).
    Replica(ReplicaError),
    /// The application reported an error.
    App(String),
}

impl fmt::Display for StoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoolError::Abi(e) => write!(f, "MPI error: {e}"),
            StoolError::Sim(e) => write!(f, "cluster error: {e}"),
            StoolError::Config(m) => write!(f, "session configuration error: {m}"),
            StoolError::Restore(m) => write!(f, "restore error: {m}"),
            StoolError::Image(e) => write!(f, "image error: {e}"),
            StoolError::Store(e) => write!(f, "checkpoint store error: {e}"),
            StoolError::Replica(e) => write!(f, "coordinator replication error: {e}"),
            StoolError::App(m) => write!(f, "application error: {m}"),
        }
    }
}

impl std::error::Error for StoolError {}

impl From<AbiError> for StoolError {
    fn from(e: AbiError) -> Self {
        StoolError::Abi(e)
    }
}

impl From<SimError> for StoolError {
    fn from(e: SimError) -> Self {
        StoolError::Sim(e)
    }
}

impl From<ImageError> for StoolError {
    fn from(e: ImageError) -> Self {
        StoolError::Image(e)
    }
}

impl From<StoreError> for StoolError {
    fn from(e: StoreError) -> Self {
        StoolError::Store(e)
    }
}

impl From<ReplicaError> for StoolError {
    fn from(e: ReplicaError) -> Self {
        StoolError::Replica(e)
    }
}

/// Internal: smuggle a `StoolError` through the substrate's error type
/// (rank closures must return `SimResult`).
pub(crate) fn to_sim(e: StoolError) -> SimError {
    match e {
        StoolError::Sim(e) => e,
        other => SimError::InvalidConfig(format!("[stool] {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: StoolError = AbiError::Truncate.into();
        assert!(e.to_string().contains("truncated"));
        let e: StoolError = SimError::Disconnected.into();
        assert!(e.to_string().contains("disconnected"));
        let e = StoolError::Config("no vendor".into());
        assert!(e.to_string().contains("no vendor"));
    }

    #[test]
    fn sim_round_trip() {
        let e = to_sim(StoolError::Sim(SimError::Disconnected));
        assert_eq!(e, SimError::Disconnected);
        let e = to_sim(StoolError::App("boom".into()));
        assert!(matches!(e, SimError::InvalidConfig(m) if m.contains("boom")));
    }
}
