//! Virtual time: a nanosecond-resolution logical clock value.
//!
//! All latencies reported by the benchmark harnesses are differences of
//! [`VirtualTime`] values, so results are deterministic and host-independent.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) in virtual time, in nanoseconds.
///
/// `VirtualTime` is a transparent wrapper over `u64` with saturating
/// arithmetic: clocks never wrap, and subtracting a later time from an
/// earlier one yields zero rather than panicking, which keeps timing code
/// robust in the presence of per-rank clock skew.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// The zero timestamp (cluster boot).
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        VirtualTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        VirtualTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        VirtualTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        VirtualTime(s * 1_000_000_000)
    }

    /// Construct from a floating-point number of microseconds, rounding to
    /// the nearest nanosecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        VirtualTime((us.max(0.0) * 1_000.0).round() as u64)
    }

    /// Nanoseconds since boot.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since boot, as a float (the unit of the paper's plots).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since boot, as a float (the unit of Fig. 5).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating difference: `self - earlier`, or zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.saturating_sub(earlier.0))
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.max(other.0))
    }

    /// Scale a time span by a dimensionless factor (used by the jitter
    /// model). Rounds to the nearest nanosecond; never negative.
    #[inline]
    pub fn scale(self, factor: f64) -> VirtualTime {
        VirtualTime((self.0 as f64 * factor.max(0.0)).round() as u64)
    }
}

impl Add for VirtualTime {
    type Output = VirtualTime;
    #[inline]
    fn add(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for VirtualTime {
    #[inline]
    fn add_assign(&mut self, rhs: VirtualTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for VirtualTime {
    type Output = VirtualTime;
    #[inline]
    fn sub(self, rhs: VirtualTime) -> VirtualTime {
        self.saturating_since(rhs)
    }
}

impl Sum for VirtualTime {
    fn sum<I: Iterator<Item = VirtualTime>>(iter: I) -> Self {
        iter.fold(VirtualTime::ZERO, |acc, t| acc + t)
    }
}

impl fmt::Debug for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(VirtualTime::from_secs(1), VirtualTime::from_millis(1000));
        assert_eq!(VirtualTime::from_millis(1), VirtualTime::from_micros(1000));
        assert_eq!(VirtualTime::from_micros(1), VirtualTime::from_nanos(1000));
    }

    #[test]
    fn saturating_subtraction_never_panics() {
        let early = VirtualTime::from_micros(1);
        let late = VirtualTime::from_micros(5);
        assert_eq!(late - early, VirtualTime::from_micros(4));
        assert_eq!(early - late, VirtualTime::ZERO);
    }

    #[test]
    fn micros_round_trip() {
        let t = VirtualTime::from_micros_f64(12.345);
        assert!((t.as_micros_f64() - 12.345).abs() < 1e-3);
    }

    #[test]
    fn scale_rounds_and_clamps() {
        let t = VirtualTime::from_nanos(1000);
        assert_eq!(t.scale(1.5), VirtualTime::from_nanos(1500));
        assert_eq!(t.scale(-2.0), VirtualTime::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", VirtualTime::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", VirtualTime::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", VirtualTime::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", VirtualTime::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_accumulates() {
        let total: VirtualTime = (1..=4).map(VirtualTime::from_micros).sum();
        assert_eq!(total, VirtualTime::from_micros(10));
    }
}
