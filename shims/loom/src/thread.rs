//! `loom::thread`: model-checked thread spawn/join.

use std::sync::{Arc, Mutex};

use crate::rt;

/// Handle to a model thread; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    tid: usize,
    exec: Arc<rt::Execution>,
    real: Option<std::thread::JoinHandle<()>>,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its value. A thread
    /// that panicked aborts the whole model (the failing schedule is
    /// reported by [`crate::model`]), so this returns `Err` only on
    /// that unwind path.
    pub fn join(self) -> std::thread::Result<T> {
        let JoinHandle {
            tid,
            exec,
            mut real,
            result,
        } = self;
        exec.join_thread(rt::current().1, tid);
        if let Some(h) = real.take() {
            // The model thread is Finished; the OS thread exits promptly.
            let _ = h.join();
        }
        let value = result.lock().unwrap_or_else(|p| p.into_inner()).take();
        match value {
            Some(v) => Ok(v),
            None => Err(Box::new("loom model thread panicked")),
        }
    }
}

/// Spawn a model thread (a scheduling point). The closure runs under
/// the exploration scheduler: it starts only when the schedule hands it
/// the token.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, me) = rt::current();
    let tid = exec.register_thread();
    let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let real = {
        let exec = exec.clone();
        let result = result.clone();
        std::thread::spawn(move || {
            rt::adopt(exec.clone(), tid);
            exec.wait_for_token(tid);
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            let panicked = out.is_err();
            if let Ok(v) = out {
                *result.lock().unwrap_or_else(|p| p.into_inner()) = Some(v);
            }
            rt::disown();
            exec.finish_thread(tid, panicked);
        })
    };
    exec.schedule(me);
    JoinHandle {
        tid,
        exec,
        real: Some(real),
        result,
    }
}

/// Voluntarily hand the token back to the scheduler (a scheduling
/// point with no other effect).
pub fn yield_now() {
    let (exec, me) = rt::current();
    exec.schedule(me);
}
