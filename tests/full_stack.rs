//! End-to-end integration: every stack shape × every workload.
//!
//! These tests span all crates: the application (`mpi-apps`) calls the
//! standard ABI (`mpi-abi`), interposed by MANA (`mana-sim`), translated by
//! the Mukautuva shim (`muk`), executed by a vendor library
//! (`mpich-sim`/`ompi-sim`) over the virtual cluster (`simnet`).

use mpi_stool::apps::{CoMdMini, OsuKernel, OsuLatency, WaveMpi};
use mpi_stool::simnet::ClusterSpec;
use mpi_stool::stool::programs::RingPings;
use mpi_stool::stool::{Checkpointer, MpiProgram, RunOutcome, Session, Vendor};

fn cluster() -> ClusterSpec {
    ClusterSpec::builder().nodes(2).ranks_per_node(3).build()
}

/// The four stack shapes of the paper's figures, plus the shim-only shape.
fn all_stacks() -> Vec<(Vendor, bool, Checkpointer)> {
    let mut v = Vec::new();
    for vendor in [Vendor::Mpich, Vendor::OpenMpi] {
        v.push((vendor, false, Checkpointer::None)); // native
        v.push((vendor, true, Checkpointer::None)); // + Mukautuva
        v.push((vendor, true, Checkpointer::mana())); // + Mukautuva + MANA
    }
    v
}

fn run(program: &dyn MpiProgram, vendor: Vendor, muk: bool, ckpt: Checkpointer) -> RunOutcome {
    let mut b = Session::builder()
        .cluster(cluster())
        .vendor(vendor)
        .checkpointer(ckpt);
    if !muk {
        b = b.native_abi();
    }
    b.build().expect("session").launch(program).expect("launch")
}

#[test]
fn ring_total_is_stack_invariant() {
    let program = RingPings {
        rounds: 7,
        payload: 32,
    };
    let mut totals = Vec::new();
    for (vendor, muk, ckpt) in all_stacks() {
        let out = run(&program, vendor, muk, ckpt);
        let memories = out.memories().expect("completed");
        let total = memories[0].get_f64("ring.total").expect("output");
        for m in memories {
            assert_eq!(m.get_f64("ring.total"), Some(total), "ranks disagree");
        }
        totals.push(total);
    }
    // The computed answer is a function of the program, not of the stack.
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "answer depends on the stack: {totals:?}"
    );
}

#[test]
fn wave_solution_is_stack_invariant_and_accurate() {
    let solver = WaveMpi {
        npoints: 240,
        nsteps: 120,
        gather_final: true,
        ..WaveMpi::default()
    };
    let mut fields: Vec<Vec<f64>> = Vec::new();
    for (vendor, muk, ckpt) in all_stacks() {
        let out = run(&solver, vendor, muk, ckpt);
        let mem = &out.memories().expect("completed")[0];
        let err = mem.get_f64("wave.err").expect("L2 error");
        assert!(
            err < 5e-2,
            "wave solution inaccurate under {vendor:?} muk={muk}: err={err}"
        );
        fields.push(mem.f64s("wave.final").expect("gathered").to_vec());
    }
    let first = &fields[0];
    for f in &fields[1..] {
        assert_eq!(first.len(), f.len());
        assert!(
            first.iter().zip(f).all(|(a, b)| a.to_bits() == b.to_bits()),
            "field differs bitwise across stacks"
        );
    }
}

#[test]
fn comd_conserves_energy_on_every_stack() {
    let md = CoMdMini {
        nsteps: 40,
        ..CoMdMini::default()
    };
    for (vendor, muk, ckpt) in all_stacks() {
        let out = run(&md, vendor, muk, ckpt);
        let mem = &out.memories().expect("completed")[0];
        let series = mem.f64s("comd.energy").expect("energy series");
        assert!(!series.is_empty());
        let e0 = series[0];
        let drift = series
            .iter()
            .map(|e| ((e - e0) / e0.abs().max(1e-12)).abs())
            .fold(0.0f64, f64::max);
        assert!(
            drift < 1e-2,
            "energy drift {drift:.3e} too large under {vendor:?} muk={muk}"
        );
    }
}

#[test]
fn comd_atom_count_is_conserved() {
    let md = CoMdMini {
        nsteps: 30,
        ..CoMdMini::default()
    };
    for vendor in [Vendor::Mpich, Vendor::OpenMpi] {
        let out = run(&md, vendor, true, Checkpointer::mana());
        let memories = out.memories().expect("completed");
        let total: u64 = memories
            .iter()
            .map(|m| m.get_u64("comd.natoms_local").unwrap())
            .sum();
        assert_eq!(
            total as usize,
            md.natoms(),
            "atoms lost or duplicated in migration"
        );
    }
}

#[test]
fn osu_sweep_records_all_sizes_on_all_stacks() {
    let bench = OsuLatency {
        kernel: OsuKernel::Allreduce,
        min_size: 1,
        max_size: 1024,
        warmup: 2,
        iters: 4,
        ckpt_window: None,
    };
    for (vendor, muk, ckpt) in all_stacks() {
        let out = run(&bench, vendor, muk, ckpt);
        let mem = &out.memories().expect("completed")[0];
        let lat = mem.f64s("osu.lat_us").expect("latencies");
        assert_eq!(lat.len(), bench.sizes().len());
        assert!(
            lat.iter().all(|&l| l > 0.0),
            "non-positive latency under {vendor:?}"
        );
    }
}

#[test]
fn counters_reflect_real_traffic() {
    let program = RingPings {
        rounds: 5,
        payload: 16,
    };
    let out = run(&program, Vendor::Mpich, true, Checkpointer::mana());
    match out {
        RunOutcome::Completed { counters, .. } => {
            for c in &counters {
                assert!(c.msgs_sent > 0, "every rank sends in a ring");
                assert!(
                    c.bytes_sent >= c.msgs_sent,
                    "payload bytes at least one per message"
                );
                assert!(
                    c.context_switches > 0,
                    "MANA charges split-process crossings"
                );
            }
            let sent: u64 = counters.iter().map(|c| c.msgs_sent).sum();
            let recv: u64 = counters.iter().map(|c| c.msgs_received).sum();
            assert_eq!(sent, recv, "conservation of messages");
        }
        _ => panic!("run should complete"),
    }
}

#[test]
fn native_stack_charges_no_context_switches() {
    let program = RingPings {
        rounds: 4,
        payload: 8,
    };
    let out = run(&program, Vendor::OpenMpi, false, Checkpointer::None);
    match out {
        RunOutcome::Completed { counters, .. } => {
            assert!(counters.iter().all(|c| c.context_switches == 0));
        }
        _ => panic!("run should complete"),
    }
}

#[test]
fn vendors_differ_in_performance_but_not_in_answers() {
    // The paper's Figs. 2-4 show the two vendors have *different* latency
    // curves (different collective algorithms). Check the simulation
    // preserves that: same answer, different makespan.
    let bench = OsuLatency {
        kernel: OsuKernel::Alltoall,
        min_size: 64,
        max_size: 4096,
        warmup: 1,
        iters: 6,
        ckpt_window: None,
    };
    let a = run(&bench, Vendor::Mpich, false, Checkpointer::None);
    let b = run(&bench, Vendor::OpenMpi, false, Checkpointer::None);
    assert_ne!(
        a.makespan(),
        b.makespan(),
        "two different MPI implementations should not have identical timing"
    );
}

#[test]
fn session_label_reflects_stack() {
    let s = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::OpenMpi)
        .checkpointer(Checkpointer::mana())
        .build()
        .unwrap();
    let label = s.label();
    assert!(
        label.contains("Open MPI"),
        "label {label:?} should name the vendor"
    );
    assert!(
        label.contains("MANA"),
        "label {label:?} should name the checkpointer"
    );
}
