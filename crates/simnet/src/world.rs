//! Launching a world: one thread per rank, panic containment, result
//! collection — with a threading plan that keeps ≥ 512-rank worlds cheap.
//!
//! Rank bodies block on each other (condvar receives, collective
//! exchanges), so a communicating world needs every rank live at once:
//! the engine cannot multiplex blocked ranks onto fewer OS threads. What
//! it *can* bound is the per-thread cost — [`RunPlan::auto`] shrinks rank
//! stacks from the OS default (8 MiB) to 1 MiB once a world reaches 128
//! ranks, which keeps a 1024-rank world at ~1 GiB of address space
//! instead of ~8 GiB. For rank bodies that are **independent** (no
//! cross-rank blocking — image generation, per-rank setup fan-out),
//! [`World::run_pooled`] runs them through a bounded worker pool instead
//! of one thread per rank.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Arc;

use crate::cluster::ClusterSpec;
use crate::error::{SimError, SimResult};
use crate::fabric::Fabric;
use crate::pool::WorkerPool;
use crate::rank::{RankCounters, RankCtx};
use crate::time::VirtualTime;

/// World size at which [`RunPlan::auto`] starts bounding rank stacks.
pub const LARGE_WORLD_RANKS: usize = 128;

/// Per-rank stack size used for large worlds (1 MiB — far above what the
/// vendor-library/shim/checkpointer stack depth needs, far below the OS
/// default that would cost 8 GiB of address space at 1024 ranks).
pub const LARGE_WORLD_STACK_BYTES: usize = 1 << 20;

/// How rank threads are created for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunPlan {
    /// Per-rank thread stack size in bytes; `None` uses the OS default.
    pub stack_bytes: Option<usize>,
}

impl RunPlan {
    /// The plan [`World::run`] picks for a world of `nranks`: default
    /// stacks for small worlds, [`LARGE_WORLD_STACK_BYTES`] at or beyond
    /// [`LARGE_WORLD_RANKS`] ranks.
    pub fn auto(nranks: usize) -> RunPlan {
        RunPlan {
            stack_bytes: (nranks >= LARGE_WORLD_RANKS).then_some(LARGE_WORLD_STACK_BYTES),
        }
    }

    /// An explicit per-rank stack size.
    pub fn with_stack_bytes(stack_bytes: usize) -> RunPlan {
        RunPlan {
            stack_bytes: Some(stack_bytes),
        }
    }

    fn builder(&self, rank: usize) -> std::thread::Builder {
        let b = std::thread::Builder::new().name(format!("rank-{rank}"));
        match self.stack_bytes {
            Some(bytes) => b.stack_size(bytes),
            None => b,
        }
    }
}

/// Result of running a world to completion.
#[derive(Debug)]
pub struct WorldOutcome<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank final virtual clocks.
    pub clocks: Vec<VirtualTime>,
    /// Per-rank communication counters.
    pub counters: Vec<RankCounters>,
}

impl<R> WorldOutcome<R> {
    /// The makespan: the maximum final clock over all ranks — what a user
    /// would observe as the job's completion time.
    pub fn makespan(&self) -> VirtualTime {
        self.clocks
            .iter()
            .copied()
            .fold(VirtualTime::ZERO, VirtualTime::max)
    }
}

/// Launches rank threads over a fresh fabric.
pub struct World;

impl World {
    /// Run `f` once per rank on its own OS thread and collect the results,
    /// with the threading plan auto-selected by world size
    /// ([`RunPlan::auto`]).
    ///
    /// The closure receives an `Rc<RankCtx>` so that deep software stacks
    /// (vendor library → ABI shim → checkpoint wrappers → application) can
    /// each hold a shared handle to the rank context without lifetime
    /// plumbing; the `Rc` never leaves its thread.
    ///
    /// * If any rank returns an error, the fabric is shut down (so blocked
    ///   peers unwind) and the first error by rank order is returned.
    /// * If any rank panics, the panic is contained, the fabric is shut
    ///   down, and [`SimError::RankPanicked`] is returned.
    pub fn run<R, F>(spec: &ClusterSpec, f: F) -> SimResult<WorldOutcome<R>>
    where
        R: Send,
        F: Fn(Rc<RankCtx>) -> SimResult<R> + Sync,
    {
        Self::run_with(spec, RunPlan::auto(spec.nranks()), f)
    }

    /// Like [`World::run`] with an explicit threading plan.
    pub fn run_with<R, F>(spec: &ClusterSpec, plan: RunPlan, f: F) -> SimResult<WorldOutcome<R>>
    where
        R: Send,
        F: Fn(Rc<RankCtx>) -> SimResult<R> + Sync,
    {
        spec.validate().map_err(SimError::InvalidConfig)?;
        let spec = Arc::new(spec.clone());
        let (fabric, endpoints) = Fabric::new(&spec);
        Self::run_on_with(spec, fabric, endpoints, plan, f)
    }

    /// Like [`World::run`], but over a caller-provided fabric — used by the
    /// checkpointing layers, which need to keep out-of-band coordinator
    /// channels alongside the fabric.
    pub fn run_on<R, F>(
        spec: Arc<ClusterSpec>,
        fabric: Fabric,
        endpoints: Vec<crate::fabric::Endpoint>,
        f: F,
    ) -> SimResult<WorldOutcome<R>>
    where
        R: Send,
        F: Fn(Rc<RankCtx>) -> SimResult<R> + Sync,
    {
        let plan = RunPlan::auto(spec.nranks());
        Self::run_on_with(spec, fabric, endpoints, plan, f)
    }

    /// The general entry point: caller-provided fabric *and* threading
    /// plan.
    pub fn run_on_with<R, F>(
        spec: Arc<ClusterSpec>,
        fabric: Fabric,
        endpoints: Vec<crate::fabric::Endpoint>,
        plan: RunPlan,
        f: F,
    ) -> SimResult<WorldOutcome<R>>
    where
        R: Send,
        F: Fn(Rc<RankCtx>) -> SimResult<R> + Sync,
    {
        let nranks = spec.nranks();
        assert_eq!(endpoints.len(), nranks, "one endpoint per rank required");
        let f = &f;

        let mut slots: Vec<Option<(SimResult<R>, VirtualTime, RankCounters)>> =
            (0..nranks).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nranks);
            for (rank, ep) in endpoints.into_iter().enumerate() {
                let spec = spec.clone();
                let fabric = fabric.clone();
                let handle = plan
                    .builder(rank)
                    .spawn_scoped(scope, move || Self::rank_body(rank, spec, fabric, ep, f))
                    .expect("spawn rank thread");
                handles.push(handle);
            }
            for handle in handles {
                // The closure itself contains panics, so join only fails if
                // the containment machinery is broken; propagate in that case.
                let (rank, res, clock, counters) = handle.join().expect("rank thread join failed");
                slots[rank] = Some((res, clock, counters));
            }
        });

        Self::collect(slots)
    }

    /// Run **independent** rank bodies through a bounded worker pool: at
    /// most `max_threads` rank threads are live at any moment, admitted in
    /// strict rank order through a fresh [`WorkerPool`].
    ///
    /// This is the "where the engine allows it" escape from one thread per
    /// rank: a later rank does not exist until an earlier rank releases a
    /// pool permit, so `f` must never *block on* a higher-numbered rank
    /// (sends are fine — the fabric's mailboxes buffer them; a blocking
    /// receive may only wait on lower-numbered ranks, which are always
    /// admitted first). Use [`World::run`] for communicating programs.
    pub fn run_pooled<R, F>(
        spec: &ClusterSpec,
        max_threads: usize,
        f: F,
    ) -> SimResult<WorldOutcome<R>>
    where
        R: Send,
        F: Fn(Rc<RankCtx>) -> SimResult<R> + Sync,
    {
        let pool = WorkerPool::new(max_threads);
        Self::run_pooled_on(spec, &pool, f)
    }

    /// Like [`World::run_pooled`] over a caller-provided (possibly shared)
    /// [`WorkerPool`]. Each rank holds one pool permit for its lifetime;
    /// permits are acquired on the launcher thread in rank order, so
    /// admission is deterministic and FIFO-fair against other users of
    /// the same pool.
    pub fn run_pooled_on<R, F>(
        spec: &ClusterSpec,
        pool: &WorkerPool,
        f: F,
    ) -> SimResult<WorldOutcome<R>>
    where
        R: Send,
        F: Fn(Rc<RankCtx>) -> SimResult<R> + Sync,
    {
        spec.validate().map_err(SimError::InvalidConfig)?;
        let spec = Arc::new(spec.clone());
        let (fabric, endpoints) = Fabric::new(&spec);
        let nranks = spec.nranks();
        let plan = RunPlan::auto(pool.capacity().min(nranks));
        let f = &f;

        let mut slots: Vec<Option<(SimResult<R>, VirtualTime, RankCounters)>> =
            (0..nranks).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nranks);
            for (rank, ep) in endpoints.into_iter().enumerate() {
                // Admission happens here, on the launcher thread: rank N+1
                // is not spawned until a permit frees, and never before
                // rank N was admitted.
                let permit = pool.acquire(1);
                let spec = spec.clone();
                let fabric = fabric.clone();
                let handle = plan
                    .builder(rank)
                    .spawn_scoped(scope, move || {
                        let out = Self::rank_body(rank, spec, fabric, ep, f);
                        drop(permit);
                        out
                    })
                    .expect("spawn rank thread");
                handles.push(handle);
            }
            for handle in handles {
                let (rank, res, clock, counters) = handle.join().expect("rank thread join failed");
                slots[rank] = Some((res, clock, counters));
            }
        });

        Self::collect(slots)
    }

    /// One rank's execution: context construction, panic containment,
    /// fabric shutdown on error.
    fn rank_body<R, F>(
        rank: usize,
        spec: Arc<ClusterSpec>,
        fabric: Fabric,
        ep: crate::fabric::Endpoint,
        f: &F,
    ) -> (usize, SimResult<R>, VirtualTime, RankCounters)
    where
        R: Send,
        F: Fn(Rc<RankCtx>) -> SimResult<R> + Sync,
    {
        let ctx = Rc::new(RankCtx::new(
            rank,
            spec.clone(),
            ep,
            spec.noise.stream_for_rank(rank),
        ));
        let outcome = catch_unwind(AssertUnwindSafe(|| f(ctx.clone())));
        match outcome {
            Ok(res) => {
                if res.is_err() {
                    fabric.shutdown();
                }
                (rank, res, ctx.now(), ctx.counters())
            }
            Err(payload) => {
                if let Some(tel) = fabric.telemetry() {
                    tel.emit_rank(
                        rank,
                        crate::telemetry::EventKind::RankUnwind,
                        ctx.now().as_nanos(),
                        rank as u64,
                        0,
                        0,
                    );
                    tel.note_incident();
                }
                fabric.shutdown();
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".into());
                (
                    rank,
                    Err(SimError::RankPanicked { rank, message }),
                    ctx.now(),
                    ctx.counters(),
                )
            }
        }
    }

    fn collect<R>(
        slots: Vec<Option<(SimResult<R>, VirtualTime, RankCounters)>>,
    ) -> SimResult<WorldOutcome<R>> {
        let mut results = Vec::with_capacity(slots.len());
        let mut clocks = Vec::with_capacity(slots.len());
        let mut counters = Vec::with_capacity(slots.len());
        let mut first_err = None;
        for slot in slots {
            let (res, clock, ctrs) = slot.expect("all ranks recorded");
            clocks.push(clock);
            counters.push(ctrs);
            match res {
                Ok(r) => results.push(r),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(WorldOutcome {
                results,
                clocks,
                counters,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn all_ranks_run_and_report() {
        let spec = ClusterSpec::builder().nodes(2).ranks_per_node(3).build();
        let outcome = World::run(&spec, |ctx| Ok(ctx.rank() * 10)).unwrap();
        assert_eq!(outcome.results, vec![0, 10, 20, 30, 40, 50]);
        assert_eq!(outcome.clocks.len(), 6);
    }

    #[test]
    fn makespan_is_max_clock() {
        let spec = ClusterSpec::builder().nodes(1).ranks_per_node(3).build();
        let outcome = World::run(&spec, |ctx| {
            ctx.advance(VirtualTime::from_micros(ctx.rank() as u64 * 7));
            Ok(())
        })
        .unwrap();
        assert_eq!(outcome.makespan(), VirtualTime::from_micros(14));
    }

    #[test]
    fn ring_exchange_works_across_nodes() {
        let spec = ClusterSpec::builder().nodes(2).ranks_per_node(2).build();
        let outcome = World::run(&spec, |ctx| {
            let n = ctx.nranks();
            let next = (ctx.rank() + 1) % n;
            ctx.endpoint()
                .send_raw(next, 0, 1, Bytes::from(vec![ctx.rank() as u8]), &ctx)?;
            let env = ctx.endpoint().recv_raw_blocking(&ctx)?;
            Ok(env.payload[0] as usize)
        })
        .unwrap();
        assert_eq!(outcome.results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn panic_in_one_rank_is_contained() {
        let spec = ClusterSpec::builder().nodes(1).ranks_per_node(3).build();
        let err = World::run(&spec, |ctx| {
            if ctx.rank() == 1 {
                panic!("deliberate test panic");
            }
            // Other ranks block awaiting a message that never comes; they
            // must be unblocked by the shutdown triggered by the panic.
            let _ = ctx.endpoint().recv_raw();
            Ok(())
        })
        .unwrap_err();
        match err {
            SimError::RankPanicked { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("deliberate"));
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn error_in_one_rank_shuts_down_world() {
        let spec = ClusterSpec::builder().nodes(1).ranks_per_node(2).build();
        let err = World::run(&spec, |ctx| {
            if ctx.rank() == 0 {
                Err(SimError::InvalidConfig("rank 0 aborts".into()))
            } else {
                let _ = ctx.endpoint().recv_raw();
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err, SimError::InvalidConfig("rank 0 aborts".into()));
    }

    #[test]
    fn invalid_spec_rejected_up_front() {
        let mut spec = ClusterSpec::discovery();
        spec.nodes = 0;
        assert!(matches!(
            World::run(&spec, |_| Ok(())),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn deterministic_across_runs_without_noise() {
        let spec = ClusterSpec::builder().nodes(2).ranks_per_node(2).build();
        let run = || {
            World::run(&spec, |ctx| {
                let n = ctx.nranks();
                let next = (ctx.rank() + 1) % n;
                for _ in 0..8 {
                    ctx.endpoint()
                        .send_raw(next, 0, 0, Bytes::from(vec![0u8; 256]), &ctx)?;
                    ctx.endpoint().recv_raw_blocking(&ctx)?;
                }
                Ok(ctx.now())
            })
            .unwrap()
            .results
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn auto_plan_bounds_stacks_for_large_worlds() {
        assert_eq!(RunPlan::auto(48).stack_bytes, None);
        assert_eq!(
            RunPlan::auto(LARGE_WORLD_RANKS).stack_bytes,
            Some(LARGE_WORLD_STACK_BYTES)
        );
        assert_eq!(
            RunPlan::auto(1024).stack_bytes,
            Some(LARGE_WORLD_STACK_BYTES)
        );
    }

    #[test]
    fn bounded_stack_world_runs_fine() {
        let spec = ClusterSpec::builder().nodes(1).ranks_per_node(4).build();
        let outcome = World::run_with(&spec, RunPlan::with_stack_bytes(256 * 1024), |ctx| {
            let n = ctx.nranks();
            let next = (ctx.rank() + 1) % n;
            ctx.endpoint()
                .send_raw(next, 0, 0, Bytes::from(vec![7u8]), &ctx)?;
            let env = ctx.endpoint().recv_raw_blocking(&ctx)?;
            Ok(env.payload[0])
        })
        .unwrap();
        assert_eq!(outcome.results, vec![7; 4]);
    }

    #[test]
    fn pooled_run_bounds_live_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let spec = ClusterSpec::builder().nodes(1).ranks_per_node(12).build();
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let outcome = World::run_pooled(&spec, 3, |ctx| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
            Ok(ctx.rank())
        })
        .unwrap();
        assert_eq!(outcome.results, (0..12).collect::<Vec<_>>());
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "peak {} exceeded the pool bound",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn pooled_run_sends_cross_waves() {
        // Wave 1 ranks send to wave 2 ranks; the mailboxes buffer across
        // waves, so the later ranks receive what earlier ranks queued.
        let spec = ClusterSpec::builder().nodes(1).ranks_per_node(8).build();
        let outcome = World::run_pooled(&spec, 4, |ctx| {
            if ctx.rank() < 4 {
                ctx.endpoint().send_raw(
                    ctx.rank() + 4,
                    0,
                    0,
                    Bytes::from(vec![ctx.rank() as u8]),
                    &ctx,
                )?;
                Ok(0u8)
            } else {
                let env = ctx.endpoint().recv_raw_blocking(&ctx)?;
                Ok(env.payload[0])
            }
        })
        .unwrap();
        assert_eq!(outcome.results[4..], [0, 1, 2, 3]);
    }
}
