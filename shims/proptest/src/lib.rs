//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the `proptest!` macro with
//! optional `#![proptest_config(..)]`, `prop_assert*` / `prop_assume!`,
//! `prop_oneof!`, `any::<T>()`, range strategies, tuple strategies,
//! `collection::vec`, `sample::select`, `prop_map` / `prop_filter`, and
//! string strategies from a regex-like pattern literal.
//!
//! Differences from real proptest: generation is deterministic per test
//! (seeded from the test's name), and failing cases are **not shrunk** —
//! the failing input is reported as-is by the assertion message.

#![forbid(unsafe_code)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Values generable by `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! arb_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut test_runner::TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> f64 {
        // Mix finite magnitudes across scales; avoid mostly-astronomical
        // values a raw bit pattern would produce.
        let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let exp = (rng.next_u64() % 61) as i32 - 30;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * mantissa * 2f64.powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary + Clone + std::fmt::Debug> strategy::Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the unconstrained strategy for `T`.
pub fn any<T: Arbitrary + Clone + std::fmt::Debug>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Everything a `use proptest::prelude::*;` caller expects in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{any, Arbitrary, ProptestConfig};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop` namespace (`prop::sample::select`, `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Assert inside a property; reports the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Discard the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Define property tests. Each argument is drawn from its strategy anew
/// for every case; the body runs once per accepted case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); ) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                #[allow(clippy::redundant_closure_call)]
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::Reject> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 256 * config.cases + 1024,
                            "prop_assume! rejected too many cases in {}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in -5i64..5, f in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn assume_discards(x in 0u8..4) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn combinators_compose(v in prop::collection::vec(0u16..100, 0..8)) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![
            (0u32..10).prop_map(|v| v as u64),
            (100u32..110).prop_map(|v| v as u64),
        ]) {
            prop_assert!(x < 10 || (100..110).contains(&x));
        }

        #[test]
        fn regex_strings_match_shape(s in "[a-z]{1,12}(\\.[a-z0-9]{1,8})?") {
            prop_assert!(!s.is_empty());
            let mut parts = s.split('.');
            let head = parts.next().unwrap();
            prop_assert!((1..=12).contains(&head.len()));
            prop_assert!(head.bytes().all(|b| b.is_ascii_lowercase()));
            if let Some(tail) = parts.next() {
                prop_assert!((1..=8).contains(&tail.len()));
                prop_assert!(tail.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()));
            }
        }

        #[test]
        fn select_picks_members(k in prop::sample::select(vec![2usize, 5, 9])) {
            prop_assert!([2usize, 5, 9].contains(&k));
        }

        #[test]
        fn filter_enforces_predicate(x in any::<f64>().prop_filter("finite", |v| v.is_finite())) {
            prop_assert!(x.is_finite());
        }
    }
}
