//! Runtime lock-order detection: `TrackedMutex` / `TrackedCondvar`.
//!
//! The static `guard-across-barrier` lint catches the lexical form of
//! the PR 6 deadlock; this module catches the *dynamic* forms a lint
//! cannot see — a lock-acquisition cycle built across call boundaries,
//! or a guard still held when a thread walks into a rendezvous.
//!
//! The wrappers are **zero-cost passthroughs** unless the `lockcheck`
//! feature is enabled: without it, every method is an `#[inline]`
//! delegate to `std::sync` and the types carry no extra state. With it,
//! each mutex gets a process-global id and every acquisition:
//!
//! 1. records `held -> acquiring` edges into a global acquisition-order
//!    graph (deduplicated), and walks the graph for a cycle **before**
//!    blocking — a potential deadlock is reported even when this
//!    particular schedule happens to survive;
//! 2. maintains a thread-local held-lock set, so
//!    [`rendezvous_crossing`] (called at barrier entries: the
//!    coordinator rendezvous, gang admission) can flag any guard being
//!    carried into a blocking rank-synchronization point.
//!
//! Incidents accumulate in a global buffer; the session layer drains
//! them with [`take_incidents`] and reports through the flight recorder
//! (`EventKind::LockCycle` + `note_incident`), so a lockcheck hit shows
//! up in the end-of-run crash-dump timeline like any other incident.

use std::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

#[cfg(feature = "lockcheck")]
mod graph {
    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    use super::LockIncident;

    pub(super) static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    pub(super) fn fresh_id() -> u64 {
        NEXT_ID.fetch_add(1, Ordering::Relaxed)
    }

    #[derive(Default)]
    pub(super) struct GraphState {
        /// Deduplicated `from -> to` acquisition-order edges.
        pub edges: BTreeMap<u64, BTreeSet<u64>>,
        /// Lock id -> the name it was registered under.
        pub names: BTreeMap<u64, String>,
        /// Edge pairs already reported (one incident per cycle edge).
        pub reported: BTreeSet<(u64, u64)>,
        /// Incidents awaiting [`super::take_incidents`].
        pub incidents: Vec<LockIncident>,
    }

    pub(super) fn with_graph<R>(f: impl FnOnce(&mut GraphState) -> R) -> R {
        static GRAPH: OnceLock<Mutex<GraphState>> = OnceLock::new();
        let m = GRAPH.get_or_init(|| Mutex::new(GraphState::default()));
        let mut g = m.lock().unwrap_or_else(|p| p.into_inner());
        f(&mut g)
    }

    /// Is `to` reachable from `from` over recorded edges?
    pub(super) fn reachable(g: &GraphState, from: u64, to: u64) -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = g.edges.get(&n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    thread_local! {
        /// Lock ids (with names) this thread currently holds, in
        /// acquisition order.
        pub(super) static HELD: RefCell<Vec<(u64, String)>> = const { RefCell::new(Vec::new()) };
    }
}

/// One detected lock-discipline violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockIncident {
    /// Acquiring `acquire` while holding `held` closes a cycle in the
    /// acquisition-order graph: another thread (now or in a future
    /// schedule) can take them in the opposite order and deadlock.
    Cycle {
        /// Name of the lock already held.
        held: String,
        /// Name of the lock being acquired.
        acquire: String,
    },
    /// A thread re-entered a lock it already holds (self-deadlock with
    /// `std::sync::Mutex`).
    Reentrant {
        /// Name of the re-entered lock.
        lock: String,
    },
    /// A thread reached a rendezvous point (rank barrier, gang
    /// admission) while still holding guards — the PR 6 class: the
    /// barrier parks the thread, the guard blocks every peer.
    GuardAcrossRendezvous {
        /// Label of the crossing point.
        barrier: String,
        /// Names of the guards still held.
        held: Vec<String>,
    },
}

impl LockIncident {
    /// Stable small-int code for telemetry payloads (0 = cycle,
    /// 1 = reentrant, 2 = guard-across-rendezvous).
    pub fn code(&self) -> u64 {
        match self {
            LockIncident::Cycle { .. } => 0,
            LockIncident::Reentrant { .. } => 1,
            LockIncident::GuardAcrossRendezvous { .. } => 2,
        }
    }

    /// How many locks the incident involves.
    pub fn locks(&self) -> u64 {
        match self {
            LockIncident::Cycle { .. } => 2,
            LockIncident::Reentrant { .. } => 1,
            LockIncident::GuardAcrossRendezvous { held, .. } => held.len() as u64,
        }
    }

    /// One-line human description.
    pub fn summary(&self) -> String {
        match self {
            LockIncident::Cycle { held, acquire } => {
                format!("lock-order cycle: `{acquire}` acquired while holding `{held}` closes a reverse-order path")
            }
            LockIncident::Reentrant { lock } => {
                format!("re-entrant acquisition of `{lock}` (self-deadlock)")
            }
            LockIncident::GuardAcrossRendezvous { barrier, held } => {
                format!("guard(s) {held:?} held across rendezvous `{barrier}`")
            }
        }
    }

    /// FNV-1a hash of the summary — a stable fingerprint that fits a
    /// telemetry payload word.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.summary().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Whether lockcheck bookkeeping is compiled in.
pub fn enabled() -> bool {
    cfg!(feature = "lockcheck")
}

/// Drain every incident recorded since the last call. Always callable;
/// returns empty when the `lockcheck` feature is off.
pub fn take_incidents() -> Vec<LockIncident> {
    #[cfg(feature = "lockcheck")]
    {
        graph::with_graph(|g| std::mem::take(&mut g.incidents))
    }
    #[cfg(not(feature = "lockcheck"))]
    {
        Vec::new()
    }
}

/// How many incidents are waiting to be drained.
pub fn pending_incidents() -> usize {
    #[cfg(feature = "lockcheck")]
    {
        graph::with_graph(|g| g.incidents.len())
    }
    #[cfg(not(feature = "lockcheck"))]
    {
        0
    }
}

/// Declare a rendezvous crossing: the calling thread is about to park
/// in a rank-synchronization point (`finish()` barrier, gang
/// admission). With `lockcheck` on, any tracked guard still held by
/// this thread is reported as a [`LockIncident::GuardAcrossRendezvous`].
#[inline]
pub fn rendezvous_crossing(label: &str) {
    #[cfg(feature = "lockcheck")]
    {
        let held: Vec<String> =
            graph::HELD.with(|h| h.borrow().iter().map(|(_, n)| n.clone()).collect());
        if !held.is_empty() {
            graph::with_graph(|g| {
                g.incidents.push(LockIncident::GuardAcrossRendezvous {
                    barrier: label.to_string(),
                    held,
                });
            });
        }
    }
    #[cfg(not(feature = "lockcheck"))]
    {
        let _ = label;
    }
}

// ---------------------------------------------------------------------------
// TrackedMutex
// ---------------------------------------------------------------------------

/// A `std::sync::Mutex` that, under the `lockcheck` feature, feeds the
/// global acquisition-order graph. API mirrors `std` (`lock` returns a
/// `LockResult`), so adoption is a type change, not a call-site change.
pub struct TrackedMutex<T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    id: u64,
    #[cfg(feature = "lockcheck")]
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// An anonymous tracked mutex (named by its id in reports).
    pub fn new(value: T) -> TrackedMutex<T> {
        Self::named("mutex", value)
    }

    /// A tracked mutex carrying a diagnostic name.
    pub fn named(name: &'static str, value: T) -> TrackedMutex<T> {
        #[cfg(not(feature = "lockcheck"))]
        {
            let _ = name;
        }
        TrackedMutex {
            #[cfg(feature = "lockcheck")]
            id: graph::fresh_id(),
            #[cfg(feature = "lockcheck")]
            name,
            inner: Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> TrackedMutex<T> {
    /// Acquire, recording acquisition-order edges and checking for
    /// cycles *before* blocking when `lockcheck` is on.
    #[inline]
    pub fn lock(&self) -> LockResult<TrackedMutexGuard<'_, T>> {
        #[cfg(feature = "lockcheck")]
        self.before_lock();
        match self.inner.lock() {
            Ok(g) => Ok(self.wrap(g)),
            Err(p) => Err(PoisonError::new(self.wrap(p.into_inner()))),
        }
    }

    /// Mutable access without locking (mirrors `std`).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }

    fn wrap<'a>(&'a self, inner: MutexGuard<'a, T>) -> TrackedMutexGuard<'a, T> {
        #[cfg(feature = "lockcheck")]
        graph::HELD.with(|h| h.borrow_mut().push((self.id, self.name.to_string())));
        TrackedMutexGuard {
            #[cfg(feature = "lockcheck")]
            id: self.id,
            #[cfg(feature = "lockcheck")]
            name: self.name,
            inner: Some(inner),
        }
    }

    #[cfg(feature = "lockcheck")]
    fn before_lock(&self) {
        let held: Vec<(u64, String)> = graph::HELD.with(|h| h.borrow().clone());
        if held.is_empty() {
            return;
        }
        graph::with_graph(|g| {
            g.names
                .entry(self.id)
                .or_insert_with(|| self.name.to_string());
            if held.iter().any(|(id, _)| *id == self.id) {
                g.incidents.push(LockIncident::Reentrant {
                    lock: self.name.to_string(),
                });
                return;
            }
            for (held_id, held_name) in &held {
                let new_edge = g.edges.entry(*held_id).or_default().insert(self.id);
                g.names.entry(*held_id).or_insert_with(|| held_name.clone());
                if new_edge
                    && graph::reachable(g, self.id, *held_id)
                    && g.reported.insert((*held_id, self.id))
                {
                    g.incidents.push(LockIncident::Cycle {
                        held: held_name.clone(),
                        acquire: self.name.to_string(),
                    });
                }
            }
        });
    }
}

impl<T: Default> Default for TrackedMutex<T> {
    fn default() -> TrackedMutex<T> {
        TrackedMutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard of a [`TrackedMutex`]; removes itself from the thread's
/// held-lock set on drop.
pub struct TrackedMutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    id: u64,
    #[cfg(feature = "lockcheck")]
    #[allow(dead_code)]
    name: &'static str,
    /// `Option` so [`TrackedCondvar::wait`] can take the inner guard
    /// out while the thread sleeps (the lock is not held then).
    inner: Option<MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lockcheck")]
        if self.inner.is_some() {
            unregister(self.id);
        }
    }
}

#[cfg(feature = "lockcheck")]
fn unregister(id: u64) {
    graph::HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|(i, _)| *i == id) {
            held.remove(pos);
        }
    });
}

#[cfg(feature = "lockcheck")]
fn reregister(id: u64, name: &'static str) {
    graph::HELD.with(|h| h.borrow_mut().push((id, name.to_string())));
}

// ---------------------------------------------------------------------------
// TrackedCondvar
// ---------------------------------------------------------------------------

/// A `std::sync::Condvar` over [`TrackedMutex`] guards. While a thread
/// waits, the guard leaves its held-lock set (the lock really is
/// released) and re-enters it on wake.
#[derive(Default)]
pub struct TrackedCondvar {
    inner: Condvar,
}

impl TrackedCondvar {
    /// A new condition variable.
    pub fn new() -> TrackedCondvar {
        TrackedCondvar {
            inner: Condvar::new(),
        }
    }

    /// Wake one waiter.
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified, releasing (and re-taking) the guard.
    pub fn wait<'a, T>(
        &self,
        mut guard: TrackedMutexGuard<'a, T>,
    ) -> LockResult<TrackedMutexGuard<'a, T>> {
        let inner = guard.inner.take().expect("guard taken");
        #[cfg(feature = "lockcheck")]
        let (id, name) = (guard.id, guard.name);
        #[cfg(feature = "lockcheck")]
        unregister(id);
        let result = self.inner.wait(inner);
        #[cfg(feature = "lockcheck")]
        reregister(id, name);
        match result {
            Ok(g) => {
                guard.inner = Some(g);
                Ok(guard)
            }
            Err(p) => {
                guard.inner = Some(p.into_inner());
                Err(PoisonError::new(guard))
            }
        }
    }

    /// Block until notified or `dur` elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: TrackedMutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(TrackedMutexGuard<'a, T>, std::sync::WaitTimeoutResult)> {
        let inner = guard.inner.take().expect("guard taken");
        #[cfg(feature = "lockcheck")]
        let (id, name) = (guard.id, guard.name);
        #[cfg(feature = "lockcheck")]
        unregister(id);
        let result = self.inner.wait_timeout(inner, dur);
        #[cfg(feature = "lockcheck")]
        reregister(id, name);
        match result {
            Ok((g, t)) => {
                guard.inner = Some(g);
                Ok((guard, t))
            }
            Err(p) => {
                let (g, t) = p.into_inner();
                guard.inner = Some(g);
                Err(PoisonError::new((guard, t)))
            }
        }
    }
}

#[cfg(all(test, feature = "lockcheck"))]
mod tests {
    use super::*;

    // One #[test] on purpose: the incident buffer is process-global and
    // `take_incidents` drains it, so parallel tests would steal each
    // other's reports.
    #[test]
    fn cycle_rendezvous_and_condvar_detection() {
        cycle_and_rendezvous_detection();
        condvar_wait_releases_the_held_set();
    }

    fn cycle_and_rendezvous_detection() {
        // Thread 1 takes A then B; thread 2 takes B then A: the second
        // ordering closes a cycle in the global graph.
        let a = std::sync::Arc::new(TrackedMutex::named("cycle.a", 0u32));
        let b = std::sync::Arc::new(TrackedMutex::named("cycle.b", 0u32));
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        let incidents = take_incidents();
        assert!(
            incidents
                .iter()
                .any(|i| matches!(i, LockIncident::Cycle { .. })),
            "BA after AB must report a cycle, got {incidents:?}"
        );

        // A guard carried into a rendezvous crossing is its own incident.
        let _g = a.lock().unwrap();
        rendezvous_crossing("test.barrier");
        let incidents = take_incidents();
        assert!(
            incidents.iter().any(|i| matches!(
                i,
                LockIncident::GuardAcrossRendezvous { barrier, .. } if barrier == "test.barrier"
            )),
            "crossing with a held guard must report, got {incidents:?}"
        );
    }

    fn condvar_wait_releases_the_held_set() {
        let m = TrackedMutex::named("cv.m", false);
        let cv = TrackedCondvar::new();
        let guard = m.lock().unwrap();
        let (guard, timed_out) = cv.wait_timeout(guard, Duration::from_millis(1)).unwrap();
        assert!(timed_out.timed_out());
        drop(guard);
        // No guard held now: crossing is clean. (Scoped to this test's
        // barrier label — the incident buffer is process-global.)
        rendezvous_crossing("cv.barrier");
        let incidents = take_incidents();
        assert!(
            !incidents.iter().any(|i| matches!(
                i,
                LockIncident::GuardAcrossRendezvous { barrier, .. } if barrier == "cv.barrier"
            )),
            "clean crossing must not report, got {incidents:?}"
        );
    }
}
