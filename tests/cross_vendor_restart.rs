//! The headline capability (paper §5.3, Fig. 6): checkpoint under one MPI
//! implementation, restart under another, with no change to the answer.

use mpi_stool::apps::{CoMdMini, OsuKernel, OsuLatency, WaveMpi};
use mpi_stool::dmtcp::{CkptMode, DeltaStore, ManifestFormat, StoreConfig, WorldImage};
use mpi_stool::simnet::{ClusterSpec, Interconnect, KernelVersion, VirtualTime};
use mpi_stool::stool::programs::RingPings;
use mpi_stool::stool::{Checkpointer, MpiProgram, Session, Vendor};

fn cluster() -> ClusterSpec {
    ClusterSpec::builder().nodes(2).ranks_per_node(3).build()
}

fn reference_memories(program: &dyn MpiProgram, vendor: Vendor) -> Vec<mpi_stool::stool::Memory> {
    Session::builder()
        .cluster(cluster())
        .vendor(vendor)
        .checkpointer(Checkpointer::mana())
        .build()
        .unwrap()
        .launch(program)
        .unwrap()
        .memories()
        .unwrap()
        .to_vec()
}

/// Like the plain helpers but with the shim's canonical rank-ordered
/// reductions enabled in every session.
mod det {
    use super::*;

    pub fn reference(program: &dyn MpiProgram, vendor: Vendor) -> Vec<mpi_stool::stool::Memory> {
        Session::builder()
            .cluster(cluster())
            .vendor(vendor)
            .checkpointer(Checkpointer::mana())
            .deterministic_reductions()
            .build()
            .unwrap()
            .launch(program)
            .unwrap()
            .memories()
            .unwrap()
            .to_vec()
    }

    pub fn checkpoint_at(program: &dyn MpiProgram, vendor: Vendor, step: u64) -> WorldImage {
        Session::builder()
            .cluster(cluster())
            .vendor(vendor)
            .checkpointer(Checkpointer::mana())
            .deterministic_reductions()
            .checkpoint_at_step(step, CkptMode::Stop)
            .build()
            .unwrap()
            .launch(program)
            .unwrap()
            .into_image()
            .unwrap()
    }

    pub fn restore_under(
        program: &dyn MpiProgram,
        image: &WorldImage,
        vendor: Vendor,
    ) -> Vec<mpi_stool::stool::Memory> {
        Session::builder()
            .cluster(cluster())
            .vendor(vendor)
            .checkpointer(Checkpointer::mana())
            .deterministic_reductions()
            .build()
            .unwrap()
            .restore(image, program)
            .unwrap()
            .memories()
            .unwrap()
            .to_vec()
    }
}

fn checkpoint_at(program: &dyn MpiProgram, vendor: Vendor, step: u64) -> WorldImage {
    Session::builder()
        .cluster(cluster())
        .vendor(vendor)
        .checkpointer(Checkpointer::mana())
        .checkpoint_at_step(step, CkptMode::Stop)
        .build()
        .unwrap()
        .launch(program)
        .unwrap()
        .into_image()
        .unwrap()
}

fn restore_under(
    program: &dyn MpiProgram,
    image: &WorldImage,
    vendor: Vendor,
) -> Vec<mpi_stool::stool::Memory> {
    Session::builder()
        .cluster(cluster())
        .vendor(vendor)
        .checkpointer(Checkpointer::mana())
        .build()
        .unwrap()
        .restore(image, program)
        .unwrap()
        .memories()
        .unwrap()
        .to_vec()
}

/// Bitwise memory comparison, with named exceptions compared to within a
/// few ULPs instead. The exceptions are floating-point *reduction results*:
/// real MPI implementations (and our vendor simulations, faithfully) use
/// different association orders in `MPI_Allreduce`, so a value computed
/// under MPICH may differ in its last bits from the same value computed
/// under Open MPI. Everything else — all point-to-point-driven state — must
/// match exactly.
fn assert_memories_equal_with_ulps(
    a: &[mpi_stool::stool::Memory],
    b: &[mpi_stool::stool::Memory],
    ulp_segments: &[&str],
    max_ulps: u64,
) {
    assert_eq!(a.len(), b.len());
    for (rank, (ma, mb)) in a.iter().zip(b).enumerate() {
        let mut names_a: Vec<&str> = ma.names().collect();
        let mut names_b: Vec<&str> = mb.names().collect();
        names_a.sort_unstable();
        names_b.sort_unstable();
        assert_eq!(names_a, names_b, "rank {rank}: memory layout differs");
        for name in names_a {
            let loose = ulp_segments.contains(&name);
            let (wa, wb) = (ma.f64s(name), mb.f64s(name));
            match (wa, wb) {
                (Some(xa), Some(xb)) => {
                    assert_eq!(xa.len(), xb.len(), "rank {rank} segment {name}");
                    for (i, (x, y)) in xa.iter().zip(xb).enumerate() {
                        if loose {
                            let (bx, by) = (x.to_bits() as i64, y.to_bits() as i64);
                            assert!(
                                bx.abs_diff(by) <= max_ulps,
                                "rank {rank} segment {name}[{i}]: {x} vs {y}                                  differ by more than {max_ulps} ULPs"
                            );
                        } else {
                            assert_eq!(x.to_bits(), y.to_bits(), "rank {rank} segment {name}[{i}]");
                        }
                    }
                }
                _ => {
                    assert_eq!(ma.bytes(name), mb.bytes(name), "rank {rank} segment {name}");
                    assert_eq!(ma.u64s(name), mb.u64s(name), "rank {rank} segment {name}");
                    assert_eq!(ma.i64s(name), mb.i64s(name), "rank {rank} segment {name}");
                }
            }
        }
    }
}

fn assert_memories_equal(a: &[mpi_stool::stool::Memory], b: &[mpi_stool::stool::Memory]) {
    assert_memories_equal_with_ulps(a, b, &[], 0);
}

#[test]
fn ring_openmpi_to_mpich() {
    let program = RingPings {
        rounds: 10,
        payload: 8,
    };
    let expect = reference_memories(&program, Vendor::OpenMpi);
    let image = checkpoint_at(&program, Vendor::OpenMpi, 5);
    let got = restore_under(&program, &image, Vendor::Mpich);
    assert_memories_equal(&expect, &got);
}

#[test]
fn ring_mpich_to_openmpi() {
    // The paper demonstrates both directions ("and vice versa").
    let program = RingPings {
        rounds: 10,
        payload: 8,
    };
    let expect = reference_memories(&program, Vendor::Mpich);
    let image = checkpoint_at(&program, Vendor::Mpich, 5);
    let got = restore_under(&program, &image, Vendor::OpenMpi);
    assert_memories_equal(&expect, &got);
}

#[test]
fn wave_cross_vendor_bitwise_identical() {
    let solver = WaveMpi {
        npoints: 200,
        nsteps: 100,
        gather_final: true,
        ..WaveMpi::default()
    };
    let expect = reference_memories(&solver, Vendor::OpenMpi);
    let image = checkpoint_at(&solver, Vendor::OpenMpi, 50);
    let got = restore_under(&solver, &image, Vendor::Mpich);
    assert_memories_equal(&expect, &got);
}

#[test]
fn comd_cross_vendor_bitwise_with_deterministic_reductions() {
    // With the shim folding reductions in canonical rank order, even the
    // f64 energy diagnostics become a pure function of the inputs: the
    // whole memory image is bitwise identical across the vendor switch —
    // no ULP tolerance needed anywhere.
    let md = CoMdMini {
        nsteps: 24,
        ..CoMdMini::default()
    };
    let expect = det::reference(&md, Vendor::Mpich);
    let image = det::checkpoint_at(&md, Vendor::Mpich, 12);
    let got = det::restore_under(&md, &image, Vendor::OpenMpi);
    assert_memories_equal(&expect, &got);
}

#[test]
fn deterministic_reductions_match_vendor_answers_on_integers() {
    // On exactly-representable data the canonical fold must agree with
    // the vendor algorithms (it only changes association, not values).
    let program = RingPings {
        rounds: 6,
        payload: 4,
    };
    let plain = reference_memories(&program, Vendor::OpenMpi);
    let det = det::reference(&program, Vendor::OpenMpi);
    assert_memories_equal(&plain, &det);
}

#[test]
fn deterministic_reductions_require_the_shim() {
    let err = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::Mpich)
        .native_abi()
        .deterministic_reductions()
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("Mukautuva"));
}

#[test]
fn comd_cross_vendor_trajectory_identical() {
    let md = CoMdMini {
        nsteps: 24,
        ..CoMdMini::default()
    };
    let expect = reference_memories(&md, Vendor::Mpich);
    let image = checkpoint_at(&md, Vendor::Mpich, 12);
    let got = restore_under(&md, &image, Vendor::OpenMpi);
    // Positions and velocities evolve through deterministic point-to-point
    // halo exchange: bitwise identical across the vendor switch. The
    // energy *diagnostics* are f64 allreduce results; entries recorded
    // after the restore were reduced under Open MPI's association order
    // and may differ in the last bits — exactly as with the real
    // libraries.
    assert_memories_equal_with_ulps(&expect, &got, &["comd.energy", "comd.ke", "comd.pe"], 4);
}

#[test]
fn osu_checkpoint_in_sleep_window_like_fig6() {
    // The paper's §5.3 protocol: the modified alltoall sleeps after warmup;
    // the checkpoint lands in that window (step 1 = first measured size,
    // requested at the safe point right after the window).
    let bench = OsuLatency {
        kernel: OsuKernel::Alltoall,
        min_size: 1,
        max_size: 512,
        warmup: 2,
        iters: 4,
        ckpt_window: Some(VirtualTime::from_secs(10)),
    };
    let expect = reference_memories(&bench, Vendor::OpenMpi);
    let image = checkpoint_at(&bench, Vendor::OpenMpi, 1);
    let got = restore_under(&bench, &image, Vendor::Mpich);
    // Latencies differ between vendors (that is Fig. 6's point: the curve
    // after restart follows MPICH); only the *shape* of memory matches.
    assert_eq!(expect.len(), got.len());
    let lat = got[0].f64s("osu.lat_us").expect("latencies");
    assert_eq!(lat.len(), bench.sizes().len());
    assert!(lat.iter().all(|&l| l > 0.0));
}

#[test]
fn restart_on_a_different_cluster() {
    // Migration across heterogeneous clusters (paper §1): restore onto a
    // cluster with a different interconnect and newer kernel.
    let program = RingPings {
        rounds: 8,
        payload: 16,
    };
    let expect = reference_memories(&program, Vendor::OpenMpi);
    let image = checkpoint_at(&program, Vendor::OpenMpi, 4);

    let new_cluster = ClusterSpec::builder()
        .nodes(3)
        .ranks_per_node(2) // same world size, different layout
        .interconnect(Interconnect::Infiniband)
        .kernel(KernelVersion::MODERN)
        .build();
    let got = Session::builder()
        .cluster(new_cluster)
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .build()
        .unwrap()
        .restore(&image, &program)
        .unwrap()
        .memories()
        .unwrap()
        .to_vec();
    assert_memories_equal(&expect, &got);
}

#[test]
fn image_survives_disk_roundtrip() {
    let program = RingPings {
        rounds: 6,
        payload: 8,
    };
    let image = checkpoint_at(&program, Vendor::OpenMpi, 3);
    let dir = std::env::temp_dir().join(format!("stool-image-rt-{}", std::process::id()));
    image.save_dir(&dir).expect("save");
    let loaded = WorldImage::load_dir(&dir).expect("load");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(loaded.nranks(), image.nranks());
    assert_eq!(loaded.vendor_hint, image.vendor_hint);
    assert_eq!(loaded.total_bytes(), image.total_bytes());

    let expect = reference_memories(&program, Vendor::OpenMpi);
    let got = restore_under(&program, &loaded, Vendor::Mpich);
    assert_memories_equal(&expect, &got);
}

#[test]
fn wave_delta_chain_mpich_kill_restart_openmpi() {
    // The tentpole scenario: periodic delta checkpoints into the epoch
    // chain under MPICH, the world killed by an injected failure, restart
    // reconstructed from the chain under Open MPI (through the shim) with
    // bit-identical application state.
    let solver = WaveMpi {
        npoints: 1200,
        nsteps: 100,
        gather_final: true,
        ..WaveMpi::default()
    };
    let expect = reference_memories(&solver, Vendor::Mpich);

    let dir = std::env::temp_dir().join(format!("stool-delta-chain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store_cfg = StoreConfig {
        block_size: 256,
        ..StoreConfig::default()
    };
    let out = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .checkpoint_every(20)
        .checkpoint_store_with(&dir, store_cfg)
        .inject_node_failure(75, 1)
        .build()
        .unwrap()
        .launch(&solver)
        .unwrap();
    assert!(out.is_failed(), "the injected failure must kill the world");

    // Epochs at steps 20/40/60 landed on disk as a chain: one full base,
    // then deltas that write less than the logical image.
    let store = DeltaStore::open_with(&dir, store_cfg).unwrap();
    assert!(
        store.epochs().len() >= 3,
        "expected >= 3 epochs, got {:?}",
        store.epochs()
    );
    let stats = store.epoch_stats_on_disk().unwrap();
    assert!(stats[0].full, "the chain starts with a full base");
    for s in &stats[1..] {
        assert!(!s.full, "later epochs are deltas: {s:?}");
        assert!(
            s.bytes_written < stats[0].bytes_written,
            "delta epoch must write fewer bytes than the full base: {s:?} vs {:?}",
            stats[0]
        );
        assert!(
            s.blocks_new < s.blocks_total,
            "unchanged blocks dedup: {s:?}"
        );
    }

    let image = store.load_latest().unwrap();
    assert_eq!(image.vendor_hint, "MPICH");

    // Restart the reconstructed image under the other vendor.
    let got = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::OpenMpi)
        .checkpointer(Checkpointer::mana())
        .build()
        .unwrap()
        .restore(&image, &solver)
        .unwrap()
        .memories()
        .unwrap()
        .to_vec();
    assert_memories_equal(&expect, &got);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wave_restarts_bit_identically_from_a_v1_chain() {
    // Backward compatibility: a chain written in the legacy (PR 2)
    // manifest format — raw blocks, no codec byte — must restore under
    // the other vendor exactly like a current chain does.
    let solver = WaveMpi {
        npoints: 600,
        nsteps: 80,
        gather_final: true,
        ..WaveMpi::default()
    };
    let expect = reference_memories(&solver, Vendor::Mpich);

    let dir = std::env::temp_dir().join(format!("stool-v1-chain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let v1_cfg = StoreConfig {
        block_size: 256,
        format: ManifestFormat::V1,
        ..StoreConfig::default()
    };
    let out = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .checkpoint_every(20)
        .checkpoint_store_with(&dir, v1_cfg)
        .inject_node_failure(65, 0)
        .build()
        .unwrap()
        .launch(&solver)
        .unwrap();
    assert!(out.is_failed());

    // A *current* store config opens the legacy chain transparently.
    let store = DeltaStore::open_with(&dir, StoreConfig::default()).unwrap();
    assert!(store.epochs().len() >= 3, "epochs: {:?}", store.epochs());
    let stats = store.epoch_stats_on_disk().unwrap();
    for s in &stats {
        assert_eq!(
            s.bytes_hashed, s.image_bytes,
            "v1 chains predate dirty tracking: full-hash accounting"
        );
        // v1 blocks are stored raw: the blocks file is exactly the raw
        // payload of the epoch's new blocks.
        let blocks = dir.join(format!("epoch_{:06}", s.epoch)).join("blocks.bin");
        assert_eq!(
            std::fs::metadata(&blocks).unwrap().len(),
            s.new_block_raw_bytes,
            "epoch {}",
            s.epoch
        );
    }
    let image = store.load_latest().unwrap();
    let got = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::OpenMpi)
        .checkpointer(Checkpointer::mana())
        .build()
        .unwrap()
        .restore(&image, &solver)
        .unwrap()
        .memories()
        .unwrap()
        .to_vec();
    assert_memories_equal(&expect, &got);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wave_restarts_from_quarantined_head_chain() {
    // A rotted chain-head manifest must not strand the job: open
    // quarantines the broken head (renamed *.bad) and restart proceeds
    // from the newest readable epoch — older state, same final answer.
    let solver = WaveMpi {
        npoints: 600,
        nsteps: 80,
        gather_final: true,
        ..WaveMpi::default()
    };
    let expect = reference_memories(&solver, Vendor::Mpich);

    let dir = std::env::temp_dir().join(format!("stool-quarantine-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store_cfg = StoreConfig {
        block_size: 256,
        retain_epochs: 8,
        ..StoreConfig::default()
    };
    let out = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .checkpoint_every(20)
        .checkpoint_store_with(&dir, store_cfg)
        .inject_node_failure(65, 1)
        .build()
        .unwrap()
        .launch(&solver)
        .unwrap();
    assert!(out.is_failed());

    // Rot the head epoch's manifest on disk.
    let head = {
        let store = DeltaStore::open_with(&dir, store_cfg).unwrap();
        assert!(store.epochs().len() >= 2, "epochs: {:?}", store.epochs());
        *store.epochs().last().unwrap()
    };
    let manifest = dir.join(format!("epoch_{head:06}")).join("manifest.bin");
    let mut buf = std::fs::read(&manifest).unwrap();
    let mid = buf.len() / 2;
    buf[mid] ^= 0xFF;
    std::fs::write(&manifest, &buf).unwrap();

    let store = DeltaStore::open_with(&dir, store_cfg).unwrap();
    assert_eq!(store.quarantined(), &[head], "broken head set aside");
    assert_eq!(store.latest(), Some(head - 1), "fell back one epoch");
    assert!(
        dir.join(format!("epoch_{head:06}.bad")).is_dir(),
        "quarantined head preserved for forensics"
    );

    let image = store.load_latest().unwrap();
    assert_eq!(image.vendor_hint, "MPICH");
    let got = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::OpenMpi)
        .checkpointer(Checkpointer::mana())
        .build()
        .unwrap()
        .restore(&image, &solver)
        .unwrap()
        .memories()
        .unwrap()
        .to_vec();
    assert_memories_equal(&expect, &got);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wave_remote_tier_only_restart_under_other_vendor() {
    // The PR 5 headline: periodic delta checkpoints under MPICH ship to
    // the remote second tier; the node dies AND takes its local store
    // directory with it; restart under Open MPI hydrates the chain from
    // the tier alone and the application state is bit-identical.
    let solver = WaveMpi {
        npoints: 900,
        nsteps: 100,
        gather_final: true,
        ..WaveMpi::default()
    };
    let expect = reference_memories(&solver, Vendor::Mpich);

    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("stool-tier-chain-{pid}"));
    let tier_dir = std::env::temp_dir().join(format!("stool-tier-remote-{pid}"));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&tier_dir);
    let store_cfg = StoreConfig {
        block_size: 256,
        ..StoreConfig::default()
    };
    let out = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .checkpoint_every(20)
        .checkpoint_store_with(&dir, store_cfg)
        .checkpoint_tier(&tier_dir)
        .inject_node_failure(75, 1)
        .build()
        .unwrap()
        .launch(&solver)
        .unwrap();
    assert!(out.is_failed(), "the injected failure must kill the world");

    // The chain shipped: every local epoch is sealed in the tier.
    {
        let store = DeltaStore::open_with_tier(
            &dir,
            store_cfg,
            std::sync::Arc::new(mpi_stool::dmtcp::FsTier::open(&tier_dir).unwrap()),
            mpi_stool::dmtcp::TierConfig::default(),
        )
        .unwrap();
        store.tier_flush().unwrap();
        let durable = store.tier_durable();
        assert!(
            store.epochs().iter().all(|e| durable.contains(e)),
            "epochs {:?} vs durable {durable:?}",
            store.epochs()
        );
        assert!(durable.len() >= 3, "expected >= 3 shipped epochs");
    }

    // The storage boundary: the node-local chain is gone entirely.
    std::fs::remove_dir_all(&dir).unwrap();

    // Restore under the other vendor, from the remote tier alone.
    let got = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::OpenMpi)
        .checkpointer(Checkpointer::mana())
        .checkpoint_store_with(&dir, store_cfg)
        .checkpoint_tier(&tier_dir)
        .build()
        .unwrap()
        .restore_from_store(&solver)
        .unwrap()
        .memories()
        .unwrap()
        .to_vec();
    assert_memories_equal(&expect, &got);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&tier_dir).ok();
}

#[test]
fn restore_from_store_under_other_vendor() {
    // The one-call path: a store-backed session restarts its own chain
    // directly, under a different vendor than wrote it.
    let program = RingPings {
        rounds: 12,
        payload: 16,
    };
    let expect = reference_memories(&program, Vendor::OpenMpi);
    let dir = std::env::temp_dir().join(format!("stool-store-restore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let out = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::OpenMpi)
        .checkpointer(Checkpointer::mana())
        .checkpoint_at_step(5, CkptMode::Stop)
        .checkpoint_store(&dir)
        .build()
        .unwrap()
        .launch(&program)
        .unwrap();
    // The stop-outcome image is reconstructed from the chain head.
    let image = out.into_image().unwrap();
    assert_eq!(image.vendor_hint, "Open MPI");

    let got = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .checkpoint_store(&dir)
        .build()
        .unwrap()
        .restore_from_store(&program)
        .unwrap()
        .memories()
        .unwrap()
        .to_vec();
    assert_memories_equal(&expect, &got);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repeated_checkpoint_restart_chain() {
    // Checkpoint, restore, checkpoint again under the other vendor, restore
    // again under the first: a full zig-zag.
    let program = RingPings {
        rounds: 12,
        payload: 8,
    };
    let expect = reference_memories(&program, Vendor::Mpich);

    let image1 = checkpoint_at(&program, Vendor::OpenMpi, 3);
    // Restore under MPICH but stop again at step 8.
    let image2 = Session::builder()
        .cluster(cluster())
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .checkpoint_at_step(8, CkptMode::Stop)
        .build()
        .unwrap()
        .restore(&image1, &program)
        .unwrap()
        .into_image()
        .unwrap();
    assert_eq!(image2.vendor_hint, "MPICH");
    let got = restore_under(&program, &image2, Vendor::OpenMpi);
    assert_memories_equal(&expect, &got);
}

#[test]
fn checkpoint_at_every_step_gives_same_answer() {
    let program = RingPings {
        rounds: 6,
        payload: 4,
    };
    let expect = reference_memories(&program, Vendor::Mpich);
    for step in 0..6 {
        let image = checkpoint_at(&program, Vendor::OpenMpi, step);
        let got = restore_under(&program, &image, Vendor::Mpich);
        assert_memories_equal(&expect, &got);
    }
}
