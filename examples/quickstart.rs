//! Quickstart: the three-legged stool in ~60 lines.
//!
//! Compile an MPI program once (against the standard ABI), then pick the
//! MPI library and the checkpointing package independently at launch time.
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpi_stool::simnet::ClusterSpec;
use mpi_stool::stool::programs::RingPings;
use mpi_stool::stool::{Checkpointer, CkptMode, Session, Vendor};

fn main() {
    // A small simulated cluster: 2 nodes x 2 ranks, 10 GbE between nodes.
    let cluster = ClusterSpec::builder().nodes(2).ranks_per_node(2).build();

    // The "application binary": written once against the standard ABI.
    let program = RingPings {
        rounds: 8,
        payload: 64,
    };

    // Leg 2 of the stool: choose the MPI library freely.
    for vendor in [Vendor::Mpich, Vendor::OpenMpi] {
        let session = Session::builder()
            .cluster(cluster.clone())
            .vendor(vendor)
            // Leg 3: choose the checkpointing package freely.
            .checkpointer(Checkpointer::mana())
            .build()
            .expect("valid session");
        let out = session.launch(&program).expect("launch");
        let total = out.memories().expect("completed")[0]
            .get_f64("ring.total")
            .expect("program output");
        println!(
            "{:<28} ring total = {:>8.1}   makespan = {:.3} ms",
            session.label(),
            total,
            out.makespan().as_micros_f64() / 1000.0
        );
    }

    // The headline capability (paper Fig. 6): checkpoint under Open MPI...
    let image = Session::builder()
        .cluster(cluster.clone())
        .vendor(Vendor::OpenMpi)
        .checkpointer(Checkpointer::mana())
        .checkpoint_at_step(4, CkptMode::Stop)
        .build()
        .expect("valid session")
        .launch(&program)
        .expect("launch")
        .into_image()
        .expect("checkpoint-stopped");
    println!(
        "\ncheckpointed at step 4 under {} ({} ranks, {} bytes of upper-half memory)",
        image.vendor_hint,
        image.nranks(),
        image.total_bytes()
    );

    // ... and restart under MPICH. The computation finishes with the same
    // answer it would have produced uninterrupted.
    let out = Session::builder()
        .cluster(cluster)
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .build()
        .expect("valid session")
        .restore(&image, &program)
        .expect("restore");
    let total = out.memories().expect("completed")[0]
        .get_f64("ring.total")
        .expect("program output");
    println!("restarted under MPICH:       ring total = {total:>8.1}");
}
