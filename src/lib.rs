//! # mpi-stool — ABI interoperability for a fault-tolerant MPI
//!
//! A from-scratch Rust reproduction of *"The Case for ABI Interoperability
//! in a Fault Tolerant MPI"* (Xu, Nansamba, Skjellum, Cooperman — IPPS
//! 2025, arXiv:2503.11138), including every substrate the paper depends on.
//!
//! The paper's thesis is a **three-legged stool**: with a standard MPI ABI,
//! three concerns become independently replaceable —
//!
//! 1. the **application binary**, compiled once against the standard ABI
//!    ([`abi`], the MPI-ABI-working-group-style interface);
//! 2. the **MPI library**, chosen at launch ([`mpich`] or [`ompi`], two
//!    deliberately ABI-incompatible implementations, made ABI-compliant by
//!    the Mukautuva-style shim in [`muk`]);
//! 3. the **transparent checkpointing package** ([`mana`], on the
//!    DMTCP-style platform in [`dmtcp`]), which itself talks only to the
//!    standard ABI.
//!
//! The headline capability (paper §5.3, Fig. 6): checkpoint a running MPI
//! computation under one MPI library and restart it under another.
//!
//! ## Crate map
//!
//! | module (re-export) | crate | role |
//! |---|---|---|
//! | [`stool`] | `stool` | the three-legged-stool session API (core contribution) |
//! | [`abi`] | `mpi-abi` | the proposed standard MPI ABI: handles, constants, status, function table |
//! | [`mpich`] | `mpich-sim` | MPICH-family MPI implementation (integer handles, MPICH collectives) |
//! | [`ompi`] | `ompi-sim` | Open MPI-family implementation (pointer-ish handles, OMPI collectives) |
//! | [`muk`] | `muk` | Mukautuva-style ABI shim: per-vendor wrap libraries + handle translation |
//! | [`dmtcp`] | `dmtcp-sim` | DMTCP-style platform: coordinator, image codec, async delta-checkpoint store |
//! | [`mana`] | `mana-sim` | MANA: split process, virtual ids, drain, cross-vendor restore |
//! | [`simnet`] | `simnet` | deterministic virtual-time cluster (threads + channels + LogGP model) |
//! | [`apps`] | `mpi-apps` | the paper's workloads: OSU kernels, CoMD mini-MD, wave_mpi |
//!
//! ## Quickstart
//!
//! ```
//! use mpi_stool::stool::{Session, Vendor, Checkpointer, CkptMode};
//! use mpi_stool::stool::programs::RingPings;
//! use mpi_stool::simnet::ClusterSpec;
//!
//! let cluster = ClusterSpec::builder().nodes(2).ranks_per_node(2).build();
//! let program = RingPings { rounds: 6, payload: 16 };
//!
//! // Launch under Open MPI, checkpoint-and-stop at step 3.
//! let image = Session::builder()
//!     .cluster(cluster.clone())
//!     .vendor(Vendor::OpenMpi)
//!     .checkpointer(Checkpointer::mana())
//!     .checkpoint_at_step(3, CkptMode::Stop)
//!     .build().unwrap()
//!     .launch(&program).unwrap()
//!     .into_image().unwrap();
//!
//! // Restart the same image under MPICH and run to completion.
//! let out = Session::builder()
//!     .cluster(cluster)
//!     .vendor(Vendor::Mpich)
//!     .checkpointer(Checkpointer::mana())
//!     .build().unwrap()
//!     .restore(&image, &program).unwrap();
//! assert!(out.is_completed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mpi_abi as abi;
pub use mpi_apps as apps;
pub use stool;

pub use dmtcp_sim as dmtcp;
pub use mana_sim as mana;
pub use mpich_sim as mpich;
pub use muk;
pub use ompi_sim as ompi;
pub use sanity;
pub use simnet;
