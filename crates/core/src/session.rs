//! Sessions: binding the three legs of the stool at run time.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use dmtcp_sim::coordinator::{BarrierTopology, CkptMode, Coordinator};
use dmtcp_sim::image::WorldImage;
use dmtcp_sim::memory::Memory;
use dmtcp_sim::replica::{Clock, ReplicaConfig, ReplicaFault, ReplicaGroup, SystemClock};
use dmtcp_sim::store::{
    DeltaStore, SharedStoreWriter, StoreConfig, StoreError, StoreWriter, TenantSink,
};
use dmtcp_sim::tier::{
    FlakyTier, FsTier, GetFault, ObjectTier, PutFault, TierConfig, TierStatsHandle,
};
use mana_sim::ckpt::restore_rank;
use mana_sim::ManaConfig;
use muk::{MukOverhead, Vendor};
use simnet::rank::RankCounters;
use simnet::{ClusterSpec, Fabric, RunPlan, VirtualTime, WorkerPool, World};

use crate::error::{to_sim, StoolError, StoolResult};
use crate::program::{AppCtx, MpiProgram};
use crate::scenario::FaultSchedule;
use crate::stack::{Stack, StackSpec};
use crate::telemetry::{Telemetry, TelemetryConfig, TelemetrySnapshot};

/// The checkpointing leg of the stool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Checkpointer {
    /// No checkpointing package (the "native"/"+Mukautuva" baselines).
    None,
    /// The MANA-like package with its cost model.
    Mana(ManaConfig),
}

impl Checkpointer {
    /// MANA with default costs.
    pub fn mana() -> Checkpointer {
        Checkpointer::Mana(ManaConfig::default())
    }
}

/// When the session itself should trigger a checkpoint (deterministic,
/// step-keyed — every rank requests at the same safe point, so the
/// coordinated quiesce cannot deadlock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CkptPolicy {
    /// Checkpoint when the application reaches this safe-point step.
    pub at_step: Option<u64>,
    /// Additionally checkpoint every N safe-point steps (periodic
    /// checkpointing; always [`CkptMode::Continue`]).
    pub every_steps: Option<u64>,
    /// What to do after the `at_step` checkpoint.
    pub mode: CkptMode,
}

impl Default for CkptPolicy {
    fn default() -> Self {
        CkptPolicy {
            at_step: None,
            every_steps: None,
            mode: CkptMode::Continue,
        }
    }
}

/// Where (and how) completed checkpoint epochs are persisted when the
/// session attaches the asynchronous delta-checkpoint store
/// ([`dmtcp_sim::store`]). With a store attached, ranks hand their images
/// to a background writer pool at the rendezvous barrier and pay only the
/// submit overhead; epochs land on disk as a delta chain that
/// [`Session::restore_from_store`] (or `DeltaStore::open` directly) can
/// restart — under any vendor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorePolicy {
    /// Chain directory.
    pub dir: PathBuf,
    /// Store tunables: block size, retention, chain length, writer
    /// threads, per-block [`dmtcp_sim::Compression`], dirty-segment
    /// tracking, and the manifest format
    /// ([`dmtcp_sim::ManifestFormat`]) — all wired through
    /// [`SessionBuilder::checkpoint_store_with`].
    pub config: StoreConfig,
    /// Remote second tier, if attached
    /// ([`SessionBuilder::checkpoint_tier`]): sealed epochs are shipped
    /// to it in the background, retention GC waits for upload
    /// durability, and a restore with missing/corrupt local epochs
    /// hydrates from it transparently.
    pub tier: Option<TierPolicy>,
    /// The tenant that owns this chain directory (empty = a classic
    /// untagged single-session store). The first tenant-tagged open
    /// writes a `TENANT` marker into the directory; any later open under
    /// a different tenant (or untagged) gets a structured
    /// [`StoreError::TenantMismatch`] instead of silently interleaving
    /// its epochs into a foreign chain.
    pub tenant: String,
}

impl StorePolicy {
    /// Open the policy's store for its configured tenant: plain when no
    /// tier is configured, with the filesystem-backed tier attached
    /// (shipping reconciled, missing local epochs hydrated) when one is.
    pub fn open_store(&self) -> Result<DeltaStore, StoreError> {
        self.open_store_for(&self.tenant)
    }

    /// Like [`StorePolicy::open_store`], claiming the chain directory
    /// for `tenant` explicitly. The claim is durable: a `TENANT` marker
    /// file next to the chain records the owner, and mismatched opens
    /// fail with [`StoreError::TenantMismatch`] before touching the
    /// chain.
    pub fn open_store_for(&self, tenant: &str) -> Result<DeltaStore, StoreError> {
        self.claim_for(tenant)?;
        match &self.tier {
            None => DeltaStore::open_with(&self.dir, self.config),
            Some(t) => {
                let tier: Arc<dyn ObjectTier> =
                    Arc::new(FsTier::open(&t.dir).map_err(StoreError::Tier)?);
                DeltaStore::open_with_tier(&self.dir, self.config, tier, t.config)
            }
        }
    }

    /// Like [`StorePolicy::open_store`], with a fault-injection wrapper
    /// ([`dmtcp_sim::FlakyTier`]) between the store and its tier, loaded
    /// with the given FIFO upload/download fault scripts. Used by the
    /// fault-schedule harness: the run's sink open scripts `puts`
    /// (torn/failed uploads mid-ship), the restore open scripts `gets`
    /// (torn/failed downloads during hydration). Requires a tier.
    pub(crate) fn open_store_flaky(
        &self,
        puts: &[PutFault],
        gets: &[GetFault],
    ) -> Result<DeltaStore, StoreError> {
        self.claim_for(&self.tenant)?;
        let t = self.tier.as_ref().ok_or(StoreError::NoTier)?;
        let inner: Arc<dyn ObjectTier> = Arc::new(FsTier::open(&t.dir).map_err(StoreError::Tier)?);
        let flaky = FlakyTier::new(inner);
        flaky.script_puts(puts.to_vec());
        flaky.script_gets(gets.to_vec());
        DeltaStore::open_with_tier(&self.dir, self.config, Arc::new(flaky), t.config)
    }

    /// Check (and on first tenant-tagged open, write) the directory's
    /// `TENANT` ownership marker.
    fn claim_for(&self, tenant: &str) -> Result<(), StoreError> {
        let marker = self.dir.join("TENANT");
        match std::fs::read_to_string(&marker) {
            Ok(found) => {
                let found = found.trim();
                if found != tenant {
                    return Err(StoreError::TenantMismatch {
                        dir: self.dir.clone(),
                        expected: tenant.to_string(),
                        found: found.to_string(),
                    });
                }
                Ok(())
            }
            Err(_) => {
                // No marker: untagged opens stay untagged (full
                // back-compat); the first tenant-tagged open claims the
                // directory.
                if tenant.is_empty() {
                    return Ok(());
                }
                std::fs::create_dir_all(&self.dir).map_err(|e| StoreError::Io {
                    op: "create",
                    path: self.dir.clone(),
                    msg: e.to_string(),
                })?;
                std::fs::write(&marker, tenant).map_err(|e| StoreError::Io {
                    op: "write",
                    path: marker.clone(),
                    msg: e.to_string(),
                })
            }
        }
    }
}

/// Where (and how) the delta store's remote second tier lives. The
/// in-tree tier is filesystem-backed ([`dmtcp_sim::FsTier`]: atomic
/// renames modelling object storage); the directory typically sits on a
/// different filesystem than the chain itself — that separation is the
/// point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierPolicy {
    /// Tier root directory.
    pub dir: PathBuf,
    /// Shipper tunables: upload attempts and retry backoff.
    pub config: TierConfig,
}

/// Replicated-coordinator configuration: a quorum group of 3+ coordinator
/// replicas whose `ObjectTier`-backed logs must accept every epoch record
/// before the coordinator releases the rendezvous barrier. With this
/// attached, the coordinator/store-writer process stops being a single
/// point of failure: a leader replica killed at any barrier phase is
/// replaced within the election timeout and the round either commits on
/// quorum or aborts atomically (see `dmtcp_sim::replica`).
#[derive(Debug, Clone)]
pub struct ReplicaPolicy {
    /// Root directory; each replica's log lives in `replica_NN/` below it.
    pub dir: PathBuf,
    /// Group size (must be ≥ 3; quorum is a majority).
    pub replicas: usize,
    /// Election timeout: how long a dead leader goes unnoticed before a
    /// follower takes over.
    pub election_timeout: std::time::Duration,
    /// Retry/backoff tunables for the replica log puts and gets.
    pub log: TierConfig,
    /// Scripted replica faults for failover tests (consumed in order as
    /// the leader passes barrier phases).
    pub faults: Vec<ReplicaFault>,
}

impl ReplicaPolicy {
    /// Default policy rooted at `dir`: 3 replicas, the
    /// [`ReplicaConfig`] default election timeout, no scripted faults.
    pub fn new(dir: impl Into<PathBuf>) -> ReplicaPolicy {
        let defaults = ReplicaConfig::default();
        ReplicaPolicy {
            dir: dir.into(),
            replicas: defaults.replicas,
            election_timeout: defaults.election_timeout,
            log: defaults.log,
            faults: Vec::new(),
        }
    }
}

/// The durability leg of a session in one composable value: local delta
/// store, remote second tier and coordinator replication. Both
/// [`SessionBuilder`] (whose `checkpoint_store` / `checkpoint_tier` /
/// `replicated_coordinator` knobs are now thin delegates onto this) and
/// [`crate::cluster::ClusterBuilder`] tenants consume the same policy, so
/// a config tuned for a single session drops into a multi-tenant cluster
/// unchanged.
#[derive(Debug, Clone, Default)]
pub struct DurabilityPolicy {
    /// Asynchronous delta-checkpoint store, if attached.
    pub store: Option<StorePolicy>,
    /// Remote second tier requested free-standing (folded into the store
    /// policy by [`DurabilityPolicy::resolve`]; requesting one without a
    /// store is a validation error).
    pub tier: Option<TierPolicy>,
    /// Replicated coordinator, if attached: epoch records are
    /// quorum-committed to the replica logs before any round completes.
    pub replicas: Option<ReplicaPolicy>,
}

impl DurabilityPolicy {
    /// Check internal consistency (the checks that need no session
    /// context): a tier requires a store, a replica group needs ≥ 3
    /// members.
    pub fn validate(&self) -> StoolResult<()> {
        if self.tier.is_some() && self.store.is_none() {
            return Err(StoolError::Config(
                "checkpoint_tier(..) requires checkpoint_store(..) on the session".into(),
            ));
        }
        if let Some(replicas) = &self.replicas {
            if replicas.replicas < 3 {
                return Err(StoolError::Config(format!(
                    "a replica group needs at least 3 replicas to survive one failure \
                     (got {})",
                    replicas.replicas
                )));
            }
        }
        Ok(())
    }

    /// Validate, then fold the free-standing tier into the store policy
    /// (the canonical form every run path consumes).
    pub fn resolve(mut self) -> StoolResult<DurabilityPolicy> {
        self.validate()?;
        if let Some(tier) = self.tier.take() {
            if let Some(store) = &mut self.store {
                store.tier = Some(tier);
            }
        }
        Ok(self)
    }
}

/// A deterministic injected failure: the job is killed when the application
/// reaches the given safe-point step (the paper's motivating scenarios:
/// node crash, allocation timeout, cluster shutdown).
///
/// Failure is observed *globally*, like an `MPI_Abort` or a fatal
/// communication error under a non-fault-tolerant MPI: every rank unwinds
/// at the same safe point. Recovery is Reinit-style global restart from the
/// last completed checkpoint image ([`Session::run_resilient`]) — under any
/// vendor, which is this paper's contribution.
/// `FaultPlan` is the single-shot form; [`crate::scenario::FaultSchedule`]
/// generalizes it to a composable schedule (fail-storms, node-group kills,
/// stragglers, tier faults, leader kills). A plan is folded into the
/// schedule at run time as a node-group kill at `at_step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The safe-point step at which the failure strikes.
    pub at_step: u64,
    /// The node-group blamed for the failure: every rank hosted on this
    /// node is a victim, and the flight recorder's
    /// [`simnet::telemetry::EventKind::RankKill`] events carry it as
    /// their `node` payload.
    pub node: usize,
}

/// Full session configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The (simulated) cluster to run on.
    pub cluster: ClusterSpec,
    /// The MPI library (leg 2).
    pub vendor: Vendor,
    /// Route calls through the Mukautuva shim? `false` models an
    /// application recompiled against the vendor's native headers.
    pub use_muk: bool,
    /// Shim cost model.
    pub muk_overhead: MukOverhead,
    /// The checkpointing package (leg 3).
    pub checkpointer: Checkpointer,
    /// Session-driven checkpoint policy.
    pub policy: CkptPolicy,
    /// The durability leg: delta store, remote tier, coordinator
    /// replication — one composable [`DurabilityPolicy`].
    pub durability: DurabilityPolicy,
    /// Injected failure, if any (fault-tolerance experiments).
    pub fault: Option<FaultPlan>,
    /// Composable fault schedule (scenario-matrix experiments): scheduled
    /// kills, stragglers, tier fault scripts and replica fault scripts in
    /// one data value. The single-shot `fault` above is folded into the
    /// schedule's kill list at run time.
    pub schedule: FaultSchedule,
    /// Canonical rank-ordered reductions through the shim (bitwise
    /// reproducible across vendors; requires `use_muk`).
    pub deterministic_reductions: bool,
    /// Per-rank thread stack size override; `None` lets the world pick by
    /// size (bounded stacks for ≥ 128-rank worlds, OS default below).
    pub rank_stack_bytes: Option<usize>,
    /// Checkpoint-coordinator barrier topology override; `None` lets the
    /// coordinator pick by world size (flat ≤ 64 ranks, tree beyond).
    pub barrier_topology: Option<BarrierTopology>,
    /// Echo every flight-recorder event to stderr as it is emitted (the
    /// trace-level filter; default quiet, or on when the `CKPT_TRACE`
    /// environment variable is set).
    pub telemetry_echo: bool,
    /// Where the end-of-run crash-dump timeline is written when the run
    /// records incidents or fails. Defaults to the `STOOL_DUMP_DIR`
    /// environment variable; `None` disables dumping (events stay
    /// queryable through [`Session::telemetry`]).
    pub dump_dir: Option<PathBuf>,
}

/// Builder for [`Session`].
pub struct SessionBuilder {
    config: SessionConfig,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            config: SessionConfig {
                cluster: ClusterSpec::discovery(),
                vendor: Vendor::Mpich,
                use_muk: true,
                muk_overhead: MukOverhead::default(),
                checkpointer: Checkpointer::None,
                policy: CkptPolicy::default(),
                durability: DurabilityPolicy::default(),
                fault: None,
                schedule: FaultSchedule::default(),
                deterministic_reductions: false,
                rank_stack_bytes: None,
                barrier_topology: None,
                telemetry_echo: std::env::var_os("CKPT_TRACE").is_some(),
                dump_dir: std::env::var_os("STOOL_DUMP_DIR").map(PathBuf::from),
            },
        }
    }
}

impl SessionBuilder {
    /// Set the cluster.
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.config.cluster = cluster;
        self
    }

    /// Choose the MPI library.
    pub fn vendor(mut self, vendor: Vendor) -> Self {
        self.config.vendor = vendor;
        self
    }

    /// Bypass the Mukautuva shim (native-ABI baseline).
    pub fn native_abi(mut self) -> Self {
        self.config.use_muk = false;
        self
    }

    /// Override the shim cost model.
    pub fn muk_overhead(mut self, overhead: MukOverhead) -> Self {
        self.config.muk_overhead = overhead;
        self
    }

    /// Make reductions bitwise reproducible across MPI implementations:
    /// the Mukautuva shim gathers contributions and folds them in world
    /// rank order instead of trusting the vendor's association (see
    /// `muk::fold`). Matters when a job checkpoints under one vendor and
    /// restarts under another and its output must not depend on where it
    /// ran. Costs a gather + bcast per reduction.
    pub fn deterministic_reductions(mut self) -> Self {
        self.config.deterministic_reductions = true;
        self
    }

    /// Choose the checkpointing package.
    pub fn checkpointer(mut self, ckpt: Checkpointer) -> Self {
        self.config.checkpointer = ckpt;
        self
    }

    /// Checkpoint (and continue or stop) when the application reaches the
    /// given safe-point step.
    pub fn checkpoint_at_step(mut self, step: u64, mode: CkptMode) -> Self {
        self.config.policy.at_step = Some(step);
        self.config.policy.mode = mode;
        self
    }

    /// Take a periodic checkpoint every `n` safe-point steps and keep
    /// running (classic interval checkpointing; feeds
    /// [`Session::run_resilient`]).
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.config.policy.every_steps = Some(n);
        self
    }

    /// Persist checkpoints through the asynchronous delta store at `dir`
    /// (default tunables): ranks hand completed epochs to a background
    /// writer pool at the rendezvous instead of paying the synchronous
    /// image write, and only content-changed blocks reach the disk.
    pub fn checkpoint_store(self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_store_with(dir, StoreConfig::default())
    }

    /// Like [`SessionBuilder::checkpoint_store`], with explicit tunables
    /// — including per-block compression (`config.compression`),
    /// dirty-segment tracking (`config.dirty_tracking`, skips hashing
    /// segments the application provably did not touch since the last
    /// epoch) and the on-disk manifest format (`config.format`;
    /// [`dmtcp_sim::ManifestFormat::V1`] writes legacy chains).
    pub fn checkpoint_store_with(mut self, dir: impl Into<PathBuf>, config: StoreConfig) -> Self {
        self.config.durability.store = Some(StorePolicy {
            dir: dir.into(),
            config,
            tier: None,
            tenant: String::new(),
        });
        self
    }

    /// Attach a remote second tier (default tunables) to the checkpoint
    /// store: every sealed epoch is shipped to object storage (modelled
    /// by a filesystem-backed tier at `dir`) in the background, local
    /// retention GC waits for upload durability, and
    /// [`Session::restore_from_store`] transparently hydrates missing or
    /// corrupt local epochs from the tier — a restart works from the
    /// remote tier alone, under either vendor. Requires
    /// [`SessionBuilder::checkpoint_store`].
    pub fn checkpoint_tier(self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_tier_with(dir, TierConfig::default())
    }

    /// Like [`SessionBuilder::checkpoint_tier`], with explicit shipper
    /// tunables (upload attempts, retry backoff).
    pub fn checkpoint_tier_with(mut self, dir: impl Into<PathBuf>, config: TierConfig) -> Self {
        self.config.durability.tier = Some(TierPolicy {
            dir: dir.into(),
            config,
        });
        self
    }

    /// Replicate the checkpoint coordinator (default policy: 3 replicas,
    /// logs under `dir/replica_NN/`): every epoch record is
    /// quorum-committed to the replica logs before the coordinator
    /// releases the rendezvous barrier, so a killed coordinator leader no
    /// longer poisons the world — a follower takes over within the
    /// election timeout and the round commits on quorum or aborts
    /// atomically. Requires the MANA checkpointer.
    pub fn replicated_coordinator(self, dir: impl Into<PathBuf>) -> Self {
        self.replicated_coordinator_with(ReplicaPolicy::new(dir))
    }

    /// Like [`SessionBuilder::replicated_coordinator`], with an explicit
    /// [`ReplicaPolicy`] (group size, election timeout, log retry
    /// tunables, scripted faults for failover tests).
    pub fn replicated_coordinator_with(mut self, policy: ReplicaPolicy) -> Self {
        self.config.durability.replicas = Some(policy);
        self
    }

    /// Install a complete [`DurabilityPolicy`] in one call — the
    /// composable form the per-knob delegates above feed into, and what
    /// [`crate::cluster::ClusterBuilder`] tenants share with plain
    /// sessions.
    pub fn durability(mut self, policy: DurabilityPolicy) -> Self {
        self.config.durability = policy;
        self
    }

    /// Override the per-rank thread stack size. Without this the world
    /// auto-bounds stacks once it reaches 128 ranks (see
    /// [`simnet::RunPlan::auto`]) so 512–1024-rank worlds spin up without
    /// a per-rank address-space explosion.
    pub fn rank_stack_bytes(mut self, bytes: usize) -> Self {
        self.config.rank_stack_bytes = Some(bytes);
        self
    }

    /// Override the checkpoint coordinator's rendezvous barrier topology
    /// (default: auto by world size — flat up to 64 ranks, radix-32 tree
    /// beyond).
    pub fn barrier_topology(mut self, topology: BarrierTopology) -> Self {
        self.config.barrier_topology = Some(topology);
        self
    }

    /// Echo every flight-recorder event to stderr as it is emitted — the
    /// trace knob that replaced the old ad-hoc `CKPT_TRACE` prints
    /// (setting that environment variable still turns echoing on by
    /// default).
    pub fn telemetry_echo(mut self, on: bool) -> Self {
        self.config.telemetry_echo = on;
        self
    }

    /// Write the merged crash-dump timeline (JSON lines + Chrome
    /// `trace_event`) under `dir` at the end of any run that recorded
    /// incidents — recovery elections, quorum losses, sink errors,
    /// failed tier ships, rank unwinds — or failed outright. Defaults to
    /// the `STOOL_DUMP_DIR` environment variable.
    pub fn crash_dump_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.dump_dir = Some(dir.into());
        self
    }

    /// Inject a global failure when the application reaches `step`,
    /// attributed to `node`.
    pub fn inject_node_failure(mut self, step: u64, node: usize) -> Self {
        self.config.fault = Some(FaultPlan {
            at_step: step,
            node,
        });
        self
    }

    /// Install a composable [`FaultSchedule`]: scheduled rank/node/world
    /// kills, slow-but-alive stragglers, FIFO tier upload/download fault
    /// scripts and coordinator-replica fault scripts in one data value
    /// (the scenario-matrix harness, `stool::scenario`). Composes with
    /// [`SessionBuilder::inject_node_failure`]: the single-shot plan is
    /// folded into the schedule's kill list at run time.
    pub fn fault_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// Validate and build.
    pub fn build(mut self) -> StoolResult<Session> {
        self.config.durability = std::mem::take(&mut self.config.durability).resolve()?;
        let c = &self.config;
        c.cluster.validate().map_err(StoolError::Config)?;
        if (c.policy.at_step.is_some() || c.policy.every_steps.is_some())
            && matches!(c.checkpointer, Checkpointer::None)
        {
            return Err(StoolError::Config(
                "a checkpoint policy requires a checkpointing package".into(),
            ));
        }
        if c.policy.every_steps == Some(0) {
            return Err(StoolError::Config(
                "checkpoint_every(0) is meaningless".into(),
            ));
        }
        if c.durability.store.is_some() && matches!(c.checkpointer, Checkpointer::None) {
            return Err(StoolError::Config(
                "a checkpoint store requires a checkpointing package".into(),
            ));
        }
        if c.durability.replicas.is_some() && matches!(c.checkpointer, Checkpointer::None) {
            return Err(StoolError::Config(
                "a replicated coordinator requires a checkpointing package".into(),
            ));
        }
        if c.deterministic_reductions && !c.use_muk {
            return Err(StoolError::Config(
                "deterministic reductions are a feature of the Mukautuva shim;                  they are unavailable with native_abi()"
                    .into(),
            ));
        }
        if let Some(fault) = c.fault {
            if fault.node >= c.cluster.nodes {
                return Err(StoolError::Config(format!(
                    "fault blames node {} but the cluster has {} nodes",
                    fault.node, c.cluster.nodes
                )));
            }
        }
        c.schedule
            .validate(&c.cluster)
            .map_err(StoolError::Config)?;
        if !c.schedule.is_empty() && matches!(c.checkpointer, Checkpointer::None) {
            return Err(StoolError::Config(
                "a fault schedule requires a checkpointing package".into(),
            ));
        }
        if (!c.schedule.tier_puts.is_empty() || !c.schedule.tier_gets.is_empty())
            && c.durability.store.as_ref().is_none_or(|s| s.tier.is_none())
        {
            return Err(StoolError::Config(
                "tier fault scripts require checkpoint_tier(..) on the session".into(),
            ));
        }
        if !c.schedule.replica.is_empty() && c.durability.replicas.is_none() {
            return Err(StoolError::Config(
                "replica fault scripts require a replicated coordinator".into(),
            ));
        }
        Ok(Session::with_config(self.config))
    }
}

/// A bound three-legged stool, ready to launch programs.
#[derive(Debug)]
pub struct Session {
    /// The configuration in force.
    pub config: SessionConfig,
    /// The last run's unified observability snapshot.
    last_telemetry: Mutex<Option<TelemetrySnapshot>>,
}

/// The result of running a program under a session.
#[derive(Debug)]
pub enum RunOutcome {
    /// The program ran to completion.
    Completed {
        /// Per-rank final memories (the program's outputs).
        memories: Vec<Memory>,
        /// Per-rank final virtual clocks.
        clocks: Vec<VirtualTime>,
        /// Per-rank communication counters.
        counters: Vec<RankCounters>,
    },
    /// A checkpoint-and-stop was taken; the world image is ready for
    /// [`Session::restore`] — under any vendor.
    Checkpointed {
        /// The collected world image.
        image: WorldImage,
        /// Per-rank clocks at stop time.
        clocks: Vec<VirtualTime>,
    },
    /// An injected failure killed the job (see [`FaultPlan`]).
    Failed {
        /// The last *completed* periodic checkpoint before the failure, if
        /// any — the recovery point for a Reinit-style global restart.
        image: Option<WorldImage>,
        /// The safe-point step at which the failure struck.
        failed_step: u64,
        /// Per-rank clocks at failure time.
        clocks: Vec<VirtualTime>,
    },
}

impl RunOutcome {
    /// Whether the program completed (vs. checkpoint-stopped).
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed { .. })
    }

    /// Whether the run was killed by an injected failure.
    pub fn is_failed(&self) -> bool {
        matches!(self, RunOutcome::Failed { .. })
    }

    /// The makespan: max final clock across ranks.
    pub fn makespan(&self) -> VirtualTime {
        let clocks = match self {
            RunOutcome::Completed { clocks, .. } => clocks,
            RunOutcome::Checkpointed { clocks, .. } => clocks,
            RunOutcome::Failed { clocks, .. } => clocks,
        };
        clocks
            .iter()
            .copied()
            .fold(VirtualTime::ZERO, VirtualTime::max)
    }

    /// Per-rank memories of a completed run.
    pub fn memories(&self) -> StoolResult<&[Memory]> {
        match self {
            RunOutcome::Completed { memories, .. } => Ok(memories),
            RunOutcome::Checkpointed { .. } => Err(StoolError::App(
                "run was checkpoint-stopped, no final memories".into(),
            )),
            RunOutcome::Failed { failed_step, .. } => Err(StoolError::App(format!(
                "run failed at step {failed_step}, no final memories"
            ))),
        }
    }

    /// The world image of a checkpoint-stopped run.
    pub fn into_image(self) -> StoolResult<WorldImage> {
        match self {
            RunOutcome::Checkpointed { image, .. } => Ok(image),
            RunOutcome::Failed {
                image: Some(image), ..
            } => Ok(image),
            RunOutcome::Failed {
                image: None,
                failed_step,
                ..
            } => Err(StoolError::App(format!(
                "run failed at step {failed_step} before any checkpoint completed"
            ))),
            RunOutcome::Completed { .. } => {
                Err(StoolError::App("run completed, no checkpoint image".into()))
            }
        }
    }
}

/// One recovery performed by [`Session::run_resilient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// The safe-point step at which the failure struck.
    pub failed_at: u64,
    /// Whether recovery used a checkpoint image (`false` = no checkpoint
    /// had completed yet, so the job restarted from scratch).
    pub from_image: bool,
}

/// What [`Session::run_resilient`] did to finish the job.
#[derive(Debug)]
pub struct ResilienceReport {
    /// The final (completed) outcome.
    pub outcome: RunOutcome,
    /// The global restarts that were needed, in order.
    pub recoveries: Vec<Recovery>,
}

/// What a cluster tenant's run shares with its siblings: the bounded
/// worker pool its world gang-admits onto, its lane of the one shared
/// store writer (if it checkpoints through a store), a live view of its
/// tier-shipping lane, and a pre-tagged flight recorder.
pub(crate) struct TenantShared<'p> {
    /// The cluster-wide bounded worker pool.
    pub pool: &'p WorkerPool,
    /// The shared committer and this tenant's lane in it.
    pub writer: Option<(Arc<SharedStoreWriter>, usize)>,
    /// Live view of the tenant's tier-shipping lane stats, if a shared
    /// tier is attached.
    pub tier_stats: Option<TierStatsHandle>,
    /// The tenant's flight recorder, tagged with its id.
    pub tel: Arc<Telemetry>,
}

/// Build a run's flight recorder: one lane per rank plus the four
/// subsystem lanes, optionally tagged (cluster tenants stamp their id
/// into every echo line and dump header). Each run dumps into its own
/// subdirectory so concurrent runs sharing one configured directory
/// (e.g. a CI-wide `STOOL_DUMP_DIR`) never overwrite each other's
/// timelines.
pub(crate) fn recorder_for(config: &SessionConfig, tag: Option<String>) -> Arc<Telemetry> {
    Arc::new(Telemetry::with_config(
        config.cluster.nranks(),
        TelemetryConfig {
            dump_dir: config.dump_dir.as_ref().map(|d| {
                static RUN_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                d.join(format!(
                    "run-{}-{}",
                    std::process::id(),
                    RUN_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                ))
            }),
            echo: config.telemetry_echo,
            tag,
            ..TelemetryConfig::default()
        },
    ))
}

/// How a run's completed epochs leave the rendezvous barrier.
enum Sink {
    /// No store attached: images stay in the coordinator's staging area.
    None,
    /// A private background writer (classic single session).
    Own(Arc<StoreWriter>),
    /// One lane of a cluster's shared committer.
    Lane(Arc<SharedStoreWriter>, usize),
}

impl Session {
    /// Begin building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// A session over a validated configuration.
    fn with_config(config: SessionConfig) -> Session {
        Session {
            config,
            last_telemetry: Mutex::new(None),
        }
    }

    /// The unified observability snapshot of the most recent run under
    /// this session — the flight recorder's merged event timeline and
    /// metrics registry, plus the delta store's per-epoch stats, the
    /// tier's shipping stats and the replica group's stats in one place.
    /// `None` before the first launch/restore.
    pub fn telemetry(&self) -> Option<TelemetrySnapshot> {
        self.last_telemetry
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Carry a retry session's last snapshot over to this session, so
    /// [`Session::run_resilient`] callers see the final attempt's
    /// telemetry through [`Session::telemetry`].
    fn adopt_telemetry(&self, retry: &Session) {
        if let Some(snap) = retry.telemetry() {
            *self
                .last_telemetry
                .lock()
                .unwrap_or_else(|p| p.into_inner()) = Some(snap);
        }
    }

    /// The effective MANA configuration: the configured one, with
    /// asynchronous image writes switched on when a store is attached.
    fn mana_config(&self) -> Option<ManaConfig> {
        match self.config.checkpointer {
            Checkpointer::Mana(mut cfg) => {
                cfg.async_image_writes = self.config.durability.store.is_some();
                Some(cfg)
            }
            Checkpointer::None => None,
        }
    }

    /// The stack specification implied by the configuration.
    pub fn stack_spec(&self) -> StackSpec {
        StackSpec {
            vendor: self.config.vendor,
            muk: self.config.use_muk.then_some(self.config.muk_overhead),
            mana: self.mana_config(),
            deterministic_reductions: self.config.deterministic_reductions,
        }
    }

    /// A human-readable label of the configuration (paper legend style).
    pub fn label(&self) -> String {
        self.stack_spec().label()
    }

    /// Launch a program fresh.
    pub fn launch(&self, program: &dyn MpiProgram) -> StoolResult<RunOutcome> {
        self.run_inner(program, None, None)
    }

    /// Internal: one tenant's run inside a [`crate::cluster::Cluster`] —
    /// the same wiring path as [`Session::launch`], with the cluster's
    /// shared pool, writer lane and tagged recorder attached.
    pub(crate) fn run_shared(
        &self,
        program: &dyn MpiProgram,
        shared: &TenantShared<'_>,
    ) -> StoolResult<RunOutcome> {
        self.run_inner(program, None, Some(shared))
    }

    /// Restore a checkpointed world image and continue the program —
    /// possibly under a different vendor than it was checkpointed with.
    pub fn restore(&self, image: &WorldImage, program: &dyn MpiProgram) -> StoolResult<RunOutcome> {
        let mana_cfg = self.mana_config().ok_or_else(|| {
            StoolError::Config("restoring requires the MANA checkpointer in the session".into())
        })?;
        if image.nranks() != self.config.cluster.nranks() {
            return Err(StoolError::Restore(format!(
                "image has {} ranks, cluster has {}",
                image.nranks(),
                self.config.cluster.nranks()
            )));
        }
        self.run_inner(program, Some((image, mana_cfg)), None)
    }

    /// Restart from the newest epoch of the session's attached delta
    /// store — under this session's vendor, which may differ from the
    /// vendor the chain was checkpointed under (the paper's headline
    /// scenario, now directly from deltas on disk).
    pub fn restore_from_store(&self, program: &dyn MpiProgram) -> StoolResult<RunOutcome> {
        let policy = self.config.durability.store.as_ref().ok_or_else(|| {
            StoolError::Config(
                "restore_from_store requires checkpoint_store(..) on the session".into(),
            )
        })?;
        // A scheduled download-fault script makes the hydration path
        // itself flaky (torn/failed tier gets while the chain is pulled).
        let store = if self.config.schedule.tier_gets.is_empty() {
            policy.open_store()?
        } else {
            policy.open_store_flaky(&[], &self.config.schedule.tier_gets)?
        };
        let image = store.load_latest()?;
        self.restore(&image, program)
    }

    fn run_inner(
        &self,
        program: &dyn MpiProgram,
        restore: Option<(&WorldImage, ManaConfig)>,
        shared: Option<&TenantShared<'_>>,
    ) -> StoolResult<RunOutcome> {
        let spec = self.stack_spec();
        let cluster = &self.config.cluster;
        // The run's flight recorder: one lane per rank plus the four
        // subsystem lanes, attached to every layer below before any rank
        // starts. On incident (or failure) its merged virtual-clock
        // timeline is dumped at the end of the run. Cluster tenants
        // arrive with their own id-tagged recorder, already attached to
        // their store lane.
        let tel = match shared {
            Some(ts) => ts.tel.clone(),
            None => recorder_for(&self.config, None),
        };
        let coordinator = match self.config.checkpointer {
            Checkpointer::Mana(_) => {
                let topology = self
                    .config
                    .barrier_topology
                    .unwrap_or_else(|| BarrierTopology::auto(cluster.nranks()));
                let coord = Coordinator::with_topology(cluster.nranks(), topology);
                coord.attach_telemetry(tel.clone());
                Some(coord)
            }
            Checkpointer::None => None,
        };
        // With a replicated coordinator, every epoch record must reach a
        // quorum of the replicas' durable logs before any round becomes
        // observable; the scripted faults drive the failover battery.
        if let (Some(policy), Some(coord)) = (&self.config.durability.replicas, &coordinator) {
            let config = ReplicaConfig {
                replicas: policy.replicas,
                election_timeout: policy.election_timeout,
                log: policy.log,
            };
            let logs: Vec<Arc<dyn ObjectTier>> = (0..policy.replicas)
                .map(|i| {
                    let dir = policy.dir.join(format!("replica_{i:02}"));
                    FsTier::open(&dir)
                        .map(|t| Arc::new(t) as Arc<dyn ObjectTier>)
                        .map_err(|e| StoolError::Replica(e.into()))
                })
                .collect::<StoolResult<_>>()?;
            let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
            let group = ReplicaGroup::new(config, clock, logs).map_err(StoolError::Replica)?;
            // The policy's own scripted faults run first, then the fault
            // schedule's (both are FIFO-consumed at barrier phases).
            let mut faults = policy.faults.clone();
            faults.extend(self.config.schedule.replica.iter().cloned());
            let scripted = !faults.is_empty();
            group.script_faults(faults);
            group.attach_telemetry(tel.clone());
            if scripted {
                // A phase-scripted leader kill needs an incumbent from the
                // very first epoch barrier; elect one now instead of
                // lazily inside that barrier's commit.
                group.prime().map_err(StoolError::Replica)?;
            }
            coord.attach_replicas(Arc::new(group));
        }
        // With a store attached, a background committer takes ownership
        // of each completed epoch at the rendezvous barrier and persists
        // it as a delta chain while the ranks run on: a private writer
        // for a classic session, the tenant's lane of the ONE shared
        // committer inside a cluster.
        let mut tier_stats = shared.and_then(|ts| ts.tier_stats.clone());
        let sink = match (&coordinator, shared) {
            (Some(coord), Some(ts)) => match &ts.writer {
                Some((writer, lane)) => {
                    let tenant_sink = Arc::new(TenantSink::new(writer.clone(), *lane));
                    coord.attach_sink(tenant_sink, self.config.vendor.name());
                    Sink::Lane(writer.clone(), *lane)
                }
                None => Sink::None,
            },
            (Some(coord), None) => match &self.config.durability.store {
                Some(policy) => {
                    // Open the store first so the recorder (and a live
                    // view of the tier shipper's stats) can attach before
                    // the store moves into the background writer thread.
                    // A scheduled upload-fault script wraps the tier in
                    // its fault-injection double for this run only.
                    let mut store = if self.config.schedule.tier_puts.is_empty() {
                        policy.open_store().map_err(StoolError::Store)?
                    } else {
                        policy
                            .open_store_flaky(&self.config.schedule.tier_puts, &[])
                            .map_err(StoolError::Store)?
                    };
                    store.attach_telemetry(tel.clone());
                    tier_stats = store.tier_stats_handle();
                    let writer = Arc::new(StoreWriter::from_store(store));
                    coord.attach_sink(writer.clone(), self.config.vendor.name());
                    Sink::Own(writer)
                }
                None => Sink::None,
            },
            _ => Sink::None,
        };
        let policy = self.config.policy;
        let image = restore.map(|(img, cfg)| (Arc::new(img.clone()), cfg));
        // The legacy single-shot plan and the schedule's kill list resolve
        // into one sorted kill sequence, shared read-only by every rank.
        let kills = Arc::new(
            self.config
                .schedule
                .resolved_kills(cluster, self.config.fault),
        );

        let plan = match self.config.rank_stack_bytes {
            Some(bytes) => RunPlan::with_stack_bytes(bytes),
            None => RunPlan::auto(cluster.nranks()),
        };
        // Build the fabric here (instead of letting `World::run_with` do
        // it) so the recorder's hot-path counters attach before any rank
        // sends its first message.
        let cluster_arc = Arc::new(cluster.clone());
        let (fabric, endpoints) = Fabric::new(&cluster_arc);
        fabric.attach_telemetry(tel.clone());
        // Inside a cluster, the tenant's world gang-admits onto the
        // shared bounded pool: all of its rank permits are taken at once
        // (FIFO-ticketed, so a wide tenant is never starved by narrow
        // ones) and held for the whole run.
        let _gang = shared.map(|ts| ts.pool.acquire(cluster.nranks()));
        let run_result = World::run_on_with(cluster_arc, fabric, endpoints, plan, |ctx| {
            let (mut stack, mut mem, resume) = match &image {
                None => (Stack::build(&spec, &ctx), Memory::new(), None),
                Some((img, mana_cfg)) => {
                    let lower = spec.build_lower(&ctx);
                    let restored =
                        restore_rank(ctx.clone(), *mana_cfg, lower, &img.ranks[ctx.rank()])
                            .map_err(|e| to_sim(StoolError::Restore(e)))?;
                    (
                        Stack::Mana(Box::new(restored.mana)),
                        restored.memory,
                        Some(restored.resume_step),
                    )
                }
            };
            let agent = coordinator.as_ref().map(|c| c.agent(ctx.rank()));
            let mut app = AppCtx {
                stack: &mut stack,
                mem: &mut mem,
                straggle: self.config.schedule.straggler_for(ctx.rank()),
                sim: ctx.clone(),
                resume,
                policy,
                kills: kills.clone(),
                tel: tel.clone(),
                coordinator: coordinator.clone(),
                agent,
                stopped: false,
                failed_at: None,
            };
            program.run(&mut app).map_err(to_sim)?;
            let stopped = app.was_stopped();
            let failed_at = app.failed_at();
            Ok((mem, stopped, failed_at))
        });

        // Every submitted epoch must be durable before the outcome is
        // inspected (restart may read the chain immediately). Flushed
        // even when the run failed, so the telemetry snapshot and the
        // crash dump below see the final store/tier state.
        let flush_result = match &sink {
            Sink::Own(writer) => writer.flush(),
            Sink::Lane(writer, lane) => writer.flush_lane(*lane),
            Sink::None => Ok(()),
        };
        // Local durability settled; now drain the background tier shipper
        // too, so the snapshot below reports final shipping statistics
        // (upload retries included) instead of racing the thread. A
        // sticky ship error is not a run error — it shows up as
        // `ship_failures`/`TierFail` in the telemetry it exists to feed.
        if flush_result.is_ok() {
            if let Some(handle) = &tier_stats {
                let _ = handle.wait_durable();
            }
        }

        // Fold any lock-discipline findings (cycles, guards carried into
        // a rendezvous) into the recorder before deciding whether to
        // dump: a lockcheck hit is an incident like any other and must
        // show up as `LockCycle` events in the timeline.
        let lock_incidents = sanity::lockcheck::take_incidents();
        if !lock_incidents.is_empty() {
            tel.note_lock_incidents(tel.coord_lane(), &lock_incidents);
        }

        // Unify the run's observability: the recorder plus every
        // subsystem's statistics in one snapshot, and — when the run
        // recorded incidents or failed outright — the one-shot merged
        // crash-dump timeline.
        let reason = if run_result.is_err() {
            "run failed: rank panic or unwind"
        } else if flush_result.is_err() {
            "checkpoint store writer failed"
        } else {
            "incidents recorded during the run"
        };
        let dump = if tel.incidents() > 0 || run_result.is_err() || flush_result.is_err() {
            tel.dump(reason)
        } else {
            None
        };
        let snapshot = TelemetrySnapshot {
            recorder: tel.clone(),
            epochs: match &sink {
                Sink::Own(w) => w.stats(),
                Sink::Lane(w, lane) => w.lane_stats(*lane),
                Sink::None => Vec::new(),
            },
            tier: tier_stats.as_ref().map(|h| h.stats()),
            replica: coordinator
                .as_ref()
                .and_then(|c| c.replicas())
                .map(|g| g.stats()),
            dump,
        };
        *self
            .last_telemetry
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = Some(snapshot);

        let outcome = run_result.map_err(StoolError::Sim)?;
        flush_result.map_err(StoolError::Store)?;
        // Collect the image of the last checkpoint this run completed:
        // from the staging area, or — when the store consumed the staged
        // images at the rendezvous — by rebuilding the chain head.
        let collect_image = |c: &Coordinator| -> StoolResult<Option<WorldImage>> {
            if c.completed_epoch() == 0 {
                return Ok(None);
            }
            match &self.config.durability.store {
                Some(policy) => {
                    let store = policy.open_store().map_err(StoolError::Store)?;
                    match store.load_latest() {
                        Ok(img) => Ok(Some(img)),
                        Err(StoreError::Empty) => Ok(None),
                        Err(e) => Err(StoolError::Store(e)),
                    }
                }
                None => Ok(c.take_world_image(self.config.vendor.name())),
            }
        };

        let failed: Vec<Option<u64>> = outcome.results.iter().map(|(_, _, f)| *f).collect();
        if let Some(&Some(step)) = failed.iter().find(|f| f.is_some()) {
            if !failed.iter().all(|&f| f == Some(step)) {
                return Err(StoolError::Config(
                    "inconsistent failure across ranks (programs must share safe-point steps)"
                        .into(),
                ));
            }
            // Salvage the last completed periodic checkpoint, if any.
            let image = match &coordinator {
                Some(c) => collect_image(c)?,
                None => None,
            };
            return Ok(RunOutcome::Failed {
                image,
                failed_step: step,
                clocks: outcome.clocks,
            });
        }

        let stopped: Vec<bool> = outcome.results.iter().map(|(_, s, _)| *s).collect();
        if stopped.iter().any(|&s| s) {
            if !stopped.iter().all(|&s| s) {
                return Err(StoolError::Config(
                    "inconsistent checkpoint stop across ranks (program must unwind on Flow::Stop)"
                        .into(),
                ));
            }
            let coordinator = coordinator
                .ok_or_else(|| StoolError::Config("stopped without a coordinator".into()))?;
            let image = collect_image(&coordinator)?
                .ok_or_else(|| StoolError::Config("stop without a complete image".into()))?;
            return Ok(RunOutcome::Checkpointed {
                image,
                clocks: outcome.clocks,
            });
        }

        Ok(RunOutcome::Completed {
            memories: outcome.results.into_iter().map(|(m, _, _)| m).collect(),
            clocks: outcome.clocks,
            counters: outcome.counters,
        })
    }

    /// Run to completion through failures: Reinit-style global restart.
    ///
    /// Launches the program under this session's configuration (typically
    /// with [`SessionBuilder::checkpoint_every`] for periodic checkpoints
    /// and [`SessionBuilder::inject_node_failure`] for the experiment's
    /// fault). Each time the job fails, it is restarted from the last
    /// completed checkpoint image — or from scratch if none exists —
    /// treating injected faults as transient (they are not re-injected on
    /// the retry, like a crashed node that was replaced).
    ///
    /// `max_restarts` bounds the number of recoveries.
    pub fn run_resilient(
        &self,
        program: &dyn MpiProgram,
        max_restarts: usize,
    ) -> StoolResult<ResilienceReport> {
        if matches!(self.config.checkpointer, Checkpointer::None) {
            return Err(StoolError::Config(
                "run_resilient requires the MANA checkpointer".into(),
            ));
        }
        let mut recoveries = Vec::new();
        let mut pending_image: Option<WorldImage> = None;
        loop {
            let outcome = match &pending_image {
                None => self.launch(program)?,
                Some(image) => {
                    // The retry session: same stack, fault cleared (both
                    // the single-shot plan and any scheduled kills — the
                    // crashed node was replaced).
                    let mut retry = Session::with_config(self.config.clone());
                    retry.config.fault = None;
                    retry.config.schedule.kills.clear();
                    let outcome = retry.restore(image, program)?;
                    self.adopt_telemetry(&retry);
                    outcome
                }
            };
            match outcome {
                RunOutcome::Failed {
                    image, failed_step, ..
                } => {
                    if recoveries.len() >= max_restarts {
                        return Err(StoolError::App(format!(
                            "job failed at step {failed_step} after {} restarts",
                            recoveries.len()
                        )));
                    }
                    recoveries.push(Recovery {
                        failed_at: failed_step,
                        from_image: image.is_some(),
                    });
                    pending_image = image;
                    // After the first failure the fault is spent; a fresh
                    // from-scratch launch must not re-fail, so clear it by
                    // retrying through a fault-free session when no image
                    // exists either.
                    if pending_image.is_none() {
                        let mut retry = Session::with_config(self.config.clone());
                        retry.config.fault = None;
                        retry.config.schedule.kills.clear();
                        let outcome = retry.launch(program)?;
                        self.adopt_telemetry(&retry);
                        return Ok(ResilienceReport {
                            outcome,
                            recoveries,
                        });
                    }
                }
                done => {
                    return Ok(ResilienceReport {
                        outcome: done,
                        recoveries,
                    })
                }
            }
        }
    }
}
