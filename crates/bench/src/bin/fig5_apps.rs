//! Fig. 5: completion time of the real-world applications (CoMD and
//! wave_mpi) under the four configurations, median ± stddev of 5 repeats.
//!
//! Usage: `fig5_apps [--quick]`.

use mpi_apps::{CoMdMini, WaveMpi};
use stool_bench::{fig5_data, paper_cluster, print_fig5, quick_cluster};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (comd, wave) = if quick {
        (
            CoMdMini {
                nx: 6,
                nsteps: 10,
                print_rate: 5,
                ..CoMdMini::default()
            },
            WaveMpi {
                npoints: 400,
                nsteps: 100,
                ..WaveMpi::default()
            },
        )
    } else {
        // Calibrated to the paper's Fig. 5 *ratios*: CoMD's compute/comm
        // mix (ns_per_pair) sets MPICH/OpenMPI = 1.25x, and wave_mpi's
        // latency-bound halo feels MPICH's sock small-message latency for
        // the ~3x gap. CoMD's KB-scale halo messages sit above that
        // penalty, which is why its gap stays modest. Step counts are
        // ~4x below the paper's absolute scale to keep the harness
        // wall-time reasonable; ratios are unaffected (see
        // EXPERIMENTS.md).
        (
            CoMdMini {
                nx: 24,
                nsteps: 480,
                print_rate: 10,
                ns_per_pair: 13.7,
                ..CoMdMini::default()
            },
            WaveMpi {
                npoints: 12_000,
                nsteps: 6_000,
                ..WaveMpi::default()
            },
        )
    };
    let repeats = if quick { 2 } else { 5 };
    let sigma = 0.08;
    let bars = if quick {
        fig5_data(|r| quick_cluster(r, sigma), &comd, &wave, repeats)
    } else {
        fig5_data(|r| paper_cluster(r, sigma), &comd, &wave, repeats)
    }
    .expect("fig5 run");
    print_fig5(&bars);
}
