//! `stoolint` — the workspace invariant linter.
//!
//! Scans `crates/**/*.rs` (plus `tests/`, `benches/`, `examples/`,
//! `src/`) and every reachable `Cargo.toml` against the rule set in
//! [`sanity::lint::default_rules`]. Findings go to stderr
//! human-readable and to stdout as one JSON report; exit code mirrors
//! `benchgate`: 0 clean, 2 on any violation, 1 on a driver error.
//!
//! ```text
//! stoolint [--root DIR] [--list-rules] [--quiet]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use sanity::lint;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    // lint:allow(no-eprintln) — gate tooling reports on stderr by design.
                    eprintln!("stoolint: --root requires a directory");
                    return ExitCode::from(1);
                };
                root = PathBuf::from(dir);
            }
            "--quiet" => quiet = true,
            "--list-rules" => {
                for rule in lint::default_rules() {
                    println!("{:<22} {}", rule.name, rule.invariant);
                }
                let manifest_rule = "shims-only-deps";
                println!(
                    "{manifest_rule:<22} every dependency resolves to a workspace path (shims/ or crates/); no registry deps"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                // lint:allow(no-eprintln) — gate tooling reports on stderr by design.
                eprintln!(
                    "stoolint: unknown argument `{other}` (try --root DIR, --list-rules, --quiet)"
                );
                return ExitCode::from(1);
            }
        }
    }

    let report = match lint::lint_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            // lint:allow(no-eprintln) — gate tooling reports on stderr by design.
            eprintln!("stoolint: FAIL (driver error): {e}");
            return ExitCode::from(1);
        }
    };

    if !quiet {
        for f in &report.findings {
            // lint:allow(no-eprintln) — gate tooling reports on stderr by design.
            eprintln!("stoolint: VIOLATION: {f}");
        }
        // lint:allow(no-eprintln) — gate tooling reports on stderr by design.
        eprintln!(
            "stoolint: {} file(s), {} manifest(s), {} violation(s)",
            report.files_scanned,
            report.manifests_scanned,
            report.findings.len()
        );
    }
    println!("{}", report.to_json());
    ExitCode::from(report.exit_code() as u8)
}
